"""Deep-web sites: content behind query forms.

The paper's Section 1 cites deep-web harvesting (Madhavan et al.) as a
studied sub-problem: many sources expose their entities only through a
search form, so a crawler cannot enumerate pages — it must *probe* with
queries.  This module simulates such sources over the same entity
space:

- :class:`DeepWebSite` hides a set of entities behind a query interface
  with two access paths: exact identifying-attribute lookup (phone) and
  prefix search over names, each returning at most ``page_size``
  results per query (result paging, as real forms do).
- :class:`DeepWebProber` implements the standard harvesting loop: keep
  a query pool, issue queries, harvest results, and mint new queries
  from the harvested records (surfacing by "query expansion").  The
  measured quantity is coverage vs. queries issued — the deep-web
  analogue of coverage vs. pages crawled.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.entities.business import BusinessListing

__all__ = ["DeepWebProber", "DeepWebSite", "ProbeResult"]


class DeepWebSite:
    """A form-only source holding a hidden set of business listings.

    Args:
        host: Host name of the source.
        listings: The hidden records.
        page_size: Max results returned per query (forms paginate, and
            probing typically only consumes the first page).
    """

    def __init__(
        self, host: str, listings: list[BusinessListing], page_size: int = 10
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be positive")
        self.host = host
        self.page_size = page_size
        self._listings = list(listings)
        self._by_phone = {listing.phone: listing for listing in self._listings}
        self.queries_served = 0

    @property
    def n_hidden(self) -> int:
        """Number of hidden records."""
        return len(self._listings)

    def query_phone(self, phone: str) -> list[BusinessListing]:
        """Exact lookup by canonical phone."""
        self.queries_served += 1
        listing = self._by_phone.get(phone)
        return [listing] if listing else []

    def query_name_prefix(self, prefix: str) -> list[BusinessListing]:
        """Prefix search over names (case-insensitive), first page only."""
        self.queries_served += 1
        if not prefix:
            return []
        lowered = prefix.lower()
        matches = [
            listing
            for listing in self._listings
            if listing.name.lower().startswith(lowered)
        ]
        return matches[: self.page_size]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probing run against one deep-web site.

    Attributes:
        harvested: Entity ids recovered.
        queries_issued: Total form submissions.
        coverage: Fraction of the site's hidden records recovered.
        queries_per_record: Cost efficiency (lower is better).
    """

    harvested: set[str]
    queries_issued: int
    coverage: float

    @property
    def queries_per_record(self) -> float:
        """Form submissions per harvested record."""
        if not self.harvested:
            return float("inf")
        return self.queries_issued / len(self.harvested)


class DeepWebProber:
    """Harvests a deep-web site by iterative query expansion.

    The strategy mirrors published deep-web surfacing systems: start
    from seed *known entities* (phones from the reference database —
    exact, high-precision probes), expand through the name space with
    prefix queries minted from harvested records' name tokens, and
    *drill down* the prefix tree whenever a results page comes back
    full (a full first page means the form is hiding more matches, so
    the prefix is extended letter by letter — the classic query-tree
    traversal of deep-web harvesting).

    Args:
        seed_listings: Known entities used for the initial exact probes.
        max_queries: Probe budget.
        prefix_length: Name-prefix length for expansion queries.
    """

    def __init__(
        self,
        seed_listings: list[BusinessListing],
        max_queries: int = 500,
        prefix_length: int = 4,
    ) -> None:
        if max_queries < 1:
            raise ValueError("max_queries must be positive")
        if prefix_length < 1:
            raise ValueError("prefix_length must be positive")
        self.seed_listings = list(seed_listings)
        self.max_queries = max_queries
        self.prefix_length = prefix_length

    def _prefixes_of(self, name: str) -> list[str]:
        return [
            token[: self.prefix_length].lower()
            for token in name.split()
            if len(token) >= self.prefix_length
        ]

    def probe(self, site: DeepWebSite) -> ProbeResult:
        """Run the harvesting loop against one site."""
        harvested: dict[str, BusinessListing] = {}
        tried_prefixes: set[str] = set()
        queue: list[str] = []
        queries = 0

        # Phase 1: exact probes with known identifying attributes.
        for listing in self.seed_listings:
            if queries >= self.max_queries:
                break
            queries += 1
            for hit in site.query_phone(listing.phone):
                harvested[hit.entity_id] = hit
                queue.extend(self._prefixes_of(hit.name))

        # Phase 2: expand through the name space, drilling down the
        # prefix tree whenever a result page is full.  Single-letter
        # roots guarantee the whole tree is reachable even when the
        # harvested vocabulary is narrow.
        queue.extend("abcdefghijklmnopqrstuvwxyz")
        position = 0
        while queries < self.max_queries and position < len(queue):
            prefix = queue[position]
            position += 1
            if prefix in tried_prefixes:
                continue
            tried_prefixes.add(prefix)
            queries += 1
            results = site.query_name_prefix(prefix)
            for hit in results:
                if hit.entity_id not in harvested:
                    harvested[hit.entity_id] = hit
                    queue.extend(self._prefixes_of(hit.name))
            if len(results) >= site.page_size:
                # full page: the form is truncating — refine the prefix
                # (the alphabet covers every character business names use)
                queue.extend(
                    prefix + letter
                    for letter in "abcdefghijklmnopqrstuvwxyz '&-"
                )

        coverage = len(harvested) / site.n_hidden if site.n_hidden else 0.0
        return ProbeResult(
            harvested=set(harvested),
            queries_issued=queries,
            coverage=coverage,
        )
