"""Page stores: where the synthetic crawl lives.

Two interchangeable backends implement the same small interface:

- :class:`MemoryPageStore` — a dict of lists, for tests and the
  laptop-scale experiments.
- :class:`SqlitePageStore` — a SQLite table with a host index, for
  corpora too large to hold in memory and for persistence between
  pipeline stages.  SQLite is part of the standard library, so the
  dependency footprint stays unchanged.

Both store :class:`Page` records and support host-ordered scans, which
is the only access pattern the analyses need (the paper "groups pages
by hosts" and aggregates per host).
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.entities.ids import host_of_url

__all__ = ["MemoryPageStore", "Page", "PageStore", "SqlitePageStore"]


@dataclass(frozen=True)
class Page:
    """One crawled page: a URL, its canonical host, and HTML content."""

    url: str
    host: str
    content: str

    @classmethod
    def from_url(cls, url: str, content: str) -> "Page":
        """Build a page, deriving the canonical host from the URL."""
        return cls(url=url, host=host_of_url(url), content=content)


class PageStore(ABC):
    """Minimal storage interface for crawled pages."""

    @abstractmethod
    def add(self, page: Page) -> None:
        """Insert one page."""

    def add_many(self, pages: Iterable[Page]) -> None:
        """Insert many pages (override for bulk-optimized backends)."""
        for page in pages:
            self.add(page)

    @abstractmethod
    def hosts(self) -> list[str]:
        """All distinct hosts, sorted."""

    @abstractmethod
    def pages_for_host(self, host: str) -> list[Page]:
        """All pages of one host."""

    @abstractmethod
    def __len__(self) -> int:
        """Total number of pages."""

    def scan_by_host(self) -> Iterator[tuple[str, list[Page]]]:
        """Yield ``(host, pages)`` for every host, sorted by host."""
        for host in self.hosts():
            yield host, self.pages_for_host(host)


class MemoryPageStore(PageStore):
    """In-memory page store; the default for experiments and tests."""

    def __init__(self) -> None:
        self._by_host: dict[str, list[Page]] = {}
        self._count = 0

    def add(self, page: Page) -> None:
        """Insert one page under its host."""
        self._by_host.setdefault(page.host, []).append(page)
        self._count += 1

    def hosts(self) -> list[str]:
        """All hosts with at least one page, sorted."""
        return sorted(self._by_host)

    def pages_for_host(self, host: str) -> list[Page]:
        """All pages stored for ``host`` (empty list if unknown)."""
        return list(self._by_host.get(host, []))

    def __len__(self) -> int:
        return self._count


class SqlitePageStore(PageStore):
    """SQLite-backed page store.

    Args:
        path: Database file, or ``":memory:"`` (the default) for an
            ephemeral database that still exercises the SQL path.

    The table carries a host index so ``pages_for_host`` and the
    host-ordered scan stay index-driven rather than full scans.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS pages (
            id INTEGER PRIMARY KEY,
            url TEXT NOT NULL,
            host TEXT NOT NULL,
            content TEXT NOT NULL
        );
        CREATE INDEX IF NOT EXISTS idx_pages_host ON pages(host);
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path))
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def add(self, page: Page) -> None:
        """Insert one page under its host."""
        self._conn.execute(
            "INSERT INTO pages (url, host, content) VALUES (?, ?, ?)",
            (page.url, page.host, page.content),
        )
        self._conn.commit()

    def add_many(self, pages: Iterable[Page]) -> None:
        """Bulk-insert pages in one transaction (one commit)."""
        self._conn.executemany(
            "INSERT INTO pages (url, host, content) VALUES (?, ?, ?)",
            ((p.url, p.host, p.content) for p in pages),
        )
        self._conn.commit()

    def hosts(self) -> list[str]:
        """All hosts with at least one page, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT host FROM pages ORDER BY host"
        ).fetchall()
        return [row[0] for row in rows]

    def pages_for_host(self, host: str) -> list[Page]:
        """All pages stored for ``host``, in insertion order."""
        rows = self._conn.execute(
            "SELECT url, host, content FROM pages WHERE host = ? ORDER BY id",
            (host,),
        ).fetchall()
        return [Page(url=u, host=h, content=c) for u, h, c in rows]

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM pages").fetchone()
        return int(count)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "SqlitePageStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
