"""Host-grouped view over a page store.

:class:`WebCache` is the object the extraction runner scans — the
analogue of "we go through the entire Web cache and look for the
identifying attributes of the entities on each page.  We group pages by
hosts" (Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.crawl.store import Page, PageStore

__all__ = ["WebCache"]


class WebCache:
    """Scan API over a crawled corpus, grouped by canonical host."""

    def __init__(self, store: PageStore) -> None:
        self._store = store

    @property
    def store(self) -> PageStore:
        """The underlying page store."""
        return self._store

    def n_pages(self) -> int:
        """Total pages in the cache."""
        return len(self._store)

    def n_hosts(self) -> int:
        """Number of distinct hosts."""
        return len(self._store.hosts())

    def hosts(self) -> list[str]:
        """All hosts, sorted."""
        return self._store.hosts()

    def scan(self) -> Iterator[tuple[str, list[Page]]]:
        """Yield ``(host, pages)`` per host — the extraction entry point."""
        yield from self._store.scan_by_host()

    def scan_pages(self) -> Iterator[Page]:
        """Yield every page, host-ordered."""
        for _, pages in self.scan():
            yield from pages

    def map_hosts(
        self, fn: Callable[[str, list[Page]], object]
    ) -> dict[str, object]:
        """Apply ``fn`` per host and collect the results.

        A convenience for per-host aggregations (the shape of every
        computation in the spread analysis).
        """
        return {host: fn(host, pages) for host, pages in self.scan()}
