"""Web crawl cache substrate.

The paper scans "Web cache data, which contains all webpages crawled by
Yahoo! search engine", grouping pages by host (Section 3.1).  This
package is the stand-in: a page store with an in-memory and a
SQLite-backed implementation, a host-grouped scan API, and the
host-level entity aggregation the spread analysis consumes.

- :mod:`repro.crawl.store` — :class:`Page`, :class:`MemoryPageStore`,
  :class:`SqlitePageStore`.
- :mod:`repro.crawl.cache` — :class:`WebCache`, the host-grouped view.
- :mod:`repro.crawl.hostindex` — :class:`HostIndex`, host → entity-set
  aggregation feeding :class:`~repro.core.incidence.BipartiteIncidence`.
"""

from repro.crawl.cache import WebCache
from repro.crawl.deepweb import DeepWebProber, DeepWebSite, ProbeResult
from repro.crawl.hostindex import HostIndex
from repro.crawl.store import MemoryPageStore, Page, PageStore, SqlitePageStore

__all__ = [
    "DeepWebProber",
    "DeepWebSite",
    "HostIndex",
    "MemoryPageStore",
    "Page",
    "PageStore",
    "ProbeResult",
    "SqlitePageStore",
    "WebCache",
]
