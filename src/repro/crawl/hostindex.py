"""Host → entity aggregation.

The final step of the paper's methodology: "for each host, we aggregate
the set of entities found on all the pages in that host".
:class:`HostIndex` accumulates per-host entity mentions (with page
counts, for the aggregate-review analysis) and converts the result into
the :class:`~repro.core.incidence.BipartiteIncidence` every analysis
consumes.
"""

from __future__ import annotations

from collections import Counter

from repro.core.incidence import BipartiteIncidence
from repro.entities.catalog import EntityDatabase

__all__ = ["HostIndex"]


class HostIndex:
    """Accumulates (host, entity) mention counts.

    Args:
        database: The entity database the mentions refer to; it provides
            the dense entity indexing of the resulting incidence.
    """

    def __init__(self, database: EntityDatabase) -> None:
        self._database = database
        self._mentions: dict[str, Counter[str]] = {}

    def record(self, host: str, entity_id: str, pages: int = 1) -> None:
        """Record that ``host`` mentions ``entity_id`` on ``pages`` pages."""
        if pages < 1:
            raise ValueError("pages must be >= 1")
        if entity_id not in self._database:
            raise KeyError(f"unknown entity {entity_id!r}")
        self._mentions.setdefault(host, Counter())[entity_id] += pages

    def record_page(self, host: str, entity_ids: set[str]) -> None:
        """Record one page mentioning each entity in ``entity_ids``."""
        for entity_id in entity_ids:
            self.record(host, entity_id)

    @property
    def n_hosts(self) -> int:
        """Hosts with at least one recorded mention."""
        return len(self._mentions)

    def entities_of(self, host: str) -> set[str]:
        """Entity ids mentioned by ``host``."""
        return set(self._mentions.get(host, ()))

    def to_incidence(self, with_multiplicity: bool = False) -> BipartiteIncidence:
        """Freeze the accumulated mentions into an incidence structure.

        Args:
            with_multiplicity: Keep page counts per edge (needed for the
                aggregate-review curve); otherwise edges are unweighted.
        """
        hosts = sorted(self._mentions)
        sites = []
        multiplicities = [] if with_multiplicity else None
        for host in hosts:
            counter = self._mentions[host]
            ids = sorted(counter)
            indices = [self._database.index_of(eid) for eid in ids]
            sites.append((host, indices))
            if multiplicities is not None:
                multiplicities.append([counter[eid] for eid in ids])
        return BipartiteIncidence.from_site_lists(
            n_entities=len(self._database),
            sites=sites,
            multiplicities=multiplicities,
            entity_ids=self._database.entity_ids,
        )
