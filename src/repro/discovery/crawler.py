"""Focused-crawl cost model: coverage as a function of pages fetched.

The paper's coverage curves count *sites*, but the operational cost of
domain-centric extraction is *pages crawled* — the intro lists
"automatic crawling" first among the components of the end-to-end
challenge.  This module simulates a focused crawler over a synthetic
corpus: sites cost pages proportional to their content, a global page
budget limits the crawl, and a scheduling policy decides which
discovered site to crawl next.

Policies:

- ``largest_first`` — crawl the biggest known site next (the size
  ordering of the paper's coverage analysis);
- ``greedy_oracle`` — crawl the site with the most *uncovered* entities
  (the set-cover upper bound; unrealizable, needs oracle knowledge);
- ``random`` — uninformed baseline.

The output is the coverage-vs-pages curve, the page-denominated version
of Figures 1–4.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = ["CrawlResult", "FocusedCrawler"]

POLICIES = ("largest_first", "greedy_oracle", "random")


@dataclass(frozen=True)
class CrawlResult:
    """Trajectory of one crawl.

    Attributes:
        policy: Scheduling policy used.
        pages_fetched: Cumulative pages after each crawled site.
        coverage: 1-coverage of the database after each crawled site.
        sites_crawled: Number of sites fully crawled within budget.
        total_pages: Final page count (<= budget).
    """

    policy: str
    pages_fetched: np.ndarray
    coverage: np.ndarray
    sites_crawled: int
    total_pages: int

    def coverage_at_pages(self, budget: int) -> float:
        """Coverage achieved within the first ``budget`` pages."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        index = np.searchsorted(self.pages_fetched, budget, side="right") - 1
        if index < 0:
            return 0.0
        return float(self.coverage[index])


class FocusedCrawler:
    """Simulates budgeted site-by-site crawling of a corpus.

    Args:
        incidence: The entity–site structure (who has what).
        entities_per_page: Page cost model: a site with m entities costs
            ``ceil(m / entities_per_page)`` pages, minimum 1.
        overhead_pages: Non-content pages fetched per site (navigation,
            pagination discovery).
    """

    def __init__(
        self,
        incidence: BipartiteIncidence,
        entities_per_page: int = 10,
        overhead_pages: int = 2,
    ) -> None:
        if entities_per_page < 1:
            raise ValueError("entities_per_page must be >= 1")
        if overhead_pages < 0:
            raise ValueError("overhead_pages must be non-negative")
        self.incidence = incidence
        self.entities_per_page = entities_per_page
        self.overhead_pages = overhead_pages

    def site_cost(self, site: int) -> int:
        """Pages needed to crawl one site fully."""
        size = int(self.incidence.site_sizes()[site])
        content = -(-size // self.entities_per_page) if size else 1
        return content + self.overhead_pages

    def crawl(
        self,
        page_budget: int,
        policy: str = "largest_first",
        rng: np.random.Generator | int = 0,
    ) -> CrawlResult:
        """Crawl sites under ``policy`` until the page budget runs out.

        Sites are atomic: a site is crawled fully or not at all (a
        partially-wrapped site yields no reliable extraction).
        """
        if page_budget < 0:
            raise ValueError("page_budget must be non-negative")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))

        inc = self.incidence
        sizes = inc.site_sizes()
        costs = np.array([self.site_cost(s) for s in range(inc.n_sites)])
        covered = np.zeros(inc.n_entities, dtype=bool)
        pages_used = 0
        pages_curve: list[int] = []
        coverage_curve: list[float] = []
        crawled = 0
        denominator = max(inc.n_entities, 1)

        if policy == "largest_first":
            order = inc.sites_by_size()
        elif policy == "random":
            order = rng.permutation(inc.n_sites)
        else:
            order = None  # greedy decides dynamically

        if policy == "greedy_oracle":
            # Lazy greedy (stale gains are upper bounds by submodularity).
            heap = [(-int(sizes[s]), s) for s in range(inc.n_sites) if sizes[s]]
            heapq.heapify(heap)
            while heap:
                __, site = heapq.heappop(heap)
                entities = inc.site_entities(site)
                gain = int(np.count_nonzero(~covered[entities]))
                if gain == 0:
                    continue
                if heap and -heap[0][0] > gain:
                    heapq.heappush(heap, (-gain, site))
                    continue
                if pages_used + costs[site] > page_budget:
                    continue  # unaffordable; cheaper sites may still fit
                pages_used += int(costs[site])
                covered[entities] = True
                crawled += 1
                pages_curve.append(pages_used)
                coverage_curve.append(float(covered.sum()) / denominator)
        else:
            for site in order:
                site = int(site)
                if pages_used + costs[site] > page_budget:
                    continue  # skip unaffordable sites
                pages_used += int(costs[site])
                covered[inc.site_entities(site)] = True
                crawled += 1
                pages_curve.append(pages_used)
                coverage_curve.append(float(covered.sum()) / denominator)

        return CrawlResult(
            policy=policy,
            pages_fetched=np.asarray(pages_curve, dtype=np.int64),
            coverage=np.asarray(coverage_curve),
            sites_crawled=crawled,
            total_pages=pages_used,
        )

    def compare_policies(
        self,
        page_budget: int,
        rng: np.random.Generator | int = 0,
    ) -> dict[str, CrawlResult]:
        """Run every policy under the same budget."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        return {
            policy: self.crawl(page_budget, policy=policy, rng=rng)
            for policy in POLICIES
        }
