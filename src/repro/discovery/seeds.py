"""Seed-sensitivity study for bootstrapping discovery.

Section 5's robustness claim: "any seed set of structured entities will
contain, with high probability, at least one entity from the largest
component; thus we are all but surely guaranteed to discover and
extract most of the entities from random seed sets."  This module turns
that claim into a measurable experiment:

- :func:`seed_success_probability` — over many random trials, the
  probability that a seed set of size s reaches (nearly) the largest
  component, as a function of s.  The paper's claim predicts a fast
  approach to 1 (analytically, ``1 - (1 - p)**s`` with p the largest-
  component mass).
- :func:`seed_origin_comparison` — does it matter whether seeds are
  head entities, tail entities, or uniform?  (Connectivity says no.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import EntitySiteGraph
from repro.core.incidence import BipartiteIncidence
from repro.discovery.bootstrap import BootstrapExpansion

__all__ = [
    "SeedStudy",
    "seed_origin_comparison",
    "seed_success_probability",
]


@dataclass(frozen=True)
class SeedStudy:
    """Result of one seed-size sensitivity sweep.

    Attributes:
        seed_sizes: The seed-set sizes tried.
        success_rate: Fraction of trials reaching the success threshold
            of largest-component coverage, per seed size.
        mean_coverage: Mean database fraction discovered, per seed size.
        predicted: The analytic prediction ``1 - (1 - p)**s`` where p is
            the largest component's share of mentioned entities.
    """

    seed_sizes: np.ndarray
    success_rate: np.ndarray
    mean_coverage: np.ndarray
    predicted: np.ndarray


def seed_success_probability(
    incidence: BipartiteIncidence,
    seed_sizes: tuple[int, ...] = (1, 2, 3, 5, 8),
    trials: int = 30,
    success_threshold: float = 0.95,
    rng: np.random.Generator | int = 0,
) -> SeedStudy:
    """Estimate discovery success probability vs. seed-set size.

    A trial succeeds when the expansion discovers at least
    ``success_threshold`` of the largest component's entities.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    if not 0.0 < success_threshold <= 1.0:
        raise ValueError("success_threshold must be in (0, 1]")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    summary = EntitySiteGraph(incidence).components()
    largest = summary.largest_component_entities
    if largest == 0:
        raise ValueError("incidence has no connected content")
    p_largest = largest / summary.n_present_entities
    expansion = BootstrapExpansion(incidence)
    mentioned = incidence.mentioned_entities()

    sizes = np.asarray(seed_sizes, dtype=np.int64)
    success = np.zeros(len(sizes))
    coverage = np.zeros(len(sizes))
    for i, size in enumerate(sizes):
        if size < 1:
            raise ValueError("seed sizes must be positive")
        wins = 0
        fractions = []
        for _ in range(trials):
            seeds = rng.choice(
                mentioned, size=min(int(size), len(mentioned)), replace=False
            )
            trace = expansion.run(seeds)
            fractions.append(len(trace.entities) / incidence.n_entities)
            if len(trace.entities) >= success_threshold * largest:
                wins += 1
        success[i] = wins / trials
        coverage[i] = float(np.mean(fractions))
    predicted = 1.0 - (1.0 - p_largest) ** sizes
    return SeedStudy(
        seed_sizes=sizes,
        success_rate=success,
        mean_coverage=coverage,
        predicted=predicted,
    )


def seed_origin_comparison(
    incidence: BipartiteIncidence,
    seed_size: int = 3,
    trials: int = 20,
    rng: np.random.Generator | int = 0,
) -> dict[str, float]:
    """Mean discovered fraction for head / tail / uniform seed origins.

    Head seeds come from the most-mentioned decile of entities, tail
    seeds from the least-mentioned decile (but still mentioned), and
    uniform seeds from all mentioned entities.  Connectivity predicts
    nearly identical outcomes.
    """
    if seed_size < 1 or trials < 1:
        raise ValueError("seed_size and trials must be positive")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    expansion = BootstrapExpansion(incidence)
    mentions = incidence.entity_mention_counts()
    mentioned = incidence.mentioned_entities()
    ranked = mentioned[np.argsort(mentions[mentioned])[::-1]]
    decile = max(1, len(ranked) // 10)
    pools = {
        "head": ranked[:decile],
        "tail": ranked[-decile:],
        "uniform": ranked,
    }
    results: dict[str, float] = {}
    for label, pool in pools.items():
        fractions = []
        for _ in range(trials):
            seeds = rng.choice(
                pool, size=min(seed_size, len(pool)), replace=False
            )
            trace = expansion.run(seeds)
            fractions.append(len(trace.entities) / incidence.n_entities)
        results[label] = float(np.mean(fractions))
    return results
