"""The "perfect" set-expansion algorithm over an entity–site incidence.

One iteration maps a set of known entities to every site mentioning any
of them, then to every entity those sites mention.  Section 5 of the
paper derives two properties this module lets us verify empirically:

- starting from any seed, the algorithm discovers exactly the seed's
  connected component(s) of the bipartite graph, and
- "starting from any seed set, the number of iterations it takes to
  extract all the entities is bounded by d/2" where d is the diameter.

Real systems (Flint, KnowItAll, set-expansion methods) approximate this
with search engines and noisy extraction; the perfect variant is the
upper bound the paper reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = ["BootstrapExpansion", "ExpansionTrace"]


@dataclass(frozen=True)
class ExpansionTrace:
    """History of one bootstrapping run.

    Attributes:
        entity_counts: Known entities after each iteration (cumulative;
            index 0 is the seed set size).
        site_counts: Discovered sites after each iteration.
        iterations: Iterations executed until the frontier emptied.
        entities: Final known-entity index array (sorted).
        sites: Final discovered-site index array (sorted).
    """

    entity_counts: list[int]
    site_counts: list[int]
    iterations: int
    entities: np.ndarray
    sites: np.ndarray

    def entity_fraction(self, n_entities: int) -> float:
        """Fraction of the database discovered."""
        if n_entities <= 0:
            raise ValueError("n_entities must be positive")
        return len(self.entities) / n_entities


class BootstrapExpansion:
    """Runs perfect set expansion over a fixed incidence.

    Precomputes the entity→sites transpose of the CSR so each iteration
    is two vectorized gathers.
    """

    def __init__(self, incidence: BipartiteIncidence) -> None:
        self.incidence = incidence
        edge_sites = np.repeat(
            np.arange(incidence.n_sites), incidence.site_sizes()
        )
        order = np.argsort(incidence.entity_idx, kind="stable")
        self._entity_ptr = np.zeros(incidence.n_entities + 1, dtype=np.int64)
        counts = np.bincount(
            incidence.entity_idx, minlength=incidence.n_entities
        )
        self._entity_ptr[1:] = np.cumsum(counts)
        self._entity_sites = edge_sites[order]

    def sites_of_entities(self, entities: np.ndarray) -> np.ndarray:
        """All sites mentioning any of ``entities`` (sorted, unique)."""
        entities = np.asarray(entities, dtype=np.int64)
        starts = self._entity_ptr[entities]
        counts = self._entity_ptr[entities + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        bounds = np.cumsum(counts)
        gather = (
            np.arange(total)
            - np.repeat(bounds - counts, counts)
            + np.repeat(starts, counts)
        )
        return np.unique(self._entity_sites[gather])

    def entities_of_sites(self, sites: np.ndarray) -> np.ndarray:
        """All entities mentioned by any of ``sites`` (sorted, unique)."""
        sites = np.asarray(sites, dtype=np.int64)
        ptr = self.incidence.site_ptr
        starts = ptr[sites]
        counts = ptr[sites + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        bounds = np.cumsum(counts)
        gather = (
            np.arange(total)
            - np.repeat(bounds - counts, counts)
            + np.repeat(starts, counts)
        )
        return np.unique(self.incidence.entity_idx[gather])

    def run(
        self,
        seed_entities: Sequence[int] | Iterable[int],
        max_iterations: int | None = None,
    ) -> ExpansionTrace:
        """Expand from a seed set until no new entities appear.

        Args:
            seed_entities: Entity indices to start from.
            max_iterations: Optional cap (default: run to fixpoint).

        Returns:
            The expansion trace.
        """
        entities = np.unique(np.asarray(list(seed_entities), dtype=np.int64))
        if len(entities) == 0:
            raise ValueError("seed set must be non-empty")
        if entities.min() < 0 or entities.max() >= self.incidence.n_entities:
            raise ValueError("seed entity index out of range")
        sites = np.empty(0, dtype=np.int64)
        entity_counts = [len(entities)]
        site_counts = [0]
        iterations = 0
        cap = max_iterations if max_iterations is not None else np.inf
        while iterations < cap:
            new_sites = self.sites_of_entities(entities)
            new_entities = self.entities_of_sites(new_sites)
            merged_entities = np.union1d(entities, new_entities)
            merged_sites = np.union1d(sites, new_sites)
            progressed = len(merged_entities) > len(entities) or len(
                merged_sites
            ) > len(sites)
            entities, sites = merged_entities, merged_sites
            if not progressed:
                break
            iterations += 1
            entity_counts.append(len(entities))
            site_counts.append(len(sites))
        return ExpansionTrace(
            entity_counts=entity_counts,
            site_counts=site_counts,
            iterations=iterations,
            entities=entities,
            sites=sites,
        )

    def random_seed_trial(
        self,
        seed_size: int,
        rng: np.random.Generator | int,
        max_iterations: int | None = None,
    ) -> ExpansionTrace:
        """Run from a uniformly random seed set of mentioned entities.

        The paper's robustness claim: "any seed set of structured
        entities will contain, with high probability, at least one
        entity from the largest component".
        """
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        mentioned = self.incidence.mentioned_entities()
        if len(mentioned) == 0:
            raise ValueError("incidence has no mentioned entities")
        seed_size = min(seed_size, len(mentioned))
        seeds = rng.choice(mentioned, size=seed_size, replace=False)
        return self.run(seeds, max_iterations=max_iterations)
