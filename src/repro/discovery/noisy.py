"""Imperfect bootstrapping: budgeted retrieval and lossy extraction.

Section 5 analyzes the *perfect* set-expansion algorithm (every site of
every known entity is found, every entity of every found site is
extracted).  Real systems in the class the paper cites — Flint,
KnowItAll, iterative set expansion — are imperfect in two specific
ways, both modelled here:

- **retrieval budget**: querying a search engine for an entity's
  identifying attribute returns only the top-B sites (by prominence,
  which correlates with size);
- **extraction recall**: an unsupervised wrapper recovers only a
  fraction of a site's entities.

The question the simulation answers: how far below the paper's
connectivity-derived upper bound does a realistic system land, and how
many extra iterations does it pay?  (The paper's bound: full component
coverage within d/2 iterations.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence
from repro.discovery.bootstrap import BootstrapExpansion

__all__ = ["NoisyExpansion", "NoisyTrace"]


@dataclass(frozen=True)
class NoisyTrace:
    """History of one noisy bootstrapping run.

    Attributes:
        entity_counts: Known entities after each iteration.
        site_counts: Sites ever retrieved after each iteration.
        iterations: Iterations until the frontier dried up (or the cap).
        entities: Final known entity indices (sorted).
        sites: Final retrieved site indices (sorted).
        queries_issued: Total retrieval queries (one per new entity per
            iteration) — the system's dominant external cost.
    """

    entity_counts: list[int]
    site_counts: list[int]
    iterations: int
    entities: np.ndarray
    sites: np.ndarray
    queries_issued: int

    def entity_fraction(self, n_entities: int) -> float:
        """Fraction of the database discovered."""
        if n_entities <= 0:
            raise ValueError("n_entities must be positive")
        return len(self.entities) / n_entities


class NoisyExpansion:
    """Budgeted, lossy set expansion over a fixed incidence.

    Args:
        incidence: The entity–site structure being explored.
        retrieval_budget: Max sites returned per entity query (top-B by
            site size, the search-engine prominence proxy).  ``None``
            disables the budget (perfect retrieval).
        extraction_recall: Probability each entity on a processed site
            is successfully extracted.  1.0 is perfect extraction.
        seed: RNG seed for the extraction lossiness.
    """

    def __init__(
        self,
        incidence: BipartiteIncidence,
        retrieval_budget: int | None = 10,
        extraction_recall: float = 1.0,
        seed: int = 0,
    ) -> None:
        if retrieval_budget is not None and retrieval_budget < 1:
            raise ValueError("retrieval_budget must be >= 1 or None")
        if not 0.0 < extraction_recall <= 1.0:
            raise ValueError("extraction_recall must be in (0, 1]")
        self.incidence = incidence
        self.retrieval_budget = retrieval_budget
        self.extraction_recall = extraction_recall
        self._rng = np.random.default_rng(seed)
        self._perfect = BootstrapExpansion(incidence)
        sizes = incidence.site_sizes()
        # search-engine prominence rank of every site (0 = most prominent)
        self._prominence = np.empty(incidence.n_sites, dtype=np.int64)
        self._prominence[incidence.sites_by_size()] = np.arange(incidence.n_sites)

    def _retrieve(self, entity: int) -> np.ndarray:
        """Sites returned when querying one entity's identifying key."""
        sites = self._perfect.sites_of_entities(np.asarray([entity]))
        if self.retrieval_budget is None or len(sites) <= self.retrieval_budget:
            return sites
        ranked = sites[np.argsort(self._prominence[sites])]
        return ranked[: self.retrieval_budget]

    def _extract(self, site: int) -> np.ndarray:
        """Entities recovered from one site under lossy extraction."""
        entities = self.incidence.site_entities(int(site))
        if self.extraction_recall >= 1.0 or len(entities) == 0:
            return entities
        keep = self._rng.random(len(entities)) < self.extraction_recall
        return entities[keep]

    def run(
        self,
        seed_entities: list[int] | np.ndarray,
        max_iterations: int = 50,
    ) -> NoisyTrace:
        """Iterate retrieve → extract → expand until no progress.

        A site is processed (wrapped) at most once; re-retrieving it in
        a later iteration does not re-run extraction — matching how a
        real system caches wrapped sources.
        """
        entities = set(int(e) for e in seed_entities)
        if not entities:
            raise ValueError("seed set must be non-empty")
        for entity in entities:
            if not 0 <= entity < self.incidence.n_entities:
                raise ValueError(f"seed entity {entity} out of range")
        processed_sites: set[int] = set()
        queried_entities: set[int] = set()
        entity_counts = [len(entities)]
        site_counts = [0]
        queries = 0
        iterations = 0
        while iterations < max_iterations:
            frontier = entities - queried_entities
            if not frontier:
                break
            new_sites: set[int] = set()
            for entity in sorted(frontier):
                queries += 1
                for site in self._retrieve(entity).tolist():
                    if site not in processed_sites:
                        new_sites.add(int(site))
            queried_entities |= frontier
            if not new_sites:
                break
            discovered: set[int] = set()
            for site in sorted(new_sites):
                discovered.update(int(e) for e in self._extract(site).tolist())
            processed_sites |= new_sites
            before = len(entities)
            entities |= discovered
            iterations += 1
            entity_counts.append(len(entities))
            site_counts.append(len(processed_sites))
            if len(entities) == before and not new_sites:
                break
        return NoisyTrace(
            entity_counts=entity_counts,
            site_counts=site_counts,
            iterations=iterations,
            entities=np.asarray(sorted(entities), dtype=np.int64),
            sites=np.asarray(sorted(processed_sites), dtype=np.int64),
            queries_issued=queries,
        )
