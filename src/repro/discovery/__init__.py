"""Bootstrapping source discovery (the algorithm class behind Section 5).

The paper analyzes the entity–site graph because of what it implies for
"a general class of bootstrapping-based algorithms, where one starts
with seed entities, use[s] them to reach all sites covering these
entities ..., expand[s] the set of entities with all other entities
covered on these new sites, and iterate[s]".  This package implements
that "perfect" set-expansion algorithm so the graph-theoretic claims
(reach = connected component; iterations ≤ d/2) can be validated by
actually running it.
"""

from repro.discovery.bootstrap import BootstrapExpansion, ExpansionTrace
from repro.discovery.crawler import CrawlResult, FocusedCrawler
from repro.discovery.noisy import NoisyExpansion, NoisyTrace
from repro.discovery.seeds import (
    SeedStudy,
    seed_origin_comparison,
    seed_success_probability,
)

__all__ = [
    "BootstrapExpansion",
    "CrawlResult",
    "ExpansionTrace",
    "FocusedCrawler",
    "NoisyExpansion",
    "NoisyTrace",
    "SeedStudy",
    "seed_origin_comparison",
    "seed_success_probability",
]
