"""Inline suppression comments: ``# reprolint: disable=RULE[,RULE...]``.

Two forms are recognised, both parsed from real comment tokens (via
:mod:`tokenize`) so string literals that merely *look* like directives
are ignored:

- ``# reprolint: disable=RNG001`` on a line suppresses the listed rules
  for findings reported **on that line**.
- ``# reprolint: disable-file=RNG001`` anywhere in the file suppresses
  the listed rules for the **whole file**.

``disable=all`` (or ``disable-file=all``) suppresses every rule.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)

_ALL = "all"


class Suppressions:
    """Parsed suppression directives for one source file."""

    def __init__(
        self,
        file_rules: frozenset[str] = frozenset(),
        line_rules: dict[int, frozenset[str]] | None = None,
    ) -> None:
        self.file_rules = file_rules
        self.line_rules = dict(line_rules or {})

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is disabled on ``line`` or file-wide."""
        if _ALL in self.file_rules or rule_id in self.file_rules:
            return True
        at_line = self.line_rules.get(line, frozenset())
        return _ALL in at_line or rule_id in at_line


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from ``source``.

    Tolerates files that fail to tokenize (the linter reports those as
    parse errors separately) by returning an empty suppression set.
    """
    file_rules: set[str] = set()
    line_rules: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("kind") == "disable-file":
            file_rules.update(rules)
        else:
            line_rules.setdefault(tok.start[0], set()).update(rules)
    return Suppressions(
        frozenset(file_rules),
        {line: frozenset(rules) for line, rules in line_rules.items()},
    )
