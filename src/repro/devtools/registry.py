"""Rule registry and the per-module / whole-run analysis context.

Rules self-register via the :func:`register` decorator when their module
is imported (``repro.devtools.rules`` imports every rule module).  A rule
has either ``scope == "module"`` (checked file by file) or
``scope == "project"`` (checked once over all parsed modules — e.g. the
import-graph layering rules and the CONC concurrency family).

Every check method receives an optional :class:`AnalysisContext`: the
resolved lint configuration, the full parsed module set, and a cache
dict shared by every rule in one invocation — how the four CONC rules
share one symbol-table/call-graph/lock-model build instead of four.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.devtools.findings import Finding
from repro.devtools.suppressions import Suppressions, parse_suppressions

if TYPE_CHECKING:  # import only for annotations: config imports nothing back
    from repro.devtools.config import LintConfig

__all__ = [
    "AnalysisContext",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "make_module_info",
    "register",
    "resolve_selectors",
]


@dataclasses.dataclass
class ModuleInfo:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    module_name: str | None = None
    is_package: bool = False

    @property
    def package(self) -> str | None:
        """Top-level ``repro`` subpackage this module belongs to.

        ``"core"`` for ``repro.core.graph``; ``None`` for files outside
        ``repro`` or for root modules like ``repro.cli``.
        """
        if self.module_name is None:
            return None
        parts = self.module_name.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return None
        if len(parts) == 2 and not self.is_package:
            return None  # root module such as repro.cli / repro.io
        return parts[1]


@dataclasses.dataclass
class AnalysisContext:
    """Shared state for one lint invocation.

    ``modules`` is the full parsed module set (complete by the time
    project-scope rules run; module-scope rules should only rely on
    ``config`` and ``cache``).  ``cache`` is a scratch dict rules use to
    share expensive derived structures — the CONC family stores its
    symbol-table/call-graph build here under a private key so the four
    rules pay for one analysis, not four.
    """

    config: "LintConfig | None" = None
    modules: list["ModuleInfo"] = dataclasses.field(default_factory=list)
    cache: dict = dataclasses.field(default_factory=dict)


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` (stable, e.g. ``"RNG001"``), ``summary``
    (one line, shown by ``--list-rules``) and ``scope``, and override
    :meth:`check_module` or :meth:`check_project`.  Rules whose analysis
    is whole-project-expensive set ``heavy = True``; the driver skips
    them under ``--changed-only`` so pre-commit hooks stay fast.
    """

    rule_id: str = ""
    summary: str = ""
    scope: str = "module"
    heavy: bool = False

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Yield findings for a single module (module-scope rules)."""
        return iter(())

    def check_project(
        self, modules: list[ModuleInfo], context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Yield findings spanning many modules (project-scope rules)."""
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """All registered rules, keyed by rule id (import triggers registration)."""
    import repro.devtools.rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by exact id; raises ``KeyError`` if unknown."""
    return all_rules()[rule_id]


def resolve_selectors(selectors: Iterable[str]) -> frozenset[str]:
    """Expand rule selectors to concrete rule ids.

    A selector is an exact id (``RNG001``), a family prefix (``RNG``),
    or ``all``.  Unknown selectors raise ``ValueError`` so typos in
    config fail loudly.
    """
    rules = all_rules()
    resolved: set[str] = set()
    for selector in selectors:
        if selector == "all":
            resolved.update(rules)
            continue
        matched = {rid for rid in rules if rid == selector or rid.startswith(selector)}
        if not matched:
            raise ValueError(f"unknown reprolint rule or family: {selector!r}")
        resolved.update(matched)
    return frozenset(resolved)


def make_module_info(path: Path, relpath: str, source: str) -> ModuleInfo:
    """Parse ``source`` into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=str(path))
    module_name, is_package = _infer_module_name(relpath)
    return ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
        module_name=module_name,
        is_package=is_package,
    )


def _infer_module_name(relpath: str) -> tuple[str | None, bool]:
    """Map ``src/repro/core/graph.py`` → (``repro.core.graph``, False)."""
    parts = Path(relpath).parts
    if "repro" not in parts:
        return None, False
    idx = parts.index("repro")
    tail = parts[idx:]
    if not tail[-1].endswith(".py"):
        return None, False
    is_package = tail[-1] == "__init__.py"
    if is_package:
        dotted = ".".join(tail[:-1])
    else:
        dotted = ".".join(tail)[: -len(".py")]
    return dotted, is_package
