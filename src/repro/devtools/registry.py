"""Rule registry and the per-module analysis context.

Rules self-register via the :func:`register` decorator when their module
is imported (``repro.devtools.rules`` imports every rule module).  A rule
has either ``scope == "module"`` (checked file by file) or
``scope == "project"`` (checked once over all parsed modules — e.g. the
import-graph layering rules).
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator, Type

from repro.devtools.findings import Finding
from repro.devtools.suppressions import Suppressions, parse_suppressions

__all__ = [
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "make_module_info",
    "register",
    "resolve_selectors",
]


@dataclasses.dataclass
class ModuleInfo:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    module_name: str | None = None
    is_package: bool = False

    @property
    def package(self) -> str | None:
        """Top-level ``repro`` subpackage this module belongs to.

        ``"core"`` for ``repro.core.graph``; ``None`` for files outside
        ``repro`` or for root modules like ``repro.cli``.
        """
        if self.module_name is None:
            return None
        parts = self.module_name.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return None
        if len(parts) == 2 and not self.is_package:
            return None  # root module such as repro.cli / repro.io
        return parts[1]


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``rule_id`` (stable, e.g. ``"RNG001"``), ``summary``
    (one line, shown by ``--list-rules``) and ``scope``, and override
    :meth:`check_module` or :meth:`check_project`.
    """

    rule_id: str = ""
    summary: str = ""
    scope: str = "module"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        """Yield findings for a single module (module-scope rules)."""
        return iter(())

    def check_project(self, modules: list[ModuleInfo]) -> Iterator[Finding]:
        """Yield findings spanning many modules (project-scope rules)."""
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """All registered rules, keyed by rule id (import triggers registration)."""
    import repro.devtools.rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by exact id; raises ``KeyError`` if unknown."""
    return all_rules()[rule_id]


def resolve_selectors(selectors: Iterable[str]) -> frozenset[str]:
    """Expand rule selectors to concrete rule ids.

    A selector is an exact id (``RNG001``), a family prefix (``RNG``),
    or ``all``.  Unknown selectors raise ``ValueError`` so typos in
    config fail loudly.
    """
    rules = all_rules()
    resolved: set[str] = set()
    for selector in selectors:
        if selector == "all":
            resolved.update(rules)
            continue
        matched = {rid for rid in rules if rid == selector or rid.startswith(selector)}
        if not matched:
            raise ValueError(f"unknown reprolint rule or family: {selector!r}")
        resolved.update(matched)
    return frozenset(resolved)


def make_module_info(path: Path, relpath: str, source: str) -> ModuleInfo:
    """Parse ``source`` into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=str(path))
    module_name, is_package = _infer_module_name(relpath)
    return ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
        module_name=module_name,
        is_package=is_package,
    )


def _infer_module_name(relpath: str) -> tuple[str | None, bool]:
    """Map ``src/repro/core/graph.py`` → (``repro.core.graph``, False)."""
    parts = Path(relpath).parts
    if "repro" not in parts:
        return None, False
    idx = parts.index("repro")
    tail = parts[idx:]
    if not tail[-1].endswith(".py"):
        return None, False
    is_package = tail[-1] == "__init__.py"
    if is_package:
        dotted = ".".join(tail[:-1])
    else:
        dotted = ".".join(tail)[: -len(".py")]
    return dotted, is_package
