"""The unit of linter output: a :class:`Finding` pinned to file:line:col."""

from __future__ import annotations

import dataclasses

__all__ = ["Finding", "sort_findings"]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Orders naturally by (path, line, col, rule) so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Format as the canonical ``path:line:col: RULE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation (see docs/static_analysis.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Return findings sorted by location then rule id (deterministic)."""
    return sorted(findings)
