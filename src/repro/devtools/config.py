"""Configuration: the ``[tool.reprolint]`` section of ``pyproject.toml``.

Schema::

    [tool.reprolint]
    exclude = ["examples"]            # path prefixes never linted

    [tool.reprolint.paths.src]        # per-path rule selection
    select = ["RNG", "SEED", "LAY", "API"]

    [tool.reprolint.paths.tests]
    select = ["RNG001", "RNG002", "RNG003", "API003"]

``select`` entries are rule ids or family prefixes (``RNG`` = every
``RNG***`` rule); the policy whose path is the longest matching prefix
of a file's project-relative path wins.  Files matching no policy get
every rule.

On Python ≥ 3.11 the section is read with :mod:`tomllib`; on 3.10 a
small built-in parser covering exactly this schema subset (table
headers, string values, arrays of strings) is used instead, so the
linter has zero third-party dependencies everywhere.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path, PurePosixPath

__all__ = ["DEFAULT_EXCLUDES", "LintConfig", "PathPolicy", "load_config"]

DEFAULT_EXCLUDES: tuple[str, ...] = (
    ".git",
    "__pycache__",
    ".pytest_cache",
    "artifacts",
    "build",
    "dist",
)


@dataclasses.dataclass(frozen=True)
class PathPolicy:
    """Rule selectors applied to files under one path prefix."""

    prefix: str
    select: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Resolved reprolint configuration."""

    exclude: tuple[str, ...] = DEFAULT_EXCLUDES
    paths: tuple[PathPolicy, ...] = ()

    def is_excluded(self, relpath: str) -> bool:
        """True if ``relpath`` falls under any excluded prefix."""
        return any(_under(relpath, prefix) for prefix in self.exclude)

    def selectors_for(self, relpath: str) -> tuple[str, ...]:
        """Rule selectors for ``relpath``: longest-prefix policy, else all."""
        best: PathPolicy | None = None
        for policy in self.paths:
            if _under(relpath, policy.prefix):
                if best is None or len(policy.prefix) > len(best.prefix):
                    best = policy
        return best.select if best is not None else ("all",)


def _under(relpath: str, prefix: str) -> bool:
    """True if ``relpath`` is ``prefix`` or inside it (POSIX components)."""
    rel = PurePosixPath(relpath).parts
    pre = PurePosixPath(prefix).parts
    return len(rel) >= len(pre) and rel[: len(pre)] == pre


def load_config(pyproject: Path | None) -> LintConfig:
    """Load :class:`LintConfig` from a ``pyproject.toml`` path.

    A missing file or a file without ``[tool.reprolint]`` yields the
    default config (all rules everywhere, default excludes).
    """
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    data = _load_toml(pyproject.read_text(encoding="utf-8"))
    section = data.get("tool", {}).get("reprolint", {})
    if not isinstance(section, dict):
        return LintConfig()
    exclude = tuple(section.get("exclude", ())) + DEFAULT_EXCLUDES
    policies = []
    for prefix, table in sorted(section.get("paths", {}).items()):
        if isinstance(table, dict) and table.get("select"):
            policies.append(PathPolicy(prefix, tuple(table["select"])))
    return LintConfig(exclude=exclude, paths=tuple(policies))


def _load_toml(text: str) -> dict:
    """Parse TOML via tomllib when available, else the mini-parser."""
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib tomllib is 3.11+
        return _parse_mini_toml(text)
    return tomllib.loads(text)


_HEADER = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEYVAL = re.compile(r"^(?P<key>[\w.\"'-]+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_mini_toml(text: str) -> dict:
    """Minimal TOML subset parser (fallback for Python 3.10).

    Supports ``[dotted.table."quoted part"]`` headers, string values and
    single-line arrays of strings — exactly what ``[tool.reprolint]``
    and the handful of standard pyproject tables need.  Unparseable
    values are skipped rather than raised, because this fallback only
    feeds the linter's own config.
    """
    root: dict = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        header = _HEADER.match(line)
        if header:
            current = _descend(root, _split_key(header.group("name")))
            continue
        keyval = _KEYVAL.match(line)
        if not keyval:
            continue
        value = _parse_value(keyval.group("value"))
        if value is None:
            continue
        key_parts = _split_key(keyval.group("key"))
        table = _descend(current, key_parts[:-1])
        table[key_parts[-1]] = value
    return root


def _split_key(dotted: str) -> list[str]:
    """Split a dotted TOML key, honouring quoted components."""
    parts: list[str] = []
    for match in re.finditer(r"\"([^\"]*)\"|'([^']*)'|([^.\s]+)", dotted):
        parts.append(next(g for g in match.groups() if g is not None))
    return parts


def _descend(table: dict, parts: list[str]) -> dict:
    """Walk/create nested dict tables for each key component."""
    for part in parts:
        table = table.setdefault(part, {})
    return table


def _parse_value(token: str):
    """Parse a string literal or a single-line array of string literals."""
    token = token.strip()
    if token.startswith(("'", '"')) and token.endswith(token[0]) and len(token) >= 2:
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        items = []
        for part in re.finditer(r"\"([^\"]*)\"|'([^']*)'", token):
            items.append(part.group(1) if part.group(1) is not None else part.group(2))
        return items
    return None
