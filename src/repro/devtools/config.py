"""Configuration: the ``[tool.reprolint]`` section of ``pyproject.toml``.

Schema::

    [tool.reprolint]
    exclude = ["examples"]            # path prefixes never linted

    [tool.reprolint.paths.src]        # per-path rule selection
    select = ["RNG", "SEED", "LAY", "API"]

    [tool.reprolint.paths.tests]
    select = ["RNG001", "RNG002", "RNG003", "API003"]

    [tool.reprolint.import-costs]     # MB of RSS an import pulls in
    "scipy" = 51.0
    "repro.pipeline.experiments" = 11.0

    [tool.reprolint.import-budgets]   # MB a package may import eagerly
    "repro.serve" = 8.0

``select`` entries are rule ids or family prefixes (``RNG`` = every
``RNG***`` rule); the policy whose path is the longest matching prefix
of a file's project-relative path wins.  Files matching no policy get
every rule.

``import-costs`` and ``import-budgets`` feed the IMP001 rule: both are
keyed by dotted module prefixes and matched longest-prefix-first, so a
cost for ``scipy`` covers ``scipy.sparse`` and a budget for
``repro.serve`` covers every module in the package.

On Python ≥ 3.11 the section is read with :mod:`tomllib`; on 3.10 a
small built-in parser covering exactly this schema subset (table
headers, string/number values, arrays of strings) is used instead, so
the linter has zero third-party dependencies everywhere.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path, PurePosixPath

__all__ = ["DEFAULT_EXCLUDES", "LintConfig", "PathPolicy", "load_config"]

DEFAULT_EXCLUDES: tuple[str, ...] = (
    ".git",
    "__pycache__",
    ".pytest_cache",
    "artifacts",
    "build",
    "dist",
)


@dataclasses.dataclass(frozen=True)
class PathPolicy:
    """Rule selectors applied to files under one path prefix."""

    prefix: str
    select: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Resolved reprolint configuration."""

    exclude: tuple[str, ...] = DEFAULT_EXCLUDES
    paths: tuple[PathPolicy, ...] = ()
    import_costs: tuple[tuple[str, float], ...] = ()
    import_budgets: tuple[tuple[str, float], ...] = ()

    def is_excluded(self, relpath: str) -> bool:
        """True if ``relpath`` falls under any excluded prefix."""
        return any(_under(relpath, prefix) for prefix in self.exclude)

    def selectors_for(self, relpath: str) -> tuple[str, ...]:
        """Rule selectors for ``relpath``: longest-prefix policy, else all."""
        best: PathPolicy | None = None
        for policy in self.paths:
            if _under(relpath, policy.prefix):
                if best is None or len(policy.prefix) > len(best.prefix):
                    best = policy
        return best.select if best is not None else ("all",)

    def import_cost(self, dotted: str) -> tuple[str, float] | None:
        """Longest-prefix import-cost entry covering module ``dotted``."""
        return _longest_dotted(self.import_costs, dotted)

    def import_budget(self, dotted: str) -> tuple[str, float] | None:
        """Longest-prefix import-budget entry covering module ``dotted``."""
        return _longest_dotted(self.import_budgets, dotted)


def _under(relpath: str, prefix: str) -> bool:
    """True if ``relpath`` is ``prefix`` or inside it (POSIX components)."""
    rel = PurePosixPath(relpath).parts
    pre = PurePosixPath(prefix).parts
    return len(rel) >= len(pre) and rel[: len(pre)] == pre


def _longest_dotted(
    entries: tuple[tuple[str, float], ...], dotted: str
) -> tuple[str, float] | None:
    """Longest entry whose key is ``dotted`` or a dotted prefix of it."""
    best: tuple[str, float] | None = None
    parts = dotted.split(".")
    for key, value in entries:
        key_parts = key.split(".")
        if parts[: len(key_parts)] != key_parts:
            continue
        if best is None or len(key_parts) > len(best[0].split(".")):
            best = (key, value)
    return best


def load_config(pyproject: Path | None) -> LintConfig:
    """Load :class:`LintConfig` from a ``pyproject.toml`` path.

    A missing file or a file without ``[tool.reprolint]`` yields the
    default config (all rules everywhere, default excludes).
    """
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    data = _load_toml(pyproject.read_text(encoding="utf-8"))
    section = data.get("tool", {}).get("reprolint", {})
    if not isinstance(section, dict):
        return LintConfig()
    exclude = tuple(section.get("exclude", ())) + DEFAULT_EXCLUDES
    policies = []
    for prefix, table in sorted(section.get("paths", {}).items()):
        if isinstance(table, dict) and table.get("select"):
            policies.append(PathPolicy(prefix, tuple(table["select"])))
    return LintConfig(
        exclude=exclude,
        paths=tuple(policies),
        import_costs=_number_table(section.get("import-costs")),
        import_budgets=_number_table(section.get("import-budgets")),
    )


def _number_table(table: object) -> tuple[tuple[str, float], ...]:
    """Normalise a ``{dotted-module: number}`` TOML table to sorted pairs."""
    if not isinstance(table, dict):
        return ()
    out = []
    for key, value in sorted(table.items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append((str(key), float(value)))
    return tuple(out)


def _load_toml(text: str) -> dict:
    """Parse TOML via tomllib when available, else the mini-parser."""
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib tomllib is 3.11+
        return _parse_mini_toml(text)
    return tomllib.loads(text)


_HEADER = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEYVAL = re.compile(r"^(?P<key>[\w.\"'-]+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_mini_toml(text: str) -> dict:
    """Minimal TOML subset parser (fallback for Python 3.10).

    Supports ``[dotted.table."quoted part"]`` headers, string values and
    single-line arrays of strings — exactly what ``[tool.reprolint]``
    and the handful of standard pyproject tables need.  Unparseable
    values are skipped rather than raised, because this fallback only
    feeds the linter's own config.
    """
    root: dict = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        header = _HEADER.match(line)
        if header:
            current = _descend(root, _split_key(header.group("name")))
            continue
        keyval = _KEYVAL.match(line)
        if not keyval:
            continue
        value = _parse_value(keyval.group("value"))
        if value is None:
            continue
        key_parts = _split_key(keyval.group("key"))
        table = _descend(current, key_parts[:-1])
        table[key_parts[-1]] = value
    return root


def _split_key(dotted: str) -> list[str]:
    """Split a dotted TOML key, honouring quoted components."""
    parts: list[str] = []
    for match in re.finditer(r"\"([^\"]*)\"|'([^']*)'|([^.\s]+)", dotted):
        parts.append(next(g for g in match.groups() if g is not None))
    return parts


def _descend(table: dict, parts: list[str]) -> dict:
    """Walk/create nested dict tables for each key component."""
    for part in parts:
        table = table.setdefault(part, {})
    return table


def _parse_value(token: str):
    """Parse a string/number literal or a single-line array of strings."""
    token = token.strip()
    if token.startswith(("'", '"')) and token.endswith(token[0]) and len(token) >= 2:
        return token[1:-1]
    if token.startswith("[") and token.endswith("]"):
        items = []
        for part in re.finditer(r"\"([^\"]*)\"|'([^']*)'", token):
            items.append(part.group(1) if part.group(1) is not None else part.group(2))
        return items
    # Bare numbers (the import-cost/budget tables); comments may trail.
    bare = token.split("#", 1)[0].strip()
    try:
        return int(bare)
    except ValueError:
        pass
    try:
        return float(bare)
    except ValueError:
        pass
    return None
