"""Small AST helpers shared by reprolint rules.

The central trick is *alias resolution*: rules match fully-qualified
call targets (``numpy.random.seed``, ``time.time``) regardless of how
the module spelled the import (``import numpy as np``, ``from time
import time``), by first mapping every locally-bound import name to the
dotted path it refers to.
"""

from __future__ import annotations

import ast

__all__ = ["collect_import_aliases", "dotted_name", "resolve_name"]


def collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names bound by imports to the dotted paths they denote.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``import numpy.random`` → ``{"numpy": "numpy"}`` (the root binding);
    ``from numpy.random import default_rng as rng_factory`` →
    ``{"rng_factory": "numpy.random.default_rng"}``.  Relative imports
    resolve to nothing here — rules that care about intra-``repro``
    imports handle them explicitly (see the layering rules).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains to a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully qualify an expression via the module's import aliases.

    ``np.random.seed`` with ``{"np": "numpy"}`` → ``"numpy.random.seed"``.
    Returns None for expressions that are not plain dotted names.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    origin = aliases.get(root)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin
