"""Reporters: render findings as human text or machine-readable JSON.

The JSON schema (consumed by the CI annotation step; see
``docs/static_analysis.md``)::

    {
      "version": 1,
      "files_checked": 123,
      "findings": [
        {"path": "...", "line": 1, "col": 0, "rule": "RNG001",
         "message": "..."}
      ],
      "summary": {"total": 2, "by_rule": {"RNG001": 2}}
    }
"""

from __future__ import annotations

import json
from collections import Counter

from repro.devtools.findings import Finding, sort_findings

__all__ = ["render_json", "render_text"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: list[Finding], files_checked: int) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per line."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    if ordered:
        by_rule = Counter(f.rule for f in ordered)
        breakdown = ", ".join(f"{rule}×{n}" for rule, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"reprolint: {len(ordered)} finding(s) in {files_checked} "
            f"file(s) [{breakdown}]"
        )
    else:
        lines.append(f"reprolint: clean ({files_checked} file(s) checked)")
    return "\n".join(lines)


def render_json(findings: list[Finding], files_checked: int) -> str:
    """Machine-readable report (schema above), findings sorted."""
    ordered = sort_findings(findings)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in ordered],
        "summary": {
            "total": len(ordered),
            "by_rule": dict(sorted(Counter(f.rule for f in ordered).items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
