"""IMP001: per-package import budgets for module-level imports.

The serve tier must start fast and stay small: a worker that only
answers HTTP queries has no business paying for the batch-pipeline
stack at import time.  ``[tool.reprolint.import-costs]`` commits the
measured cost (MB of RSS) of importing known-heavy modules, and
``[tool.reprolint.import-budgets]`` gives packages an eager-import
allowance; a module-level import whose cost exceeds the importing
package's budget is flagged.  The fix is almost always to import
lazily inside the function that needs it — the class of bug behind the
PR 9 lazy-scipy fix.

Both tables match dotted prefixes, longest prefix first, so a cost for
``scipy`` covers ``scipy.sparse.csgraph`` and a budget for
``repro.serve`` covers the whole package.  Imports inside ``if
TYPE_CHECKING:`` are free; imports of the budgeted package itself are
exempt (a package cannot blow its own budget on its own modules).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = ["ImportBudgetRule"]


@register
class ImportBudgetRule(Rule):
    """IMP001: module-level import heavier than the package's budget."""

    rule_id = "IMP001"
    summary = "module-level import exceeds the package's import budget"
    scope = "module"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Compare each top-level import's cost against the local budget."""
        config = context.config if context is not None else None
        if config is None or module.module_name is None:
            return
        budget = config.import_budget(module.module_name)
        if budget is None:
            return
        budget_key, budget_mb = budget
        for node, target in _module_level_imports(module):
            if target == budget_key or target.startswith(budget_key + "."):
                continue
            cost = config.import_cost(target)
            if cost is None:
                continue
            cost_key, cost_mb = cost
            if cost_mb <= budget_mb:
                continue
            yield Finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"module-level import of '{target}' costs ~{cost_mb:g} MB "
                f"(cost entry '{cost_key}'), over the {budget_key} budget of "
                f"{budget_mb:g} MB; import it lazily inside the function "
                f"that needs it",
            )


def _module_level_imports(module: ModuleInfo):
    """(node, dotted-target) pairs for imports that run at import time.

    Covers direct module-body imports plus one level of ``if``/``try``
    nesting (version guards, optional-dependency fallbacks) — those run
    eagerly too.  ``if TYPE_CHECKING:`` blocks never execute at runtime
    and are skipped.
    """
    pending: list[ast.stmt] = list(module.tree.body)
    while pending:
        stmt = pending.pop(0)
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                yield stmt, alias.name
        elif isinstance(stmt, ast.ImportFrom):
            base = _import_base(module, stmt)
            if base is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    yield stmt, base
                else:
                    yield stmt, f"{base}.{alias.name}"
        elif isinstance(stmt, ast.If):
            if not _is_type_checking(stmt.test):
                pending.extend(stmt.body)
            pending.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            pending.extend(stmt.body)
            pending.extend(stmt.orelse)
            pending.extend(stmt.finalbody)
            for handler in stmt.handlers:
                pending.extend(handler.body)


def _import_base(module: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """Absolute dotted base of a from-import, resolving relative levels."""
    if node.level == 0:
        return node.module
    if module.module_name is None:
        return None
    parts = module.module_name.split(".")
    if not module.is_package:
        parts = parts[:-1]
    if node.level - 1 > len(parts):
        return None
    if node.level > 1:
        parts = parts[: len(parts) - (node.level - 1)]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def _is_type_checking(test: ast.expr) -> bool:
    """True for ``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` guards."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
