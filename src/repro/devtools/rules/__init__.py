"""Rule modules; importing this package registers every rule.

Rule families:

- :mod:`repro.devtools.rules.rng` — RNG discipline (``RNG001``–``RNG004``)
- :mod:`repro.devtools.rules.seeding` — seed threading (``SEED001``)
- :mod:`repro.devtools.rules.layering` — import-graph DAG (``LAY001``, ``LAY002``)
- :mod:`repro.devtools.rules.api` — API hygiene (``API001``–``API003``)
- :mod:`repro.devtools.rules.perf` — hot-path idioms (``PERF001``–``PERF003``)
- :mod:`repro.devtools.rules.robustness` — error discipline (``ROB001``–``ROB002``)
- :mod:`repro.devtools.rules.store` — SQL hygiene (``STORE001``)
- :mod:`repro.devtools.rules.conc` — concurrency & fork safety
  (``CONC001``–``CONC004``)
- :mod:`repro.devtools.rules.imports` — import budgets (``IMP001``)
"""

from repro.devtools.rules import (
    api,
    conc,
    imports,
    layering,
    perf,
    rng,
    robustness,
    seeding,
    store,
)

__all__ = [
    "api",
    "conc",
    "imports",
    "layering",
    "perf",
    "rng",
    "robustness",
    "seeding",
    "store",
]
