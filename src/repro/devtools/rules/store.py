"""Storage rules (``STORE001``).

The SQLite tier answers live HTTP queries with caller-derived values
(entity ids, host names, review counts).  Its one hard invariant: SQL
text handed to ``execute``/``executemany``/``executescript`` must be a
*constant* — parameters travel through ``?`` placeholders, never
through string interpolation.  Interpolated SQL is an injection
surface the moment a request parameter reaches it, and it also breaks
SQLite's statement cache (every distinct string is a fresh parse).

The rule is syntactic and conservative: it fires on f-strings,
``%``/``+`` expressions, ``.format(...)`` calls, and ``str.join``
results in the SQL argument position.  Building a statement from
constants still trips it — by design; ``repro.store.compile`` keeps
every statement a literal (see the ``ks_seq`` table trick for variable
``IN`` lists).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = ["InterpolatedSqlRule"]

_EXECUTE_METHODS = ("execute", "executemany", "executescript")


def _interpolation_kind(node: ast.expr) -> str | None:
    """How the expression interpolates, or None for safe shapes."""
    if isinstance(node, ast.JoinedStr):
        return "f-string"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        return "% formatting"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        # Literal + literal is still constant SQL; anything else in a
        # concatenation (a name, a call, an f-string piece) is not.
        if _is_constant_sql(node):
            return None
        return "+ concatenation"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "format":
            return ".format() call"
        if node.func.attr == "join":
            return "str.join result"
    return None


def _is_constant_sql(node: ast.expr) -> bool:
    """True for string literals and concatenations of string literals."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _is_constant_sql(node.left) and _is_constant_sql(node.right)
    return False


@register
class InterpolatedSqlRule(Rule):
    """STORE001: interpolated SQL passed to an ``execute`` method."""

    rule_id = "STORE001"
    summary = "interpolated SQL; use constant statements with ? placeholders"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag non-constant first arguments to execute-family methods."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _EXECUTE_METHODS
            ):
                continue
            if not node.args:
                continue
            sql = node.args[0]
            kind = _interpolation_kind(sql)
            if kind is None:
                continue
            yield Finding(
                module.relpath,
                sql.lineno,
                sql.col_offset,
                self.rule_id,
                f"SQL built by {kind} reaches .{func.attr}(); statements "
                "must be constant strings with `?` placeholders — "
                "interpolation is an injection surface and defeats the "
                "statement cache (see docs/storage.md)",
            )
