"""Robustness rules (``ROB001``–``ROB002``).

The resilience layer (see ``docs/robustness.md``) has two hard
invariants that code review keeps failing to catch:

- errors must never vanish: an ``except`` clause has to re-raise, log,
  or hand the failure to something that records it (the cache layer
  quarantines, the executor builds a failure report) — a handler that
  just ``pass``es converts a real fault into a silent wrong answer;
- retry loops belong in :mod:`repro.resilience.policy`: an ad-hoc
  ``while``/``for`` around ``time.sleep`` has no attempt bound, no
  seeded backoff, and no failure report, so the pipeline's retry
  behaviour stops being a pure function of (seed, task, attempt).

They are enabled for ``src/repro/perf`` and ``src/repro/pipeline`` via
the pyproject per-path config; ``repro.resilience`` itself hosts the
one sanctioned sleep (``RetryPolicy.sleep``) and is not selected.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import collect_import_aliases, resolve_name
from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = ["SilentExceptRule", "UnmanagedRetrySleepRule"]


def _handler_discharges(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or calls *anything*.

    A call is taken as discharging the exception (logging, quarantining,
    recording a failure); the rule only fires on handlers that provably
    let the error vanish without a trace.
    """
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return True
    return False


@register
class SilentExceptRule(Rule):
    """ROB001: an ``except`` clause that swallows the error untraced."""

    rule_id = "ROB001"
    summary = "except clause swallows the error; re-raise, log, or quarantine"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag handlers with no ``raise`` and no call of any kind."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_discharges(node):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "Exception"
            )
            yield Finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"`except {caught}` neither re-raises, logs, nor records "
                "the failure; a swallowed error here becomes a silently "
                "wrong artifact — quarantine or report it",
            )


@register
class UnmanagedRetrySleepRule(Rule):
    """ROB002: ``time.sleep`` in a loop outside ``repro.resilience``."""

    rule_id = "ROB002"
    summary = "ad-hoc sleep/retry loop; use repro.resilience.RetryPolicy"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag ``time.sleep`` calls nested inside ``for``/``while`` bodies."""
        aliases = collect_import_aliases(module.tree)
        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for child in loop.body + loop.orelse:
                for node in ast.walk(child):
                    if not isinstance(node, ast.Call):
                        continue
                    if resolve_name(node.func, aliases) != "time.sleep":
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        "`time.sleep` inside a loop is an unmanaged retry: "
                        "no attempt bound, no seeded backoff, no failure "
                        "report; route it through RetryPolicy "
                        "(repro.resilience) instead",
                    )
