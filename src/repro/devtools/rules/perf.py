"""Hot-path performance rules (``PERF001``–``PERF003``).

The analysis kernels in ``repro.core`` sit inside every experiment's
inner loop, so a quadratic idiom there multiplies across the whole
pipeline.  These rules flag the three patterns that have actually cost
us wall-clock:

- membership tests against a *list* inside a loop (linear scan per
  iteration — use a set);
- ``numpy`` array concatenation inside a loop (reallocates and copies
  the whole accumulated array every iteration — collect chunks and
  concatenate once);
- index-counting loops (``for i in range(len(x))`` and friends), which
  almost always mark a per-row Python loop over array data that a
  vectorized expression should replace.

They are advisory by nature, so the pyproject per-path config enables
them only where vectorization is the contract (``src/repro/core``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import collect_import_aliases, resolve_name
from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = [
    "IndexCountingLoopRule",
    "ListMembershipInLoopRule",
    "NumpyConcatInLoopRule",
]

# numpy calls that copy the full accumulated array on every call; inside
# a loop each makes the build quadratic.
_NP_GROWERS = frozenset(
    {
        "numpy.concatenate",
        "numpy.append",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.row_stack",
        "numpy.column_stack",
    }
)


def _loop_bodies(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield every statement nested inside a ``for``/``while`` body."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in node.body + node.orelse:
                yield from ast.walk(child)


def _list_valued_names(tree: ast.AST) -> frozenset[str]:
    """Names assigned from an expression that is statically a list."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _is_list_expression(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _is_list_expression(node: ast.expr) -> bool:
    """True for list displays, list comprehensions, and ``list(...)``."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "list"
    )


@register
class ListMembershipInLoopRule(Rule):
    """PERF001: ``x in some_list`` inside a loop; use a set."""

    rule_id = "PERF001"
    summary = "list-membership test inside a loop (linear scan); use a set"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag ``in``/``not in`` against statically-known lists in loops."""
        list_names = _list_valued_names(module.tree)
        seen: set[tuple[int, int]] = set()
        for node in _loop_bodies(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                if _is_list_expression(comparator):
                    described = "a list literal"
                elif (
                    isinstance(comparator, ast.Name)
                    and comparator.id in list_names
                ):
                    described = f"list `{comparator.id}`"
                else:
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"membership test against {described} inside a loop "
                    "scans the list every iteration; build a set once",
                )


@register
class NumpyConcatInLoopRule(Rule):
    """PERF002: array concatenation inside a loop is quadratic."""

    rule_id = "PERF002"
    summary = "numpy concatenate/append inside a loop; batch and join once"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag ``np.concatenate``-family calls nested in loop bodies."""
        aliases = collect_import_aliases(module.tree)
        seen: set[tuple[int, int]] = set()
        for node in _loop_bodies(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_name(node.func, aliases)
            if target not in _NP_GROWERS:
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"`{target}` inside a loop copies the whole array every "
                "iteration; append chunks to a list and join once after",
            )


@register
class IndexCountingLoopRule(Rule):
    """PERF003: ``for i in range(len(x))`` marks a per-row Python loop."""

    rule_id = "PERF003"
    summary = "index-counting loop over array data; vectorize or enumerate"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag ``range(len(x))`` / ``range(x.shape[...])`` loop iterators."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            call = node.iter
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range"
                and len(call.args) == 1
            ):
                continue
            arg = call.args[0]
            if _is_len_call(arg):
                shape = "range(len(...))"
            elif _is_shape_subscript(arg):
                shape = "range(x.shape[...])"
            else:
                continue
            yield Finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"`for ... in {shape}` usually means a per-row Python loop; "
                "vectorize the body, or use enumerate()/zip() if indices "
                "are genuinely needed",
            )


def _is_len_call(node: ast.expr) -> bool:
    """True for ``len(anything)``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
    )


def _is_shape_subscript(node: ast.expr) -> bool:
    """True for ``x.shape[...]`` subscripts."""
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
    )
