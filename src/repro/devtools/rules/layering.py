"""Layering rules: the DESIGN.md §3 subsystem DAG, machine-enforced.

``LAYERS`` is the single source of truth for which ``repro`` subpackage
may import which.  It is a *whitelist*: an edge absent from the map is a
violation (LAY001), which subsumes the specific prohibitions called out
in DESIGN.md §3 — ``core`` imports nothing from ``pipeline``/``report``/
``webgen``/``traffic`` (indeed nothing at all), ``entities`` nothing
from ``webgen``, ``report`` nothing from ``pipeline``.  Cycles in the
*observed* import graph are always errors (LAY002), even between
packages whose individual edges are each allowed.

Root modules (``repro.cli``, ``repro.io``, ``repro.__main__``, the
top-level ``repro/__init__``) sit above the DAG and may import anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = ["LAYERS", "ImportCycleRule", "LayerViolationRule", "package_imports"]

# DESIGN.md §3 DAG: package -> packages it may import.  Leaves first.
LAYERS: dict[str, frozenset[str]] = {
    # Pure leaves: no intra-repro dependencies at all.
    "core": frozenset(),
    "entities": frozenset(),
    "devtools": frozenset(),
    # Fault tolerance: retry policy, run journal, fault injection.
    "resilience": frozenset(),
    # Formatting only; may render core analysis results.
    "report": frozenset({"core"}),
    # Traffic substrate: logs over entities, demand models over core curves.
    "traffic": frozenset({"core", "entities"}),
    # Storage of pages about entities.
    "crawl": frozenset({"core", "entities"}),
    # Corpus generation renders entities into a crawl store.
    "webgen": frozenset({"core", "entities", "crawl"}),
    # Extraction reads the crawl back into core incidence structures.
    "extract": frozenset({"core", "entities", "crawl"}),
    # Higher-level extensions compose extraction.
    "clustering": frozenset({"core", "entities", "crawl", "extract"}),
    "linking": frozenset({"core", "entities", "crawl", "extract"}),
    "discovery": frozenset({"core", "entities"}),
    # Performance layer: caches core artifacts, schedules runners with
    # the resilience layer's retry/fault machinery.
    "perf": frozenset({"core", "resilience"}),
    # Batch orchestration sits on top of everything below the serving
    # and CLI layers.
    "pipeline": frozenset(
        {
            "core",
            "entities",
            "crawl",
            "webgen",
            "extract",
            "clustering",
            "linking",
            "discovery",
            "traffic",
            "report",
            "perf",
            "resilience",
        }
    ),
    # Tiered query storage: compiles the pipeline's cache-aware
    # artifacts into out-of-core backends (mmap CSR blobs, SQLite).
    # Sits above `pipeline` (it replays the same builders) but below
    # `serve` — the storage tiers must never know about HTTP.
    "store": frozenset({"core", "perf", "pipeline", "resilience"}),
    # Online serving: read-optimized indices over the batch pipeline's
    # artifacts.  Allowed above `pipeline` and `store` — it is an
    # online *consumer* of the pipeline's cache-aware builders and the
    # storage tiers — and a sink: nothing below (only the root CLI)
    # may import it.
    "serve": frozenset({"core", "perf", "pipeline", "resilience", "store"}),
}


def package_imports(module: ModuleInfo) -> Iterator[tuple[str, int, int]]:
    """Yield (imported ``repro`` subpackage, line, col) for one module.

    Handles absolute imports (``import repro.core.graph``, ``from
    repro.core import graph``) and relative ones (``from ..core import
    graph``), resolving the latter against the module's own dotted name.
    """
    own = (module.module_name or "").split(".")
    for node in ast.walk(module.tree):
        packages: set[str] = set()
        if isinstance(node, ast.Import):
            for alias in node.names:
                packages.add(_subpackage_of(alias.name.split(".")))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                target = (node.module or "").split(".")
            else:
                if not own or own[0] != "repro":
                    continue
                # Drop the module's own leaf name (unless it *is* the
                # package __init__), then one component per extra level.
                base = own[:] if module.is_package else own[:-1]
                up = node.level - 1
                if up > len(base):
                    continue
                target = base[: len(base) - up]
                if node.module:
                    target = target + node.module.split(".")
            packages.add(_subpackage_of(target))
            # ``from repro import core`` / ``from . import extract``
            # name the subpackage in the alias list, not in the prefix.
            if target == ["repro"] or (node.level and not node.module):
                for alias in node.names:
                    packages.add(_subpackage_of(target + [alias.name]))
        else:
            continue
        for pkg in sorted(p for p in packages if p is not None):
            yield pkg, node.lineno, node.col_offset


def _subpackage_of(parts: list[str]) -> str | None:
    """Map a dotted-name split to its ``repro`` subpackage, if any."""
    if len(parts) >= 2 and parts[0] == "repro" and parts[1] in LAYERS:
        return parts[1]
    return None


@register
class LayerViolationRule(Rule):
    """LAY001: an import edge not present in the DESIGN §3 DAG."""

    rule_id = "LAY001"
    summary = "import breaches the DESIGN.md §3 layering DAG"
    scope = "project"

    def check_project(
        self, modules: list[ModuleInfo], context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Check every intra-``repro`` import edge against ``LAYERS``."""
        for module in modules:
            source_pkg = module.package
            if source_pkg is None:
                continue  # root modules sit above the DAG
            allowed = LAYERS.get(source_pkg)
            if allowed is None:
                continue
            for target_pkg, line, col in package_imports(module):
                if target_pkg == source_pkg or target_pkg in allowed:
                    continue
                yield Finding(
                    module.relpath,
                    line,
                    col,
                    self.rule_id,
                    f"`{source_pkg}` may not import `{target_pkg}` "
                    f"(allowed: {sorted(allowed) or 'nothing'}); "
                    "see DESIGN.md §3 and docs/static_analysis.md",
                )


@register
class ImportCycleRule(Rule):
    """LAY002: a cycle in the observed package import graph."""

    rule_id = "LAY002"
    summary = "cycle in the subsystem import graph"
    scope = "project"

    def check_project(
        self, modules: list[ModuleInfo], context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Detect strongly-connected components among subpackages."""
        edges: dict[str, set[str]] = {}
        witness: dict[tuple[str, str], tuple[str, int]] = {}
        for module in modules:
            source_pkg = module.package
            if source_pkg is None:
                continue
            for target_pkg, line, _col in package_imports(module):
                if target_pkg == source_pkg:
                    continue
                edges.setdefault(source_pkg, set()).add(target_pkg)
                witness.setdefault((source_pkg, target_pkg), (module.relpath, line))
        for cycle in _find_cycles(edges):
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            relpath, line = witness.get(first_edge, ("<project>", 1))
            pretty = " -> ".join(cycle + (cycle[0],))
            yield Finding(
                relpath,
                line,
                0,
                self.rule_id,
                f"import cycle between subsystems: {pretty}",
            )


def _find_cycles(edges: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Strongly-connected components of size > 1, as sorted tuples.

    Iterative Tarjan over the package graph (a dozen nodes, so clarity
    beats cleverness); returns components in deterministic order.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[tuple[str, ...]] = []
    nodes = sorted(set(edges) | {t for ts in edges.values() for t in ts})

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(edges.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(tuple(sorted(component)))

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return sorted(components)
