"""API hygiene rules: docstrings, ``__all__`` consistency, safe defaults.

DESIGN.md §6 requires docstrings on every public item and explicit
public surfaces.  ``tests/test_public_api.py`` spot-checks some of this
at runtime; these rules make it a static guarantee for every module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = ["DocstringRule", "DunderAllRule", "MutableDefaultRule"]


def _is_public(name: str) -> bool:
    """Public means no leading underscore (dunders are handled apart)."""
    return not name.startswith("_")


def _literal_all(tree: ast.Module) -> tuple[list[str] | None, int]:
    """Extract a literal ``__all__`` list and its line, if present.

    Returns ``(None, 0)`` when the module has no ``__all__`` and
    ``(None, line)`` when it has one that is not a literal list/tuple of
    strings (reported as a violation by :class:`DunderAllRule`).
    """
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                ):
                    names = [e.value for e in value.elts]
                    return names, node.lineno
                return None, node.lineno
    return None, 0


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (defs, classes, imports, assigns)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (version guards etc.) still bind.
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name.split(".")[0])
    return bound


@register
class DocstringRule(Rule):
    """API001: every public item carries a docstring.

    Checked items: the module itself, public top-level functions and
    classes, and public methods of public classes.  Dunder methods are
    exempt (their contracts are the language's, not ours).
    """

    rule_id = "API001"
    summary = "missing docstring on a public module/class/function/method"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Yield a finding per public item lacking a docstring."""
        tree = module.tree
        if ast.get_docstring(tree) is None and tree.body:
            yield Finding(
                module.relpath, 1, 0, self.rule_id, "module has no docstring"
            )
        for node in tree.body:
            yield from self._check_item(module, node, owner=None)

    def _check_item(
        self, module: ModuleInfo, node: ast.stmt, owner: str | None
    ) -> Iterator[Finding]:
        """Check one def/class (and, for classes, their public methods)."""
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        name = node.name
        if name.startswith("__") and name.endswith("__"):
            return  # dunder
        if not _is_public(name):
            return
        qualified = f"{owner}.{name}" if owner else name
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else (
                "method" if owner else "function"
            )
            yield Finding(
                module.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"public {kind} `{qualified}` has no docstring",
            )
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                yield from self._check_item(module, child, owner=qualified)


@register
class DunderAllRule(Rule):
    """API002: ``__all__`` exists, is literal, and matches the public surface.

    Violations: no ``__all__`` at all (except ``__main__`` entry
    modules), a non-literal ``__all__``, a listed name that is never
    bound (waived when the module defines a PEP 562 ``__getattr__``,
    which provides names lazily), or a public top-level def/class
    missing from the list.
    """

    rule_id = "API002"
    summary = "__all__ missing, non-literal, or out of sync with public names"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Cross-check ``__all__`` against module-level bindings."""
        if module.module_name is not None and module.module_name.endswith(
            "__main__"
        ):
            return
        names, line = _literal_all(module.tree)
        if names is None:
            if line:
                yield Finding(
                    module.relpath,
                    line,
                    0,
                    self.rule_id,
                    "__all__ must be a literal list/tuple of strings",
                )
            else:
                yield Finding(
                    module.relpath,
                    1,
                    0,
                    self.rule_id,
                    "module defines no __all__ (explicit public surface "
                    "required in library code)",
                )
            return
        bound = _top_level_bindings(module.tree)
        # PEP 562: a module-level __getattr__ provides names lazily, so
        # "listed but not bound" cannot be checked statically.
        lazy = "__getattr__" in bound
        for listed in names:
            if listed not in bound and not lazy:
                yield Finding(
                    module.relpath,
                    line,
                    0,
                    self.rule_id,
                    f"__all__ lists `{listed}` which is not defined or "
                    "imported at module level",
                )
        listed_set = set(names)
        for node in module.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if _is_public(node.name) and node.name not in listed_set:
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"public name `{node.name}` missing from __all__ "
                        "(add it or prefix with _)",
                    )


@register
class MutableDefaultRule(Rule):
    """API003: no mutable default arguments.

    ``def f(x=[])`` shares one list across calls — a classic aliasing
    bug that also breaks run-to-run reproducibility when the default
    accumulates state.
    """

    rule_id = "API003"
    summary = "mutable default argument (list/dict/set literal or constructor)"

    _MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag list/dict/set (literal or constructor) defaults."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield Finding(
                        module.relpath,
                        default.lineno,
                        default.col_offset,
                        self.rule_id,
                        f"mutable default argument in `{node.name}`; use "
                        "None and create inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        """Literal containers, comprehensions, and bare constructors."""
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CONSTRUCTORS
        return False
