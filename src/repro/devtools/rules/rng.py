"""RNG discipline rules: the determinism contract of DESIGN.md §6.

Bit-for-bit reproducibility of every table and figure requires that all
randomness flows through explicitly seeded ``numpy.random.Generator``
instances.  These rules ban the escape hatches: the legacy global numpy
RNG, the stdlib ``random`` module, unseeded generators, and wall-clock
reads (a popular accidental seed source) in analysis code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import collect_import_aliases, resolve_name
from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = [
    "GlobalNumpyRandomRule",
    "StdlibRandomImportRule",
    "UnseededDefaultRngRule",
    "WallClockRule",
]

# Legacy numpy.random module-level functions (the hidden global
# RandomState).  Using any of them defeats seed threading.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "lognormal",
        "poisson",
        "binomial",
        "exponential",
        "geometric",
        "zipf",
        "beta",
        "gamma",
        "multinomial",
        "dirichlet",
        "RandomState",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class GlobalNumpyRandomRule(Rule):
    """RNG001: no calls into the legacy global ``numpy.random`` API."""

    rule_id = "RNG001"
    summary = (
        "legacy global numpy.random call (seed/rand/RandomState/...); "
        "use a threaded numpy.random.Generator instead"
    )

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag calls and imports that touch the legacy global RNG."""
        aliases = collect_import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = resolve_name(node.func, aliases)
                if target is None:
                    continue
                prefix, _, leaf = target.rpartition(".")
                if prefix == "numpy.random" and leaf in _LEGACY_NP_RANDOM:
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        node.col_offset,
                        self.rule_id,
                        f"call to legacy global RNG `{target}`; thread a "
                        "seeded numpy.random.Generator instead",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module != "numpy.random":
                    continue
                for alias in node.names:
                    if alias.name in _LEGACY_NP_RANDOM:
                        yield Finding(
                            module.relpath,
                            node.lineno,
                            node.col_offset,
                            self.rule_id,
                            f"import of legacy `numpy.random.{alias.name}`; "
                            "use numpy.random.default_rng(seed)",
                        )


@register
class StdlibRandomImportRule(Rule):
    """RNG002: no stdlib ``random`` in library code.

    The stdlib module keeps hidden global state and its streams are not
    coordinated with numpy's, so one stray ``random.shuffle`` breaks
    bit-for-bit reproducibility invisibly.
    """

    rule_id = "RNG002"
    summary = "stdlib `random` import in library code; use numpy Generators"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag ``import random`` / ``from random import ...``."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self._finding(module, node)
            elif isinstance(node, ast.ImportFrom):
                if not node.level and node.module is not None:
                    if node.module.split(".")[0] == "random":
                        yield self._finding(module, node)

    def _finding(self, module: ModuleInfo, node: ast.stmt) -> Finding:
        """Build the RNG002 finding for an offending import statement."""
        return Finding(
            module.relpath,
            node.lineno,
            node.col_offset,
            self.rule_id,
            "stdlib `random` has hidden global state; use a threaded "
            "numpy.random.Generator",
        )


@register
class UnseededDefaultRngRule(Rule):
    """RNG003: ``default_rng()`` without a seed argument.

    An argument-less ``default_rng()`` pulls OS entropy, so two runs of
    the same experiment diverge — the exact failure mode
    ``tests/test_determinism.py`` exists to prevent.
    """

    rule_id = "RNG003"
    summary = "unseeded numpy.random.default_rng(); pass a seed or Generator"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag zero-argument ``default_rng()`` calls."""
        aliases = collect_import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_name(node.func, aliases)
            if target != "numpy.random.default_rng":
                continue
            if not node.args and not node.keywords:
                yield Finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    "default_rng() without a seed is entropy-seeded and "
                    "irreproducible; pass an explicit seed",
                )


@register
class WallClockRule(Rule):
    """RNG004: no wall-clock reads in analysis paths.

    ``time.time()`` / ``datetime.now()`` smuggle nondeterminism into
    results (and often end up as seeds).  Benchmarks may read clocks —
    the pyproject per-path config simply does not select this rule for
    ``benchmarks/``.
    """

    rule_id = "RNG004"
    summary = "wall-clock read (time.time/datetime.now/...) in analysis code"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag calls to clock functions resolved through import aliases."""
        aliases = collect_import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_name(node.func, aliases)
            if target in _WALL_CLOCK:
                yield Finding(
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    f"wall-clock call `{target}` makes analysis output "
                    "time-dependent; inject timestamps explicitly if needed",
                )
