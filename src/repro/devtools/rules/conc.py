"""CONC rules: concurrency and fork-safety discipline.

- CONC001 — write to shared mutable state (a ``self`` attribute or
  module global reachable from thread targets / HTTP handlers) outside
  its inferred or annotated guard lock.
- CONC002 — ``.acquire()`` called without ``with`` or an immediate
  ``try/finally`` release: an exception between acquire and release
  deadlocks every other thread.
- CONC003 — fork-unsafe resource (lock, socket, executor, mmap)
  created pre-fork and touched in fork-worker code.
- CONC004 — blocking call (``time.sleep``, socket I/O, ``.result()``,
  ...) while holding a lock: a convoy for everyone contending on it.

CONC001/CONC003 are whole-project analyses built on
:mod:`repro.devtools.conc` and marked ``heavy`` (skipped under
``--changed-only``); CONC002/CONC004 are per-module and always run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import dotted_name
from repro.devtools.conc import build_model, summarize_module
from repro.devtools.conc.callgraph import thread_reachable
from repro.devtools.conc.forkmodel import fork_violations
from repro.devtools.conc.lockmodel import class_guards, global_guards
from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = [
    "AcquireDisciplineRule",
    "BlockingUnderLockRule",
    "ForkSafetyRule",
    "SharedStateGuardRule",
]


@register
class SharedStateGuardRule(Rule):
    """CONC001: guarded state must not be written outside its guard."""

    rule_id = "CONC001"
    summary = (
        "write to shared state outside its inferred/annotated guard lock "
        "in thread-reachable code"
    )
    scope = "project"
    heavy = True

    def check_project(
        self, modules: list[ModuleInfo], context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Check every thread-reachable write against the lock model."""
        for relpath, summary in build_model(modules, context).items():
            reachable = thread_reachable(summary)
            for cls in summary.classes.values():
                guards = class_guards(summary, cls)
                if not guards:
                    continue
                for name, method in cls.methods.items():
                    if name == "__init__":
                        continue
                    for fn in _with_nested(method):
                        if fn.qualname not in reachable:
                            continue
                        for site in fn.writes:
                            guard = guards.get(site.attr)
                            if guard is None or guard in site.held:
                                continue
                            yield Finding(
                                relpath,
                                site.lineno,
                                site.col,
                                self.rule_id,
                                f"write to 'self.{site.attr}' outside its guard "
                                f"'{guard}' in thread-reachable {fn.qualname}; "
                                f"hold the lock (or re-annotate the guard)",
                            )
            guards = global_guards(summary)
            if not guards:
                continue
            for fn in summary.functions.values():
                for inner in _with_nested(fn):
                    if inner.qualname not in reachable:
                        continue
                    for site in inner.global_writes:
                        guard = guards.get(site.name)
                        if guard is None or guard in site.held:
                            continue
                        yield Finding(
                            relpath,
                            site.lineno,
                            site.col,
                            self.rule_id,
                            f"write to module global '{site.name}' outside its "
                            f"guard '{guard}' in thread-reachable "
                            f"{inner.qualname}; hold the lock",
                        )


@register
class AcquireDisciplineRule(Rule):
    """CONC002: bare .acquire() without with/try-finally release."""

    rule_id = "CONC002"
    summary = ".acquire() without `with` or an immediate try/finally release"
    scope = "module"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag acquire statements not followed by a releasing try/finally."""
        for body in _statement_bodies(module.tree):
            for index, stmt in enumerate(body):
                receiver = _acquire_receiver(stmt)
                if receiver is None:
                    continue
                following = body[index + 1] if index + 1 < len(body) else None
                if _releases_in_finally(following, receiver):
                    continue
                yield Finding(
                    module.relpath,
                    stmt.lineno,
                    stmt.col_offset,
                    self.rule_id,
                    f"'{receiver}.acquire()' without `with {receiver}:` or an "
                    f"immediate try/finally release; an exception here leaks "
                    f"the lock",
                )


@register
class ForkSafetyRule(Rule):
    """CONC003: pre-fork resources must not be used in worker code."""

    rule_id = "CONC003"
    summary = "fork-unsafe resource created pre-fork and touched in worker code"
    scope = "project"
    heavy = True

    def check_project(
        self, modules: list[ModuleInfo], context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Report every pre-fork resource reached from a fork target."""
        for relpath, summary in build_model(modules, context).items():
            for violation in fork_violations(summary):
                yield Finding(
                    relpath,
                    violation.lineno,
                    violation.col,
                    self.rule_id,
                    f"fork-unsafe {violation.kind} 'self.{violation.attr}' "
                    f"(created pre-fork, line {violation.created_line}) is "
                    f"used in fork-worker {violation.method}; create it after "
                    f"the fork or close the inherited copy deliberately",
                )


@register
class BlockingUnderLockRule(Rule):
    """CONC004: no blocking calls while holding a lock."""

    rule_id = "CONC004"
    summary = "blocking call (sleep/socket I/O/join/result) while holding a lock"
    scope = "module"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Flag blocking calls recorded inside with-lock regions."""
        summary = summarize_module(module)
        for fn in _all_functions(summary):
            for site in fn.blocking:
                held = ", ".join(site.held)
                yield Finding(
                    module.relpath,
                    site.lineno,
                    site.col,
                    self.rule_id,
                    f"blocking call '{site.call}' while holding {held} in "
                    f"{fn.qualname}; do the slow work outside the lock",
                )


def _with_nested(fn):
    yield fn
    for nested in fn.nested:
        yield from _with_nested(nested)


def _all_functions(summary):
    for fn in summary.functions.values():
        yield from _with_nested(fn)
    for cls in summary.classes.values():
        for method in cls.methods.values():
            yield from _with_nested(method)


def _statement_bodies(tree: ast.Module):
    """Every list of statements in the tree (module, defs, blocks)."""
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            value = getattr(node, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                yield value


def _acquire_receiver(stmt: ast.stmt) -> str | None:
    """Dotted lock receiver of a statement-level ``.acquire()`` call."""
    if isinstance(stmt, ast.Expr):
        call = stmt.value
    elif isinstance(stmt, ast.Assign):
        call = stmt.value
    else:
        return None
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)):
        return None
    if call.func.attr != "acquire":
        return None
    receiver = dotted_name(call.func.value)
    if receiver is None:
        return None
    last = receiver.rsplit(".", 1)[-1].lower()
    if "lock" not in last and "mutex" not in last and "sem" not in last:
        return None
    return receiver


def _releases_in_finally(stmt: ast.stmt | None, receiver: str) -> bool:
    """True if ``stmt`` is a try whose finally releases ``receiver``."""
    if not isinstance(stmt, ast.Try):
        return False
    for final in stmt.finalbody:
        if not (isinstance(final, ast.Expr) and isinstance(final.value, ast.Call)):
            continue
        func = final.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "release"
            and dotted_name(func.value) == receiver
        ):
            return True
    return False
