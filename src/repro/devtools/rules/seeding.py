"""Seed-threading rule: stochastic functions must be seedable from outside.

This is the contract behind ``tests/test_determinism.py``: any function
in library code that *performs* a stochastic operation must let its
caller control the stream — by accepting an ``rng``/``seed`` parameter,
by operating on a generator that was passed in, or (for methods) by
drawing from a generator the instance was constructed with.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import collect_import_aliases, resolve_name
from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, ModuleInfo, Rule, register

__all__ = ["SeedThreadingRule", "GENERATOR_METHODS", "SEED_PARAM_NAMES"]

# numpy.random.Generator drawing/stream methods.  A call to one of these
# on a plain name or attribute is treated as a stochastic operation.
GENERATOR_METHODS = frozenset(
    {
        "integers",
        "random",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "normal",
        "standard_normal",
        "lognormal",
        "uniform",
        "poisson",
        "binomial",
        "exponential",
        "geometric",
        "zipf",
        "beta",
        "gamma",
        "multinomial",
        "dirichlet",
        "spawn",
    }
)

# Parameter names that satisfy the contract.
SEED_PARAM_NAMES = frozenset({"rng", "seed"})

_INSTANCE_RNG_HINTS = frozenset({"rng", "_rng", "seed", "_seed"})


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """All parameter names of ``fn`` (positional, keyword-only, *args)."""
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _class_is_seed_bearing(cls: ast.ClassDef) -> bool:
    """True if instances of ``cls`` carry caller-controlled randomness.

    Either ``__init__`` takes an ``rng``/``seed`` parameter, or the class
    body declares an ``rng``/``seed`` field (dataclass style).
    """
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == "__init__" and _param_names(stmt) & SEED_PARAM_NAMES:
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                if stmt.target.id in _INSTANCE_RNG_HINTS:
                    return True
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in _INSTANCE_RNG_HINTS:
                    return True
    return False


def _is_self_rng_attribute(expr: ast.expr) -> bool:
    """True for ``self.rng`` / ``self._rng`` / ``self.seed`` receivers."""
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in {"self", "cls"}
        and expr.attr in _INSTANCE_RNG_HINTS
    )


def _references_any(expr: ast.expr, names: set[str]) -> bool:
    """True if ``expr`` mentions any of ``names`` or a self/cls attribute."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and sub.id in names | {"self", "cls"}:
            return True
    return False


@register
class SeedThreadingRule(Rule):
    """SEED001: stochastic functions must accept ``rng``/``seed``.

    A function is *stochastic* if it calls
    ``numpy.random.default_rng(...)`` or a ``numpy.random.Generator``
    drawing method (``integers``, ``choice``, ``shuffle``, ...).  It
    complies when any of these hold:

    - it has a parameter named ``rng`` or ``seed``;
    - every stochastic receiver is one of its own parameters (a
      generator passed in under another name);
    - the receiver is an instance attribute (``self._rng``) of a class
      whose constructor is seed-bearing;
    - each ``default_rng(...)`` argument derives from a parameter or
      instance state (re-keying an inherited stream).
    """

    rule_id = "SEED001"
    summary = "stochastic function without rng/seed parameter (seed threading)"

    def check_module(
        self, module: ModuleInfo, context: AnalysisContext | None = None
    ) -> Iterator[Finding]:
        """Walk functions (tracking class context) and verify threading."""
        aliases = collect_import_aliases(module.tree)
        yield from self._scan(module, module.tree.body, cls=None, aliases=aliases)

    def _scan(
        self,
        module: ModuleInfo,
        body: list[ast.stmt],
        cls: ast.ClassDef | None,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        """Recurse through statements, checking each function definition."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, stmt, cls, aliases)
                yield from self._scan(module, stmt.body, cls=cls, aliases=aliases)
            elif isinstance(stmt, ast.ClassDef):
                yield from self._scan(module, stmt.body, cls=stmt, aliases=aliases)

    def _check_function(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef | None,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        """Yield a finding if ``fn`` is stochastic but not seedable."""
        params = _param_names(fn)
        if params & SEED_PARAM_NAMES:
            return
        in_seeded_class = cls is not None and _class_is_seed_bearing(cls)
        local_rngs = self._vetted_local_generators(fn, in_seeded_class)
        for call in self._own_calls(fn):
            target = resolve_name(call.func, aliases)
            if target == "numpy.random.default_rng":
                arg_exprs = list(call.args) + [k.value for k in call.keywords]
                if arg_exprs and all(
                    _references_any(a, params) for a in arg_exprs
                ):
                    continue
                if in_seeded_class and arg_exprs:
                    continue
                yield self._finding(module, call, "default_rng")
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in GENERATOR_METHODS
            ):
                receiver = call.func.value
                if isinstance(receiver, ast.Name) and receiver.id in params:
                    continue
                if isinstance(receiver, ast.Name) and receiver.id in local_rngs:
                    # Drawing from a locally created generator: the
                    # default_rng call itself was vetted above, so the
                    # draws are not separately at fault.
                    continue
                if _is_self_rng_attribute(receiver):
                    if in_seeded_class:
                        continue
                    yield self._finding(module, call, call.func.attr)
                    continue
                if not self._looks_like_generator(receiver):
                    continue
                yield self._finding(module, call, call.func.attr)

    def _own_calls(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.Call]:
        """Calls in ``fn``'s own body, excluding nested function defs.

        Nested functions are checked on their own; a closure drawing from
        a captured generator is attributed to the scope that created it.
        """
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _vetted_local_generators(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, in_seeded_class: bool
    ) -> set[str]:
        """Local names that hold a caller-controlled generator.

        Covers ``x = ...default_rng(...)`` (the factory call itself is
        vetted separately) and, inside seed-bearing classes, the common
        local alias ``rng = self._rng``.
        """
        names: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            vetted = False
            if isinstance(node.value, ast.Call):
                func = node.value.func
                vetted = (
                    isinstance(func, ast.Attribute) and func.attr == "default_rng"
                ) or (isinstance(func, ast.Name) and func.id == "default_rng")
            elif in_seeded_class and _is_self_rng_attribute(node.value):
                vetted = True
            if not vetted:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _looks_like_generator(self, receiver: ast.expr) -> bool:
        """Heuristic: is this receiver actually an RNG-like object?

        Generator method names like ``choice`` or ``random`` also exist
        on unrelated objects, so only ``rng``-ish names (a module global
        or captured generator — exactly what seed threading forbids)
        count here.  This keeps SEED001 precise (no false positives on
        e.g. ``router.choice(...)``) at the cost of missing exotically
        named streams — RNG001/RNG003 still cover those.
        """
        if not isinstance(receiver, ast.Name):
            return False
        return receiver.id in _INSTANCE_RNG_HINTS or receiver.id.endswith("rng")

    def _finding(self, module: ModuleInfo, call: ast.Call, what: str) -> Finding:
        """Build the SEED001 finding for a stochastic call site."""
        return Finding(
            module.relpath,
            call.lineno,
            call.col_offset,
            self.rule_id,
            f"stochastic call (`{what}`) in a function without an "
            "rng/seed parameter; thread a numpy.random.Generator through "
            "the signature (DESIGN.md §6)",
        )
