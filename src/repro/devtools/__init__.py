"""Developer tooling for the reproduction: the *reprolint* static analyzer.

``repro.devtools`` is a from-scratch, stdlib-``ast``-based linter that
machine-enforces the conventions of DESIGN.md §6:

- **RNG discipline** (``RNG0xx``) — no legacy global ``numpy.random``
  calls, no ``import random`` in library code, no unseeded
  ``default_rng()``, no wall-clock reads in analysis paths.
- **Seed threading** (``SEED001``) — every stochastic function accepts
  an ``rng``/``seed`` parameter or receives a generator argument.
- **Layering** (``LAY0xx``) — the DESIGN.md §3 subsystem DAG is
  enforced on the import graph; cycles are errors.
- **API hygiene** (``API0xx``) — docstrings on public items,
  ``__all__`` ↔ public-name consistency, no mutable default arguments.
- **Concurrency & fork safety** (``CONC0xx``) — whole-project lock
  model and call graph (:mod:`repro.devtools.conc`): guarded state is
  written under its guard, ``acquire`` always pairs with a release,
  pre-fork resources stay out of fork-worker code, and nothing blocks
  while holding a lock.
- **Import budgets** (``IMP001``) — serve-path packages must not pay
  for the batch-pipeline stack at import time; costs and budgets are
  committed in ``pyproject.toml``.

Run it with ``python -m repro.devtools.lint src tests benchmarks`` (or
``make lint``).  Rules are configured per path prefix in the
``[tool.reprolint]`` section of ``pyproject.toml`` and suppressed
inline with ``# reprolint: disable=RULE``.  See
``docs/static_analysis.md`` for the full rule reference.

This package is deliberately a *leaf* of the layering DAG: it imports
nothing from any other ``repro`` subpackage, so it can lint the tree
without participating in it.
"""

from repro.devtools.findings import Finding
from repro.devtools.registry import AnalysisContext, Rule, all_rules, get_rule

__all__ = ["AnalysisContext", "Finding", "Rule", "all_rules", "get_rule"]
