"""reprolint CLI: ``python -m repro.devtools.lint src tests benchmarks``.

Exit codes: 0 clean, 1 findings (or unparseable files), 2 usage/config
errors.  ``--format json`` emits the schema documented in
``docs/static_analysis.md``; ``--list-rules`` prints the registry.

The module also exposes :func:`check_source` and :func:`check_project`
so the test suite (and future tooling, e.g. a pre-commit hook) can lint
in-memory snippets without touching the filesystem.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.config import LintConfig, load_config
from repro.devtools.findings import Finding, sort_findings
from repro.devtools.registry import (
    AnalysisContext,
    ModuleInfo,
    all_rules,
    make_module_info,
    resolve_selectors,
)
from repro.devtools.reporters import render_json, render_text

__all__ = [
    "PARSE_ERROR_RULE",
    "build_arg_parser",
    "check_project",
    "check_source",
    "collect_files",
    "lint_paths",
    "main",
    "staged_python_files",
]

# Pseudo-rule id for files that fail to parse; always enabled and not
# suppressible (a file that cannot be parsed cannot carry directives).
PARSE_ERROR_RULE = "E001"


def collect_files(
    paths: Sequence[Path], root: Path, config: LintConfig
) -> list[tuple[Path, str]]:
    """Expand CLI path arguments to (absolute path, relpath) pairs.

    Directories are walked recursively for ``*.py``; explicit file
    arguments bypass the exclude list (you asked for them by name).
    """
    out: list[tuple[Path, str]] = []
    seen: set[Path] = set()
    for arg in paths:
        base = arg if arg.is_absolute() else root / arg
        if not base.exists():
            # A typo'd path must not silently gate CI green.
            raise FileNotFoundError(f"path does not exist: {arg}")
        if base.is_file():
            candidates: Iterable[Path] = [base]
            explicit = True
        else:
            candidates = sorted(base.rglob("*.py"))
            explicit = False
        for path in candidates:
            path = path.resolve()
            if path in seen:
                continue
            try:
                relpath = path.relative_to(root.resolve()).as_posix()
            except ValueError:
                relpath = path.as_posix()
            if not explicit and config.is_excluded(relpath):
                continue
            seen.add(path)
            out.append((path, relpath))
    return out


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    config: LintConfig,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    skip_heavy: bool = False,
) -> tuple[list[Finding], int]:
    """Lint files under ``paths``; returns (findings, files_checked).

    Per-file rule sets come from ``config`` unless ``select`` overrides
    them globally; ``ignore`` subtracts rules afterwards in both cases.
    ``skip_heavy`` drops rules marked ``heavy`` (whole-project analyses
    such as the CONC family) — used by ``--changed-only`` so the
    pre-commit path stays fast.
    """
    rules = all_rules()
    ignored = resolve_selectors(ignore) if ignore else frozenset()
    override = resolve_selectors(select) if select else None

    modules: list[ModuleInfo] = []
    findings: list[Finding] = []
    enabled_by_path: dict[str, frozenset[str]] = {}
    # modules is shared with the context: complete by project-rule time.
    context = AnalysisContext(config=config, modules=modules)
    for path, relpath in collect_files(paths, root, config):
        if override is not None:
            enabled = override
        else:
            enabled = resolve_selectors(config.selectors_for(relpath))
        enabled = enabled - ignored
        enabled_by_path[relpath] = enabled
        try:
            source = path.read_text(encoding="utf-8")
            module = make_module_info(path, relpath, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            findings.append(
                Finding(relpath, line, 0, PARSE_ERROR_RULE, f"cannot parse: {exc}")
            )
            continue
        modules.append(module)
        for rule_id in sorted(enabled):
            rule = rules[rule_id]
            if rule.scope != "module":
                continue
            if skip_heavy and rule.heavy:
                continue
            for finding in rule.check_module(module, context):
                if not module.suppressions.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)

    by_relpath = {m.relpath: m for m in modules}
    for rule_id in sorted(rules):
        rule = rules[rule_id]
        if rule.scope != "project":
            continue
        if skip_heavy and rule.heavy:
            continue
        for finding in rule.check_project(modules, context):
            if rule_id not in enabled_by_path.get(finding.path, frozenset()):
                continue
            module = by_relpath.get(finding.path)
            if module is not None and module.suppressions.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    return sort_findings(findings), len(enabled_by_path)


def check_source(
    source: str,
    relpath: str = "src/repro/core/_fixture.py",
    select: Sequence[str] | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one in-memory snippet with module-scope rules (test helper)."""
    module = make_module_info(Path("/" + relpath), relpath, source)
    enabled = resolve_selectors(select if select else ["all"])
    rules = all_rules()
    context = AnalysisContext(config=config, modules=[module])
    findings = []
    for rule_id in sorted(enabled):
        rule = rules[rule_id]
        if rule.scope != "module":
            continue
        for finding in rule.check_module(module, context):
            if not module.suppressions.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sort_findings(findings)


def check_project(
    sources: dict[str, str],
    select: Sequence[str] | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint a {relpath: source} mapping with project-scope rules."""
    modules = [
        make_module_info(Path("/" + relpath), relpath, text)
        for relpath, text in sorted(sources.items())
    ]
    enabled = resolve_selectors(select if select else ["all"])
    rules = all_rules()
    context = AnalysisContext(config=config, modules=modules)
    findings = []
    for rule_id in sorted(enabled):
        rule = rules[rule_id]
        if rule.scope != "project":
            continue
        for finding in rule.check_project(modules, context):
            module = next((m for m in modules if m.relpath == finding.path), None)
            if module is not None and module.suppressions.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    return sort_findings(findings)


def staged_python_files(root: Path) -> list[Path]:
    """Python files staged in the git index, relative to ``root``.

    Only added/copied/modified/renamed entries count — a staged deletion
    has nothing left to lint.  Raises ``OSError`` or
    ``CalledProcessError`` when ``root`` is not a git work tree.
    """
    proc = subprocess.run(
        [
            "git",
            "-C",
            str(root),
            "diff",
            "--cached",
            "--name-only",
            "--diff-filter=ACMR",
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    return [
        Path(line)
        for line in proc.stdout.splitlines()
        if line.endswith(".py")
    ]


def _scope_staged(
    staged: list[Path], scope: Sequence[Path], root: Path, config: LintConfig
) -> list[Path]:
    """Staged files restricted to the requested paths and config excludes."""
    out = []
    for rel in staged:
        if config.is_excluded(rel.as_posix()):
            continue
        if not (root / rel).is_file():
            continue  # staged, then removed from the work tree
        if scope and not any(_is_under(rel, entry, root) for entry in scope):
            continue
        out.append(rel)
    return out


def _is_under(rel: Path, scope: Path, root: Path) -> bool:
    """True when root-relative ``rel`` falls under the ``scope`` argument."""
    if scope.is_absolute():
        return (root / rel).resolve().is_relative_to(scope.resolve())
    return rel == scope or rel.is_relative_to(scope)


def build_arg_parser() -> argparse.ArgumentParser:
    """The reprolint argument parser (separate for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="reprolint: AST-based invariant linter for this repo "
        "(RNG discipline, seed threading, layering, API hygiene).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to lint"
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="project root (default: cwd); relpaths and per-path config "
        "are resolved against it",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml to read [tool.reprolint] from "
        "(default: <root>/pyproject.toml)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids/families; overrides per-path config",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids/families to drop everywhere",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only Python files staged in the git index (for the "
        "pre-commit hook); path arguments become a scope filter and "
        "heavy whole-project rules (the CONC family) are skipped",
    )
    return parser


def _split_rule_args(values: Sequence[str] | None) -> list[str] | None:
    """Flatten repeated/comma-separated ``--select``/``--ignore`` values."""
    if values is None:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, rule in all_rules().items():
            scope = "project" if rule.scope == "project" else "module "
            print(f"{rule_id}  [{scope}]  {rule.summary}")
        return 0
    if not args.paths and not args.changed_only:
        parser.error("no paths given (try: src tests benchmarks)")
    root = args.root.resolve()
    pyproject = args.config if args.config is not None else root / "pyproject.toml"
    config = load_config(pyproject)
    lint_targets: Sequence[Path] = args.paths
    if args.changed_only:
        try:
            staged = staged_python_files(root)
        except (OSError, subprocess.CalledProcessError) as exc:
            print(
                f"reprolint: error: cannot read the git index: {exc}",
                file=sys.stderr,
            )
            return 2
        lint_targets = _scope_staged(staged, args.paths, root, config)
        if not lint_targets:
            # Nothing staged in scope: trivially clean, never a failure.
            if args.format == "json":
                print(render_json([], 0))
            else:
                print(render_text([], 0))
            return 0
    try:
        findings, files_checked = lint_paths(
            lint_targets,
            root,
            config,
            select=_split_rule_args(args.select),
            ignore=_split_rule_args(args.ignore),
            skip_heavy=args.changed_only,
        )
    except (ValueError, FileNotFoundError) as exc:
        # Unknown rule selector in config/CLI, or a missing path argument.
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
