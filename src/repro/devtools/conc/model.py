"""Symbol table for the concurrency analysis (the CONC rule family).

One pass over a parsed module produces a :class:`ModuleSummary`: every
function and method summarised as the facts the CONC rules need —
``self.<attr>`` write/touch sites with the set of locks lexically held,
``with <lock>:`` regions, call edges (``self.m()`` / bare / duck-typed
``obj.m()``), thread/process spawn sites, blocking calls made while
holding a lock, and fork-unsafe resource creations flowing into
instance attributes.

Nested functions and lambdas are scanned as separate summaries with an
*empty* held-lock set: they execute later (on an executor, as a thread
target), not under the locks held at their definition site.  This is
what keeps ``MicroBatcher``'s single-flight closure — defined inside
``with self._lock:`` but run on the pool — out of false positives.

``# guarded-by: <lock>`` comments are collected per line so the lock
model can honour explicit guard annotations in addition to inference.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize

from repro.devtools.astutil import collect_import_aliases, dotted_name, resolve_name
from repro.devtools.registry import ModuleInfo

__all__ = [
    "AttrSite",
    "BlockSite",
    "ClassSummary",
    "FunctionSummary",
    "GlobalSite",
    "ModuleSummary",
    "SpawnSite",
    "summarize_module",
]

# Constructors whose result is a with-able mutual-exclusion guard.
_LOCK_CONSTRUCTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

# Constructors whose result must not cross an os.fork() boundary: the
# child inherits the raw state (lock word, fd, worker pool) without the
# threads/processes that service it.  Values are human-readable kinds.
_FORK_UNSAFE_CONSTRUCTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "socket.socket": "socket",
    "socket.socketpair": "socket",
    "socket.create_connection": "socket",
    "concurrent.futures.ThreadPoolExecutor": "executor",
    "concurrent.futures.ProcessPoolExecutor": "executor",
    "mmap.mmap": "mmap",
}

# Calls that can sleep indefinitely; holding a lock across one turns
# every other thread contending for that lock into a convoy.
_BLOCKING_CALLS = {
    "time.sleep",
    "socket.create_connection",
    "select.select",
    "subprocess.run",
    "subprocess.check_call",
    "subprocess.check_output",
}
_BLOCKING_METHODS = {
    "accept",
    "recv",
    "recvfrom",
    "recv_into",
    "sendall",
    "connect",
    "join",
    "wait",
    "result",
}
# Dotted prefixes whose methods shadow blocking names but never block.
_BLOCKING_EXEMPT_PREFIXES = ("os.path.", "posixpath.", "ntpath.", "str.")

# Method calls that mutate their receiver in place: a write for CONC001.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[\w.]+)")


@dataclasses.dataclass
class AttrSite:
    """One use of ``self.<attr>`` with the locks lexically held there."""

    attr: str
    lineno: int
    col: int
    kind: str  # "write" or "touch"
    held: tuple[str, ...]


@dataclasses.dataclass
class GlobalSite:
    """One write to a module-level name from inside a function."""

    name: str
    lineno: int
    col: int
    held: tuple[str, ...]


@dataclasses.dataclass
class BlockSite:
    """A potentially-blocking call made while at least one lock is held."""

    call: str
    lineno: int
    col: int
    held: tuple[str, ...]


@dataclasses.dataclass
class SpawnSite:
    """A thread/process/executor hand-off to a callable."""

    kind: str  # "thread", "process" or "submit"
    target: tuple[str, str] | None  # ("self"|"bare", name), None if opaque
    lineno: int


@dataclasses.dataclass
class FunctionSummary:
    """Concurrency-relevant facts about one function or method."""

    name: str
    qualname: str
    lineno: int
    class_name: str | None
    writes: list[AttrSite] = dataclasses.field(default_factory=list)
    touches: list[AttrSite] = dataclasses.field(default_factory=list)
    global_writes: list[GlobalSite] = dataclasses.field(default_factory=list)
    blocking: list[BlockSite] = dataclasses.field(default_factory=list)
    calls: set[tuple[str, str]] = dataclasses.field(default_factory=set)
    spawns: list[SpawnSite] = dataclasses.field(default_factory=list)
    unsafe_creates: dict[str, tuple[str, int]] = dataclasses.field(default_factory=dict)
    nested: list["FunctionSummary"] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ClassSummary:
    """A class and its per-method summaries."""

    name: str
    lineno: int
    methods: dict[str, FunctionSummary] = dataclasses.field(default_factory=dict)
    lock_attrs: set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class ModuleSummary:
    """Everything the CONC rules need to know about one module."""

    relpath: str
    functions: dict[str, FunctionSummary] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassSummary] = dataclasses.field(default_factory=dict)
    annotations: dict[int, str] = dataclasses.field(default_factory=dict)
    module_globals: set[str] = dataclasses.field(default_factory=set)
    module_locks: set[str] = dataclasses.field(default_factory=set)


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Build the per-module concurrency summary."""
    aliases = collect_import_aliases(module.tree)
    summary = ModuleSummary(
        relpath=module.relpath,
        annotations=_guard_annotations(module.source),
    )
    for node in module.tree.body:
        for target in _assigned_names(node):
            summary.module_globals.add(target)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            ctor = resolve_name(node.value.func, aliases)
            if ctor in _LOCK_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        summary.module_locks.add(target.id)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _Scanner(aliases, summary, class_name=None, lock_attrs=set())
            summary.functions[node.name] = scanner.scan(node, node.name)
        elif isinstance(node, ast.ClassDef):
            summary.classes[node.name] = _summarize_class(node, aliases, summary)
    return summary


def _summarize_class(
    node: ast.ClassDef, aliases: dict[str, str], summary: ModuleSummary
) -> ClassSummary:
    """Summarise one class: lock attributes first, then every method."""
    cls = ClassSummary(name=node.name, lineno=node.lineno)
    for sub in ast.walk(node):
        if not (isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call)):
            continue
        ctor = resolve_name(sub.value.func, aliases)
        if ctor not in _LOCK_CONSTRUCTORS:
            continue
        for target in sub.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls.lock_attrs.add(target.attr)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _Scanner(
                aliases, summary, class_name=node.name, lock_attrs=cls.lock_attrs
            )
            cls.methods[item.name] = scanner.scan(item, f"{node.name}.{item.name}")
    return cls


def _assigned_names(node: ast.stmt):
    """Top-level names bound by an assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    yield elt.id


def _guard_annotations(source: str) -> dict[int, str]:
    """Map line numbers to the lock named by a ``# guarded-by:`` comment."""
    annotations: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _GUARDED_BY.search(token.string)
            if match:
                annotations[token.start[0]] = match.group("lock")
    except tokenize.TokenError:
        pass
    return annotations


class _Scanner:
    """Walks one function body tracking the lexically-held lock set."""

    def __init__(
        self,
        aliases: dict[str, str],
        module: ModuleSummary,
        class_name: str | None,
        lock_attrs: set[str],
    ) -> None:
        self._aliases = aliases
        self._module = module
        self._class_name = class_name
        self._lock_attrs = lock_attrs
        self._local_locks: set[str] = set()
        self._self_name: str | None = None
        self._globals: set[str] = set()
        self._fn: FunctionSummary | None = None
        self._unsafe_locals: dict[str, str] = {}

    def scan(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> FunctionSummary:
        """Produce the summary for ``node`` (and its nested functions)."""
        self._fn = FunctionSummary(
            name=node.name,
            qualname=qualname,
            lineno=node.lineno,
            class_name=self._class_name,
        )
        args = node.args.posonlyargs + node.args.args
        if self._class_name is not None and args:
            self._self_name = args[0].arg
        for sub in self._walk_own(node):
            if isinstance(sub, ast.Global):
                self._globals.update(sub.names)
        self._scan_stmts(node.body, held=())
        return self._fn

    # -- statement walk -------------------------------------------------

    def _scan_stmts(self, stmts: list[ast.stmt], held: tuple[str, ...]) -> None:
        fn = self._fn
        assert fn is not None
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Runs later, not under the locks held here.
                self._scan_nested(stmt, f"{fn.qualname}.<locals>.{stmt.name}")
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                new_held = held
                for item in stmt.items:
                    self._scan_expr(item.context_expr, held)
                    key = self._lock_key(item.context_expr)
                    if key is not None and key not in new_held:
                        new_held = new_held + (key,)
                self._scan_stmts(stmt.body, new_held)
                continue
            self._scan_stmt(stmt, held)
            for field in ("body", "orelse", "finalbody"):
                body = getattr(stmt, field, None)
                if body:
                    self._scan_stmts(body, held)
            for handler in getattr(stmt, "handlers", []):
                self._scan_stmts(handler.body, held)

    def _scan_stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, ast.Assign):
            self._record_assign(stmt, held)
            for target in stmt.targets:
                self._record_store(target, held)
            self._scan_expr(stmt.value, held)
            for target in stmt.targets:
                self._scan_expr(target, held)
        elif isinstance(stmt, ast.AugAssign):
            self._record_store(stmt.target, held)
            self._scan_expr(stmt.value, held)
            self._scan_expr(stmt.target, held)
        elif isinstance(stmt, ast.AnnAssign):
            self._record_store(stmt.target, held)
            if stmt.value is not None:
                self._scan_expr(stmt.value, held)
            self._scan_expr(stmt.target, held)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_store(target, held)
                self._scan_expr(target, held)
        else:
            for field, value in ast.iter_fields(stmt):
                if field in ("body", "orelse", "finalbody", "handlers"):
                    continue
                if isinstance(value, ast.expr):
                    self._scan_expr(value, held)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.expr):
                            self._scan_expr(item, held)

    # -- expression walk ------------------------------------------------

    def _scan_expr(self, expr: ast.expr, held: tuple[str, ...]) -> None:
        fn = self._fn
        assert fn is not None
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                self._scan_nested(node, f"{fn.qualname}.<locals>.<lambda>")
                continue
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == self._self_name
                ):
                    fn.touches.append(
                        AttrSite(node.attr, node.lineno, node.col_offset, "touch", held)
                    )
            elif isinstance(node, ast.Call):
                self._record_call(node, held)
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    def _scan_nested(self, node: ast.AST, qualname: str) -> None:
        """Scan a nested def/lambda as its own later-running summary."""
        fn = self._fn
        assert fn is not None
        scanner = _Scanner(
            self._aliases, self._module, self._class_name, self._lock_attrs
        )
        scanner._self_name = self._self_name  # closures share the method's self
        scanner._local_locks = set(self._local_locks)
        if isinstance(node, ast.Lambda):
            nested = FunctionSummary(
                name="<lambda>",
                qualname=qualname,
                lineno=node.lineno,
                class_name=self._class_name,
            )
            scanner._fn = nested
            scanner._scan_expr(node.body, held=())
        else:
            nested = scanner.scan(node, qualname)  # type: ignore[arg-type]
        fn.nested.append(nested)

    # -- site recording -------------------------------------------------

    def _record_store(self, target: ast.expr, held: tuple[str, ...]) -> None:
        fn = self._fn
        assert fn is not None
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, held)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, held)
            return
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == self._self_name
        ):
            fn.writes.append(
                AttrSite(base.attr, target.lineno, target.col_offset, "write", held)
            )
        elif isinstance(base, ast.Name):
            name = base.id
            is_global = name in self._globals
            # Subscript stores mutate module state even without `global`.
            mutates = isinstance(target, ast.Subscript) and (
                name in self._module.module_globals
            )
            if is_global or mutates:
                fn.global_writes.append(
                    GlobalSite(name, target.lineno, target.col_offset, held)
                )

    def _record_assign(self, stmt: ast.Assign, held: tuple[str, ...]) -> None:
        """Track lock locals and fork-unsafe resource flow into attrs."""
        fn = self._fn
        assert fn is not None
        value = stmt.value
        ctor_kind: str | None = None
        if isinstance(value, ast.Call):
            resolved = resolve_name(value.func, self._aliases)
            if resolved in _LOCK_CONSTRUCTORS:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._local_locks.add(target.id)
            ctor_kind = _FORK_UNSAFE_CONSTRUCTORS.get(resolved or "")
        unsafe_source: str | None = ctor_kind
        if (
            unsafe_source is None
            and isinstance(value, ast.Name)
            and value.id in self._unsafe_locals
        ):
            unsafe_source = self._unsafe_locals[value.id]
        if unsafe_source is None:
            return
        for target in stmt.targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    self._unsafe_locals[elt.id] = unsafe_source
                elif (
                    isinstance(elt, ast.Attribute)
                    and isinstance(elt.value, ast.Name)
                    and elt.value.id == self._self_name
                ):
                    fn.unsafe_creates.setdefault(
                        elt.attr, (unsafe_source, elt.lineno)
                    )

    def _record_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        fn = self._fn
        assert fn is not None
        func = node.func
        resolved = resolve_name(func, self._aliases)
        # Call-graph edge.
        if isinstance(func, ast.Name):
            fn.calls.add(("bare", func.id))
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == self._self_name:
                fn.calls.add(("self", func.attr))
            else:
                fn.calls.add(("attr", func.attr))
        # Thread / process / executor hand-off.
        spawn_kind: str | None = None
        target_expr: ast.expr | None = None
        if resolved is not None and (
            resolved == "threading.Thread" or resolved.endswith(".Thread")
        ):
            spawn_kind = "thread"
            target_expr = _keyword(node, "target")
        elif (
            resolved is not None and resolved.endswith(".Process")
        ) or (isinstance(func, ast.Attribute) and func.attr == "Process"):
            spawn_kind = "process"
            target_expr = _keyword(node, "target")
        elif isinstance(func, ast.Attribute) and func.attr == "submit" and node.args:
            spawn_kind = "submit"
            target_expr = node.args[0]
        if spawn_kind is not None:
            fn.spawns.append(
                SpawnSite(spawn_kind, self._callable_spec(target_expr), node.lineno)
            )
        # Mutation through a method call is a write to the receiver.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            receiver = func.value
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == self._self_name
            ):
                fn.writes.append(
                    AttrSite(
                        receiver.attr, node.lineno, node.col_offset, "write", held
                    )
                )
                # append(unsafe_local) makes the container fork-unsafe too.
                for arg in node.args:
                    kind = self._unsafe_kind(arg)
                    if kind is not None:
                        fn.unsafe_creates.setdefault(
                            receiver.attr, (kind, node.lineno)
                        )
            elif (
                isinstance(receiver, ast.Name)
                and receiver.id in self._module.module_globals
            ):
                fn.global_writes.append(
                    GlobalSite(receiver.id, node.lineno, node.col_offset, held)
                )
        # Blocking call while holding a lock.
        if held:
            blocking = self._blocking_repr(node, resolved)
            if blocking is not None:
                fn.blocking.append(
                    BlockSite(blocking, node.lineno, node.col_offset, held)
                )

    def _unsafe_kind(self, expr: ast.expr) -> str | None:
        """Fork-unsafe kind of an expression, if statically known."""
        if isinstance(expr, ast.Name):
            return self._unsafe_locals.get(expr.id)
        if isinstance(expr, ast.Call):
            resolved = resolve_name(expr.func, self._aliases)
            return _FORK_UNSAFE_CONSTRUCTORS.get(resolved or "")
        return None

    def _callable_spec(self, expr: ast.expr | None) -> tuple[str, str] | None:
        if expr is None:
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self._self_name
        ):
            return ("self", expr.attr)
        if isinstance(expr, ast.Name):
            return ("bare", expr.id)
        return None

    def _blocking_repr(self, node: ast.Call, resolved: str | None) -> str | None:
        if resolved in _BLOCKING_CALLS:
            return resolved
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in _BLOCKING_METHODS:
            return None
        if isinstance(func.value, ast.Constant):
            return None  # ", ".join(...) and friends
        if resolved is not None and resolved.startswith(_BLOCKING_EXEMPT_PREFIXES):
            return None
        return resolved if resolved is not None else f"*.{func.attr}"

    # -- lock identification --------------------------------------------

    def _lock_key(self, expr: ast.expr) -> str | None:
        """Canonical name of a lock-like ``with`` context, else None."""
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        if root == self._self_name and self._self_name is not None:
            dotted = "self." + rest if rest else "self"
        if dotted.startswith("self.") and dotted[len("self."):] in self._lock_attrs:
            return dotted
        if dotted in self._local_locks or dotted in self._module.module_locks:
            return dotted
        last = dotted.rsplit(".", 1)[-1].lower()
        if "lock" in last or "mutex" in last:
            return dotted
        return None

    @staticmethod
    def _walk_own(node: ast.AST):
        """Walk a function body without descending into nested defs."""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            yield child
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(child))


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    """The value of keyword argument ``name``, if present."""
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None
