"""Fork-safety model: resources that must not cross a fork boundary.

A class that calls ``Process(target=self._worker)`` (the
``ShardedServer`` pattern — ``multiprocessing.get_context("fork")``)
splits its methods into *pre-fork* (parent-only) and *worker-reachable*
(the fork targets plus everything they call).  Any instance attribute
that received a fork-unsafe resource — a lock, socket, executor or mmap
constructed pre-fork — and is then touched from worker-reachable code
is reported: the child inherits the raw lock word / file descriptor /
pool state without the threads that service it.

Resources created *inside* worker-reachable code are fine: they are
born after the fork.
"""

from __future__ import annotations

import dataclasses

from repro.devtools.conc.callgraph import fork_roots_by_class, reachable_from
from repro.devtools.conc.model import ModuleSummary

__all__ = ["ForkViolation", "fork_violations"]


@dataclasses.dataclass(frozen=True)
class ForkViolation:
    """A pre-fork resource touched from fork-worker code."""

    class_name: str
    attr: str
    kind: str
    created_line: int
    method: str
    lineno: int
    col: int


def fork_violations(summary: ModuleSummary) -> list[ForkViolation]:
    """All fork-safety violations in one module, ordered by line."""
    out: list[ForkViolation] = []
    roots = fork_roots_by_class(summary)
    for class_name, targets in roots.items():
        cls = summary.classes.get(class_name)
        if cls is None:
            continue
        worker = reachable_from(summary, targets)
        unsafe: dict[str, tuple[str, int]] = {}
        for name, method in cls.methods.items():
            if method.qualname in worker:
                continue  # created post-fork: safe
            for attr, (kind, lineno) in method.unsafe_creates.items():
                unsafe.setdefault(attr, (kind, lineno))
        if not unsafe:
            continue
        for name, method in cls.methods.items():
            for fn in _with_nested(method):
                if fn.qualname not in worker:
                    continue
                for site in fn.touches:
                    if site.attr in unsafe:
                        kind, created = unsafe[site.attr]
                        out.append(
                            ForkViolation(
                                class_name,
                                site.attr,
                                kind,
                                created,
                                fn.qualname,
                                site.lineno,
                                site.col,
                            )
                        )
    return sorted(out, key=lambda v: (v.lineno, v.col, v.attr))


def _with_nested(fn):
    yield fn
    for nested in fn.nested:
        yield from _with_nested(nested)
