"""Whole-project concurrency analysis backing the CONC rule family.

The package layers three models over parsed modules:

- :mod:`repro.devtools.conc.model` — symbol table: per-function
  attribute sites, held-lock sets, call edges, spawn sites, fork-unsafe
  resource creations;
- :mod:`repro.devtools.conc.callgraph` — module-local reachability from
  thread roots (``Thread(target=...)``, ``submit``, HTTP handlers) and
  fork roots (``Process(target=...)``);
- :mod:`repro.devtools.conc.lockmodel` / ``forkmodel`` — inferred guard
  relationships and pre-fork resources touched in worker code.

:func:`build_model` is the entry point rules use; it memoises one build
per lint invocation in the shared :class:`~repro.devtools.registry.
AnalysisContext` cache so the four CONC rules pay for one analysis.
Like the rest of ``repro.devtools``, this package is stdlib-only and a
leaf of the layering DAG: it analyses ``repro`` but imports none of it.
"""

from __future__ import annotations

from repro.devtools.conc.model import ModuleSummary, summarize_module
from repro.devtools.registry import AnalysisContext, ModuleInfo

__all__ = ["ModuleSummary", "build_model", "summarize_module"]

_CACHE_KEY = "repro.devtools.conc:model"


def build_model(
    modules: list[ModuleInfo], context: AnalysisContext | None = None
) -> dict[str, ModuleSummary]:
    """Summaries for every module, keyed by relpath (memoised per run)."""
    if context is not None:
        cached = context.cache.get(_CACHE_KEY)
        if cached is not None and cached[0] == len(modules):
            return cached[1]
    model = {module.relpath: summarize_module(module) for module in modules}
    if context is not None:
        context.cache[_CACHE_KEY] = (len(modules), model)
    return model
