"""Guard inference: which lock protects which shared attribute.

Two sources, annotation beating inference:

1. ``# guarded-by: <lock>`` on an attribute's assignment line binds the
   attribute to that lock explicitly (``<lock>`` may be spelled
   ``_lock`` or ``self._lock``).
2. Otherwise, if every locked access of ``self.<attr>`` outside
   ``__init__`` happens under exactly one lock, that lock is inferred
   as the guard.  Attributes only ever accessed lock-free get *no*
   guard — single-writer designs (a daemon thread owning its counters,
   an atomic epoch-reference swap) are legal, and CONC001 only fires on
   *inconsistency*: a guard exists, and a write bypasses it.

``__init__`` is excluded from both inference votes and violation sites:
construction happens-before publication.
"""

from __future__ import annotations

from repro.devtools.conc.model import ClassSummary, ModuleSummary

__all__ = ["class_guards", "global_guards"]


def class_guards(summary: ModuleSummary, cls: ClassSummary) -> dict[str, str]:
    """Map attribute name → canonical guard lock for one class."""
    votes: dict[str, set[str]] = {}
    for name, method in cls.methods.items():
        if name == "__init__":
            continue
        for site in method.touches + method.writes:
            if site.held:
                votes.setdefault(site.attr, set()).update(site.held)
    guards = {attr: locks.pop() for attr, locks in votes.items() if len(locks) == 1}
    for method in cls.methods.values():
        for site in method.writes:
            lock = summary.annotations.get(site.lineno)
            if lock is not None:
                guards[site.attr] = _normalize(lock)
    return guards


def global_guards(summary: ModuleSummary) -> dict[str, str]:
    """Map module-global name → guard lock inferred from locked writes."""
    votes: dict[str, set[str]] = {}
    for fn in summary.functions.values():
        for site in fn.global_writes:
            if site.held:
                votes.setdefault(site.name, set()).update(site.held)
    return {name: locks.pop() for name, locks in votes.items() if len(locks) == 1}


def _normalize(lock: str) -> str:
    """Spell annotation lock names the way held-lock keys are spelled."""
    if lock.startswith("self."):
        return lock
    if "." not in lock:
        return f"self.{lock}"
    return lock
