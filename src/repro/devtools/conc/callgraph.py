"""Call graph and reachability over one module's function summaries.

Resolution is deliberately module-local and conservative:

- ``self.m()`` resolves within the caller's own class;
- bare ``f()`` resolves to a module-level function;
- duck-typed ``obj.m()`` resolves to *every* method named ``m`` in the
  module (over-approximation: reachability may include methods that a
  precise points-to analysis would exclude, never the reverse);
- nested functions and lambdas are reachable whenever their enclosing
  function is — they close over its state and typically run later on a
  thread or executor.

Thread roots are the targets of ``threading.Thread(target=...)`` /
``executor.submit(f)`` spawns plus the per-connection HTTP entry points
(``handle``, ``do_GET``, ...).  Fork roots are ``Process(target=...)``
spawn targets, grouped by the spawning class so the fork model stays
class-local.
"""

from __future__ import annotations

from repro.devtools.conc.model import FunctionSummary, ModuleSummary

__all__ = [
    "HANDLER_ENTRY_POINTS",
    "fork_roots_by_class",
    "iter_functions",
    "reachable_from",
    "thread_reachable",
]

# Methods invoked per-request/per-connection by socketserver-style
# frameworks: each call may run on its own thread.
HANDLER_ENTRY_POINTS = frozenset(
    {"handle", "do_GET", "do_HEAD", "do_POST", "process_connection"}
)


def iter_functions(summary: ModuleSummary):
    """Every function summary in the module, nested ones included."""
    pending: list[FunctionSummary] = list(summary.functions.values())
    for cls in summary.classes.values():
        pending.extend(cls.methods.values())
    while pending:
        fn = pending.pop()
        yield fn
        pending.extend(fn.nested)


def thread_reachable(summary: ModuleSummary) -> set[str]:
    """Qualnames of functions that may run on a non-main thread."""
    roots: list[FunctionSummary] = []
    for fn in iter_functions(summary):
        for spawn in fn.spawns:
            if spawn.kind not in ("thread", "submit"):
                continue
            roots.extend(_resolve_spec(summary, fn, spawn.target))
    for cls in summary.classes.values():
        for name, method in cls.methods.items():
            if name in HANDLER_ENTRY_POINTS:
                roots.append(method)
    return _closure(summary, roots)


def fork_roots_by_class(summary: ModuleSummary) -> dict[str, list[FunctionSummary]]:
    """Fork-worker entry points, keyed by the class that forks."""
    out: dict[str, list[FunctionSummary]] = {}
    for fn in iter_functions(summary):
        for spawn in fn.spawns:
            if spawn.kind != "process":
                continue
            for target in _resolve_spec(summary, fn, spawn.target):
                if target.class_name is not None:
                    out.setdefault(target.class_name, []).append(target)
    return out


def reachable_from(summary: ModuleSummary, roots: list[FunctionSummary]) -> set[str]:
    """Fork-worker closure: precise edges only, no duck typing.

    Worker code touches ``self`` attributes of the forking class, so
    self-calls, bare calls, nested functions and spawns cover it; the
    duck-typed ``obj.m()`` edge would fold parent-only methods into the
    worker set whenever a worker constructs some *other* object with a
    same-named method (``watcher.start()`` vs the server's ``start``).
    """
    return _closure(summary, roots, duck=False)


def _closure(
    summary: ModuleSummary, roots: list[FunctionSummary], duck: bool = True
) -> set[str]:
    methods_by_name: dict[str, list[FunctionSummary]] = {}
    for cls in summary.classes.values():
        for name, method in cls.methods.items():
            methods_by_name.setdefault(name, []).append(method)
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        fn = stack.pop()
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        stack.extend(fn.nested)
        for kind, name in fn.calls:
            if kind == "self" and fn.class_name is not None:
                cls = summary.classes.get(fn.class_name)
                if cls is not None and name in cls.methods:
                    stack.append(cls.methods[name])
            elif kind == "bare":
                if name in summary.functions:
                    stack.append(summary.functions[name])
            elif kind == "attr" and duck:
                stack.extend(methods_by_name.get(name, ()))
        for spawn in fn.spawns:
            stack.extend(_resolve_spec(summary, fn, spawn.target))
    return seen


def _resolve_spec(
    summary: ModuleSummary,
    caller: FunctionSummary,
    spec: tuple[str, str] | None,
) -> list[FunctionSummary]:
    """Resolve a spawn-target spec to function summaries."""
    if spec is None:
        return []
    kind, name = spec
    if kind == "self" and caller.class_name is not None:
        cls = summary.classes.get(caller.class_name)
        if cls is not None and name in cls.methods:
            return [cls.methods[name]]
        return []
    if kind == "bare":
        if name in summary.functions:
            return [summary.functions[name]]
        for nested in caller.nested:
            if nested.name == name:
                return [nested]
    return []
