"""Synthetic US business-listing generator.

Substitute for the proprietary Yahoo! Business Listings database
(Section 3.2 of the paper).  The study only relies on three properties
of that database: it is *comprehensive* for each domain, entities carry
a (nearly) *unique* phone number, and many carry a homepage URL.  The
generator reproduces exactly those properties, deterministically from a
seed, with realistic names/addresses so the rendered HTML pages look
like real listing pages to the extractors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.entities.domains import Domain, get_domain
from repro.entities.ids import canonical_url, is_valid_nanp_phone

__all__ = ["BusinessGenerator", "BusinessListing", "generate_listings"]

# Real, geographically-assigned NANP area codes; using genuine codes keeps
# the phone extractor's validity predicate meaningful.
_AREA_CODES = (
    "205", "212", "213", "215", "216", "303", "305", "312", "313", "314",
    "315", "316", "317", "319", "330", "334", "336", "351", "404", "405",
    "406", "408", "410", "412", "414", "415", "417", "419", "423", "425",
    "440", "443", "469", "478", "503", "504", "505", "508", "509", "510",
    "512", "513", "515", "516", "517", "518", "540", "541", "551", "559",
    "561", "562", "563", "585", "586", "601", "602", "603", "605", "606",
    "607", "608", "609", "610", "612", "614", "615", "616", "617", "618",
    "619", "620", "623", "626", "630", "631", "636", "641", "646", "650",
    "651", "660", "661", "662", "678", "701", "702", "703", "704", "706",
    "707", "708", "712", "713", "714", "715", "716", "717", "718", "719",
    "720", "724", "727", "731", "732", "734", "740", "754", "757", "760",
    "763", "765", "770", "772", "773", "774", "775", "781", "785", "786",
    "801", "802", "803", "804", "805", "806", "808", "810", "812", "813",
    "814", "815", "816", "817", "818", "828", "830", "831", "832", "843",
    "845", "847", "848", "850", "856", "857", "858", "859", "860", "862",
    "863", "864", "865", "901", "903", "904", "906", "907", "908", "909",
    "910", "912", "913", "914", "915", "916", "917", "918", "919", "920",
    "925", "928", "936", "937", "940", "941", "947", "949", "951", "952",
    "954", "956", "970", "971", "972", "973", "978", "979", "980", "985",
)

_CITIES = (
    ("Springfield", "IL"), ("Portland", "OR"), ("Austin", "TX"),
    ("Madison", "WI"), ("Boulder", "CO"), ("Savannah", "GA"),
    ("Ann Arbor", "MI"), ("Santa Clara", "CA"), ("Ithaca", "NY"),
    ("Asheville", "NC"), ("Burlington", "VT"), ("Tucson", "AZ"),
    ("Eugene", "OR"), ("Fargo", "ND"), ("Topeka", "KS"),
    ("Mobile", "AL"), ("Provo", "UT"), ("Dayton", "OH"),
    ("Tacoma", "WA"), ("Baton Rouge", "LA"), ("Richmond", "VA"),
    ("Lincoln", "NE"), ("Reno", "NV"), ("Durham", "NC"),
    ("Syracuse", "NY"), ("Fresno", "CA"), ("Knoxville", "TN"),
    ("Amarillo", "TX"), ("Worcester", "MA"), ("Des Moines", "IA"),
)

_STREETS = (
    "Main St", "Oak Ave", "Maple Dr", "Washington Blvd", "2nd St",
    "Park Ave", "Elm St", "Lake Rd", "Hill St", "Cedar Ln",
    "River Rd", "Sunset Blvd", "Broadway", "Church St", "Market St",
    "Pine St", "Highland Ave", "Center St", "Union Ave", "Grant St",
)

_FOUNDER_NAMES = (
    "Anderson", "Bailey", "Carter", "Delgado", "Ellis", "Fischer",
    "Garcia", "Huang", "Ibrahim", "Jensen", "Kowalski", "Lombardi",
    "Murphy", "Nguyen", "O'Brien", "Patel", "Quinn", "Rossi",
    "Schmidt", "Torres", "Ueda", "Vargas", "Walker", "Xu",
    "Yamamoto", "Zhang", "Bennett", "Chandler", "Donovan", "Eriksen",
)

_NAME_PREFIXES = (
    "Golden", "Silver", "Blue", "Red", "Green", "Royal", "Grand",
    "Little", "Old Town", "Downtown", "Lakeside", "Hillside",
    "Riverside", "Sunny", "Happy", "First", "Premier", "Family",
)

_TLDS = (".com", ".com", ".com", ".net", ".org", ".biz", ".us")


@dataclass(frozen=True)
class BusinessListing:
    """One row of the synthetic business-listings database.

    ``phone`` is the canonical 10-digit identifying attribute; it is
    unique within a generated database.  ``homepage`` is the canonical
    URL form (or ``None`` — not every business has a site), unique among
    businesses that have one.
    """

    entity_id: str
    domain_key: str
    name: str
    phone: str
    homepage: str | None
    street: str
    city: str
    state: str
    zip_code: str

    @property
    def address(self) -> str:
        """Single-line postal address, as rendered on listing pages."""
        return f"{self.street}, {self.city}, {self.state} {self.zip_code}"


class BusinessGenerator:
    """Deterministic generator of :class:`BusinessListing` rows.

    Args:
        domain: Domain key (one of the 8 local-business domains) or a
            :class:`~repro.entities.domains.Domain`.
        seed: Seed for the internal :class:`numpy.random.Generator`;
            equal seeds yield identical databases.
        homepage_fraction: Fraction of businesses that own a homepage.
            The paper's homepage coverage plots implicitly condition on
            businesses that have one; the remainder simply never match.
    """

    def __init__(
        self,
        domain: str | Domain,
        seed: int = 0,
        homepage_fraction: float = 0.8,
    ) -> None:
        self.domain = domain if isinstance(domain, Domain) else get_domain(domain)
        if not self.domain.is_local_business:
            raise ValueError(
                f"{self.domain.key!r} is not a local-business domain; "
                "use BookGenerator for books"
            )
        if not 0.0 <= homepage_fraction <= 1.0:
            raise ValueError("homepage_fraction must be in [0, 1]")
        self.seed = seed
        self.homepage_fraction = homepage_fraction
        self._rng = np.random.default_rng(seed)
        self._used_phones: set[str] = set()
        self._used_slugs: set[str] = set()
        self._serial = 0

    # -- phone allocation ---------------------------------------------------

    def _fresh_phone(self) -> str:
        """Draw a canonical, unused, valid NANP phone number."""
        rng = self._rng
        while True:
            area = _AREA_CODES[int(rng.integers(len(_AREA_CODES)))]
            exchange = f"{int(rng.integers(2, 10))}{int(rng.integers(100)):02d}"
            subscriber = f"{int(rng.integers(10000)):04d}"
            phone = area + exchange + subscriber
            if phone not in self._used_phones and is_valid_nanp_phone(phone):
                self._used_phones.add(phone)
                return phone

    # -- name / slug --------------------------------------------------------

    def _business_name(self) -> str:
        rng = self._rng
        words = self.domain.category_words or ("Services",)
        category = words[int(rng.integers(len(words)))]
        style = int(rng.integers(3))
        if style == 0:
            prefix = _NAME_PREFIXES[int(rng.integers(len(_NAME_PREFIXES)))]
            return f"{prefix} {category}"
        if style == 1:
            founder = _FOUNDER_NAMES[int(rng.integers(len(_FOUNDER_NAMES)))]
            return f"{founder}'s {category}"
        founder = _FOUNDER_NAMES[int(rng.integers(len(_FOUNDER_NAMES)))]
        return f"{founder} & Sons {category}"

    def _homepage_for(self, name: str) -> str:
        """Mint a unique canonical homepage URL from the business name."""
        rng = self._rng
        slug = "".join(ch for ch in name.lower() if ch.isalnum())[:24]
        candidate = slug
        while candidate in self._used_slugs or not candidate:
            candidate = f"{slug}{int(rng.integers(10000))}"
        self._used_slugs.add(candidate)
        tld = _TLDS[int(rng.integers(len(_TLDS)))]
        return canonical_url(f"http://www.{candidate}{tld}/")

    # -- public API ---------------------------------------------------------

    def generate_one(self) -> BusinessListing:
        """Generate the next listing in the deterministic sequence."""
        rng = self._rng
        self._serial += 1
        name = self._business_name()
        city, state = _CITIES[int(rng.integers(len(_CITIES)))]
        street_no = int(rng.integers(1, 9900))
        street = f"{street_no} {_STREETS[int(rng.integers(len(_STREETS)))]}"
        zip_code = f"{int(rng.integers(1, 99999)):05d}"
        homepage = None
        if rng.random() < self.homepage_fraction:
            homepage = self._homepage_for(name)
        return BusinessListing(
            entity_id=f"{self.domain.key}:{self._serial:08d}",
            domain_key=self.domain.key,
            name=name,
            phone=self._fresh_phone(),
            homepage=homepage,
            street=street,
            city=city,
            state=state,
            zip_code=zip_code,
        )

    def generate(self, count: int) -> list[BusinessListing]:
        """Generate ``count`` listings."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate_one() for _ in range(count)]

    def stream(self, count: int) -> Iterator[BusinessListing]:
        """Yield ``count`` listings lazily (for large databases)."""
        for _ in range(count):
            yield self.generate_one()


def generate_listings(
    domain: str,
    count: int,
    seed: int = 0,
    homepage_fraction: float = 0.8,
) -> list[BusinessListing]:
    """Convenience wrapper: generate ``count`` listings for ``domain``."""
    generator = BusinessGenerator(
        domain, seed=seed, homepage_fraction=homepage_fraction
    )
    return generator.generate(count)
