"""Domain and attribute registry (Table 1 of the paper).

The paper studies 9 domains: Books (identified by ISBN) and 8
local-business domains from the Yahoo! Business Listings database
(identified by phone and homepage).  Restaurants additionally carry a
``reviews`` attribute.  This module is the single source of truth for
that inventory; the corpus generator, the extraction runner, and the
experiment pipeline all iterate over :data:`DOMAIN_REGISTRY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ATTRIBUTE_HOMEPAGE",
    "ATTRIBUTE_ISBN",
    "ATTRIBUTE_PHONE",
    "ATTRIBUTE_REVIEWS",
    "ALL_ATTRIBUTES",
    "DOMAIN_REGISTRY",
    "LOCAL_BUSINESS_DOMAINS",
    "Domain",
    "get_domain",
    "table1_rows",
]

ATTRIBUTE_PHONE = "phone"
ATTRIBUTE_HOMEPAGE = "homepage"
ATTRIBUTE_ISBN = "isbn"
ATTRIBUTE_REVIEWS = "reviews"

ALL_ATTRIBUTES = (
    ATTRIBUTE_PHONE,
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_REVIEWS,
)


@dataclass(frozen=True)
class Domain:
    """One row of the paper's Table 1.

    Attributes:
        key: Stable identifier used in code and file names.
        name: Display name as printed in the paper.
        attributes: Identifying/studied attributes for the domain.
        is_local_business: True for the 8 Yahoo! Business Listings
            domains (phone + homepage), False for Books.
        category_words: Vocabulary used by the listing generator to form
            business names, and by the page renderer for realistic copy.
    """

    key: str
    name: str
    attributes: tuple[str, ...]
    is_local_business: bool = True
    category_words: tuple[str, ...] = field(default_factory=tuple)

    def has_attribute(self, attribute: str) -> bool:
        """Whether this domain carries ``attribute`` (Table 1)."""
        return attribute in self.attributes


_LOCAL = (ATTRIBUTE_PHONE, ATTRIBUTE_HOMEPAGE)

DOMAIN_REGISTRY: dict[str, Domain] = {
    domain.key: domain
    for domain in (
        Domain(
            key="books",
            name="Books",
            attributes=(ATTRIBUTE_ISBN,),
            is_local_business=False,
            category_words=("Press", "Books", "Editions", "Classics"),
        ),
        Domain(
            key="restaurants",
            name="Restaurants",
            attributes=_LOCAL + (ATTRIBUTE_REVIEWS,),
            category_words=(
                "Grill", "Bistro", "Cafe", "Kitchen", "Diner", "Trattoria",
                "Cantina", "Steakhouse", "Pizzeria", "Noodle House",
            ),
        ),
        Domain(
            key="automotive",
            name="Automotive",
            attributes=_LOCAL,
            category_words=(
                "Auto Repair", "Motors", "Tire Center", "Auto Body",
                "Car Wash", "Transmission", "Collision Center",
            ),
        ),
        Domain(
            key="banks",
            name="Banks",
            attributes=_LOCAL,
            category_words=(
                "Bank", "Credit Union", "Savings", "Trust", "Financial",
            ),
        ),
        Domain(
            key="libraries",
            name="Libraries",
            attributes=_LOCAL,
            category_words=(
                "Public Library", "Branch Library", "Community Library",
                "Memorial Library",
            ),
        ),
        Domain(
            key="schools",
            name="Schools",
            attributes=_LOCAL,
            category_words=(
                "Elementary School", "High School", "Middle School",
                "Academy", "Charter School", "Preparatory School",
            ),
        ),
        Domain(
            key="hotels",
            name="Hotels & Lodging",
            attributes=_LOCAL,
            category_words=(
                "Hotel", "Inn", "Suites", "Lodge", "Motel", "Resort",
                "Bed & Breakfast",
            ),
        ),
        Domain(
            key="retail",
            name="Retail & Shopping",
            attributes=_LOCAL,
            category_words=(
                "Outlet", "Boutique", "Emporium", "Market", "Shop",
                "Department Store", "Gifts", "Outfitters",
            ),
        ),
        Domain(
            key="home",
            name="Home & Garden",
            attributes=_LOCAL,
            category_words=(
                "Hardware", "Nursery", "Landscaping", "Plumbing",
                "Roofing", "Garden Center", "Interiors", "Flooring",
            ),
        ),
    )
}

#: The 8 Yahoo! Business Listings domains, in the paper's Figure 1 order.
LOCAL_BUSINESS_DOMAINS: tuple[str, ...] = (
    "restaurants",
    "automotive",
    "banks",
    "hotels",
    "libraries",
    "retail",
    "home",
    "schools",
)


def get_domain(key: str) -> Domain:
    """Look up a domain by key, with a helpful error for typos."""
    try:
        return DOMAIN_REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(DOMAIN_REGISTRY))
        raise KeyError(f"unknown domain {key!r}; known domains: {known}") from None


def table1_rows() -> list[tuple[str, str]]:
    """Return Table 1 of the paper: (domain name, attribute list) rows."""
    ordered = [  # the paper's Table 1 row order
        "books", "restaurants", "automotive", "banks", "libraries",
        "schools", "hotels", "retail", "home",
    ]
    rows = []
    for key in ordered:
        domain = DOMAIN_REGISTRY[key]
        label = {"isbn": "ISBN"}.get  # ISBN is upper-cased in the paper
        attrs = ", ".join(label(a) or a for a in domain.attributes)
        rows.append((domain.name, attrs))
    return rows
