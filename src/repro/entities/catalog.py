"""Entity database container consumed by the analyses.

The paper's methodology (Section 3.1) reduces web-scale extraction to a
join: scan every crawled page for *identifying attribute values* of
entities already in a comprehensive database.  :class:`EntityDatabase`
is that database — it holds the entities of one domain and exposes the
reverse maps (attribute value → entity) that the extraction runner uses
to turn raw matches into entity mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.entities.books import Book
from repro.entities.business import BusinessListing
from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    Domain,
    get_domain,
)
from repro.entities.ids import canonical_url, normalize_isbn, normalize_phone

__all__ = ["Entity", "EntityDatabase"]


@dataclass(frozen=True)
class Entity:
    """A domain entity with its identifying attribute values.

    Attributes:
        entity_id: Globally unique id, ``<domain>:<serial>``.
        domain_key: Owning domain.
        keys: Map from attribute name to the entity's canonical key for
            that attribute (e.g. ``{"phone": "4155550123"}``).  Entities
            may lack keys for some attributes (a business without a
            homepage has no ``homepage`` entry).
        payload: The source record (a listing or a book), kept for page
            rendering; the analyses never read it.
    """

    entity_id: str
    domain_key: str
    keys: Mapping[str, str]
    payload: object | None = field(default=None, compare=False, repr=False)


class EntityDatabase:
    """Indexed collection of the entities of one domain.

    Provides O(1) reverse lookup from a canonical attribute value to the
    entity carrying it, plus a stable integer index per entity so the
    analysis layer can work with dense numpy arrays.
    """

    def __init__(self, domain: str | Domain, entities: Iterable[Entity]) -> None:
        self.domain = domain if isinstance(domain, Domain) else get_domain(domain)
        self._entities: list[Entity] = []
        self._by_id: dict[str, Entity] = {}
        self._index_of: dict[str, int] = {}
        # attribute -> canonical key -> entity_id
        self._reverse: dict[str, dict[str, str]] = {}
        for entity in entities:
            self.add(entity)

    # -- mutation -----------------------------------------------------------

    def add(self, entity: Entity) -> None:
        """Insert an entity; identifying keys must not collide."""
        if entity.domain_key != self.domain.key:
            raise ValueError(
                f"entity {entity.entity_id!r} belongs to domain "
                f"{entity.domain_key!r}, not {self.domain.key!r}"
            )
        if entity.entity_id in self._by_id:
            raise ValueError(f"duplicate entity_id {entity.entity_id!r}")
        for attribute, key in entity.keys.items():
            table = self._reverse.setdefault(attribute, {})
            if key in table:
                raise ValueError(
                    f"duplicate {attribute} key {key!r} "
                    f"({table[key]!r} vs {entity.entity_id!r})"
                )
        self._index_of[entity.entity_id] = len(self._entities)
        self._entities.append(entity)
        self._by_id[entity.entity_id] = entity
        for attribute, key in entity.keys.items():
            self._reverse[attribute][key] = entity.entity_id

    # -- construction from generators ----------------------------------------

    @classmethod
    def from_listings(cls, listings: Iterable[BusinessListing]) -> "EntityDatabase":
        """Build a database from business listings (phone + homepage keys)."""
        listings = list(listings)
        if not listings:
            raise ValueError("cannot build an EntityDatabase from zero listings")
        domain = get_domain(listings[0].domain_key)
        entities = []
        for listing in listings:
            keys: dict[str, str] = {ATTRIBUTE_PHONE: normalize_phone(listing.phone)}
            if listing.homepage is not None:
                keys[ATTRIBUTE_HOMEPAGE] = canonical_url(listing.homepage)
            entities.append(
                Entity(
                    entity_id=listing.entity_id,
                    domain_key=listing.domain_key,
                    keys=keys,
                    payload=listing,
                )
            )
        return cls(domain, entities)

    @classmethod
    def from_books(cls, books: Iterable[Book]) -> "EntityDatabase":
        """Build a database from books (ISBN key)."""
        entities = [
            Entity(
                entity_id=book.entity_id,
                domain_key="books",
                keys={ATTRIBUTE_ISBN: normalize_isbn(book.isbn13)},
                payload=book,
            )
            for book in books
        ]
        if not entities:
            raise ValueError("cannot build an EntityDatabase from zero books")
        return cls("books", entities)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, attribute: str, key: str) -> str | None:
        """Return the entity_id carrying canonical ``key``, or None."""
        return self._reverse.get(attribute, {}).get(key)

    def key_table(self, attribute: str) -> Mapping[str, str]:
        """The full canonical-key → entity_id map for ``attribute``."""
        return self._reverse.get(attribute, {})

    def entities_with(self, attribute: str) -> list[Entity]:
        """Entities that carry a key for ``attribute``."""
        return [e for e in self._entities if attribute in e.keys]

    def get(self, entity_id: str) -> Entity:
        """Fetch an entity by id (KeyError if absent)."""
        return self._by_id[entity_id]

    def index_of(self, entity_id: str) -> int:
        """Stable dense index of ``entity_id`` (insertion order)."""
        return self._index_of[entity_id]

    @property
    def entity_ids(self) -> list[str]:
        """Entity ids in insertion (index) order."""
        return [e.entity_id for e in self._entities]

    # -- dunder ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities)

    def __contains__(self, entity_id: object) -> bool:
        return entity_id in self._by_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EntityDatabase(domain={self.domain.key!r}, "
            f"entities={len(self._entities)})"
        )
