"""Synthetic book database with checksum-valid ISBNs.

Substitute for the paper's database of "ISBN numbers of all books
published before 2007" (~1.4M entities, Section 3.2).  Each generated
book carries a unique, checksum-valid ISBN-13 (with a derivable ISBN-10
form, since all generated ISBNs use the 978 prefix), plus title/author/
year metadata used by the page renderer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.entities.ids import isbn13_check_digit, isbn13_to_isbn10

__all__ = ["Book", "BookGenerator", "generate_books"]

_TITLE_NOUNS = (
    "Garden", "Shadow", "River", "Empire", "Algorithm", "Journey",
    "Silence", "Harvest", "Mirror", "Archive", "Compass", "Winter",
    "Labyrinth", "Orchard", "Meridian", "Cathedral", "Atlas", "Harbor",
    "Letter", "Inheritance", "Equation", "Voyage", "Chronicle", "Door",
)

_TITLE_MODIFIERS = (
    "Lost", "Hidden", "Last", "First", "Silent", "Burning", "Distant",
    "Forgotten", "Glass", "Iron", "Paper", "Crimson", "Quiet", "Broken",
    "Endless", "Golden", "Secret", "Wandering", "Frozen", "Midnight",
)

_AUTHOR_FIRST = (
    "Alice", "Benjamin", "Clara", "Daniel", "Elena", "Frederick",
    "Grace", "Henry", "Iris", "Jonah", "Katherine", "Liam", "Maya",
    "Nathan", "Olivia", "Peter", "Ruth", "Samuel", "Teresa", "Victor",
)

_AUTHOR_LAST = (
    "Abbott", "Blake", "Castellanos", "Drummond", "Eliot", "Faulkner",
    "Grimaldi", "Hawthorne", "Ivanova", "Jacobs", "Kessler", "Laurent",
    "Moreno", "Novak", "Okafor", "Petrov", "Quill", "Romero",
    "Sorensen", "Takahashi", "Ulrich", "Villanueva", "Whitfield",
)

_PUBLISHERS = (
    "Harbor Press", "Meridian Books", "Quill & Leaf", "Northgate",
    "Lanternlight Editions", "Cobblestone Press", "Vellum House",
    "Bluewater Publishing", "Stonebridge Classics", "Foxglove Press",
)


@dataclass(frozen=True)
class Book:
    """One book entity; ``isbn13`` is the identifying attribute."""

    entity_id: str
    isbn13: str
    title: str
    author: str
    publisher: str
    year: int

    @property
    def isbn10(self) -> str:
        """ISBN-10 form (all generated ISBNs are 978-prefixed)."""
        return isbn13_to_isbn10(self.isbn13)


class BookGenerator:
    """Deterministic generator of :class:`Book` rows.

    ISBN-13s are minted from a 978 prefix, a synthetic registration
    group, and a serial counter, so they are unique by construction and
    always checksum-valid.  Years are drawn from 1950–2006 to match the
    paper's "published before 2007" cut-off.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._serial = 0

    def _fresh_isbn13(self) -> str:
        self._serial += 1
        # 978 + 1-digit group + 8-digit serial = 12-digit body.
        group = self._serial % 10
        serial = self._serial // 10
        body = f"978{group}{serial:08d}"
        return body + isbn13_check_digit(body)

    def generate_one(self) -> Book:
        """Generate the next book in the deterministic sequence."""
        rng = self._rng
        isbn13 = self._fresh_isbn13()
        modifier = _TITLE_MODIFIERS[int(rng.integers(len(_TITLE_MODIFIERS)))]
        noun = _TITLE_NOUNS[int(rng.integers(len(_TITLE_NOUNS)))]
        style = int(rng.integers(3))
        if style == 0:
            title = f"The {modifier} {noun}"
        elif style == 1:
            second = _TITLE_NOUNS[int(rng.integers(len(_TITLE_NOUNS)))]
            title = f"{noun} of the {modifier} {second}"
        else:
            title = f"A {modifier} {noun}"
        author = (
            f"{_AUTHOR_FIRST[int(rng.integers(len(_AUTHOR_FIRST)))]} "
            f"{_AUTHOR_LAST[int(rng.integers(len(_AUTHOR_LAST)))]}"
        )
        return Book(
            entity_id=f"books:{self._serial:08d}",
            isbn13=isbn13,
            title=title,
            author=author,
            publisher=_PUBLISHERS[int(rng.integers(len(_PUBLISHERS)))],
            year=int(rng.integers(1950, 2007)),
        )

    def generate(self, count: int) -> list[Book]:
        """Generate ``count`` books."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate_one() for _ in range(count)]

    def stream(self, count: int) -> Iterator[Book]:
        """Yield ``count`` books lazily."""
        for _ in range(count):
            yield self.generate_one()


def generate_books(count: int, seed: int = 0) -> list[Book]:
    """Convenience wrapper: generate ``count`` books."""
    return BookGenerator(seed=seed).generate(count)
