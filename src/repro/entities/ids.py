"""Identifier algebra for the entity databases.

The paper (Section 3.1) relies on *identifying attributes* — attributes
that uniquely (or nearly uniquely) identify an entity — to detect entity
mentions on webpages without full extraction:

- **ISBN numbers** for books, matched as either 10- or 13-digit forms.
- **US phone numbers** (NANP) for local businesses.
- **Homepage URLs** for local businesses, matched against anchor hrefs.

This module implements the algebra those matchers need: checksum
computation and validation for ISBN-10/ISBN-13, conversion between the
two forms, NANP phone validation and canonicalization across the
formatting variants that occur in the wild, and URL/host
canonicalization used to group crawled pages by host.
"""

from __future__ import annotations

import re
from urllib.parse import urlsplit

__all__ = [
    "canonical_host",
    "canonical_url",
    "format_isbn13",
    "format_phone",
    "host_of_url",
    "isbn10_check_digit",
    "isbn10_to_isbn13",
    "isbn13_check_digit",
    "isbn13_to_isbn10",
    "is_valid_isbn10",
    "is_valid_isbn13",
    "is_valid_nanp_phone",
    "normalize_isbn",
    "normalize_phone",
    "PHONE_FORMATS",
]

# ---------------------------------------------------------------------------
# ISBN
# ---------------------------------------------------------------------------

_ISBN_SEPARATORS = re.compile(r"[\s\-]+")


def isbn10_check_digit(body: str) -> str:
    """Return the ISBN-10 check digit for a 9-digit body.

    The ISBN-10 checksum weights digit *i* (1-based, from the left) by
    ``11 - i`` and requires the weighted sum to be divisible by 11.  The
    check digit may be ``X`` (representing 10).

    >>> isbn10_check_digit("030640615")
    '2'
    """
    if len(body) != 9 or not body.isdigit():
        raise ValueError(f"ISBN-10 body must be 9 digits, got {body!r}")
    total = sum((10 - i) * int(d) for i, d in enumerate(body))
    check = (11 - total % 11) % 11
    return "X" if check == 10 else str(check)


def isbn13_check_digit(body: str) -> str:
    """Return the ISBN-13 check digit for a 12-digit body.

    ISBN-13 uses the EAN-13 checksum: alternating weights 1 and 3, and
    the check digit brings the total to a multiple of 10.

    >>> isbn13_check_digit("978030640615")
    '7'
    """
    if len(body) != 12 or not body.isdigit():
        raise ValueError(f"ISBN-13 body must be 12 digits, got {body!r}")
    total = sum((1 if i % 2 == 0 else 3) * int(d) for i, d in enumerate(body))
    return str((10 - total % 10) % 10)


def is_valid_isbn10(isbn: str) -> bool:
    """Check whether ``isbn`` is a checksum-valid ISBN-10.

    Separators (spaces and hyphens) are ignored.  The final character
    may be ``X`` or ``x``.
    """
    compact = _ISBN_SEPARATORS.sub("", isbn)
    if len(compact) != 10:
        return False
    body, check = compact[:9], compact[9].upper()
    if not body.isdigit() or (check != "X" and not check.isdigit()):
        return False
    return isbn10_check_digit(body) == check


def is_valid_isbn13(isbn: str) -> bool:
    """Check whether ``isbn`` is a checksum-valid ISBN-13.

    Separators (spaces and hyphens) are ignored.
    """
    compact = _ISBN_SEPARATORS.sub("", isbn)
    if len(compact) != 13 or not compact.isdigit():
        return False
    return isbn13_check_digit(compact[:12]) == compact[12]


def isbn10_to_isbn13(isbn10: str) -> str:
    """Convert a valid ISBN-10 to its ISBN-13 form (978 prefix)."""
    compact = _ISBN_SEPARATORS.sub("", isbn10)
    if not is_valid_isbn10(compact):
        raise ValueError(f"not a valid ISBN-10: {isbn10!r}")
    body = "978" + compact[:9]
    return body + isbn13_check_digit(body)


def isbn13_to_isbn10(isbn13: str) -> str:
    """Convert a valid 978-prefixed ISBN-13 to its ISBN-10 form."""
    compact = _ISBN_SEPARATORS.sub("", isbn13)
    if not is_valid_isbn13(compact):
        raise ValueError(f"not a valid ISBN-13: {isbn13!r}")
    if not compact.startswith("978"):
        raise ValueError(f"only 978-prefixed ISBN-13 converts to ISBN-10: {isbn13!r}")
    body = compact[3:12]
    return body + isbn10_check_digit(body)


def normalize_isbn(isbn: str) -> str:
    """Canonicalize an ISBN to its compact ISBN-13 form.

    The paper matches ISBNs "formatted either as a 10-digit or a
    13-digit ISBN"; this is the canonical key both forms map to, so a
    page mentioning the ISBN-10 form and a database entry in ISBN-13
    form still join.
    """
    compact = _ISBN_SEPARATORS.sub("", isbn).upper()
    if is_valid_isbn13(compact):
        return compact
    if is_valid_isbn10(compact):
        return isbn10_to_isbn13(compact)
    raise ValueError(f"not a valid ISBN: {isbn!r}")


def format_isbn13(isbn13: str, hyphenate: bool = True) -> str:
    """Render a compact ISBN-13 with conventional hyphenation.

    Uses a fixed 3-1-4-4-1 grouping; real ISBN hyphenation depends on
    registration-group tables, but the matchers strip separators, so
    grouping only affects page realism, not correctness.
    """
    compact = _ISBN_SEPARATORS.sub("", isbn13)
    if not is_valid_isbn13(compact):
        raise ValueError(f"not a valid ISBN-13: {isbn13!r}")
    if not hyphenate:
        return compact
    parts = (compact[:3], compact[3], compact[4:8], compact[8:12], compact[12])
    return "-".join(parts)


# ---------------------------------------------------------------------------
# NANP phone numbers
# ---------------------------------------------------------------------------

_NON_DIGIT = re.compile(r"\D+")

#: Formatting templates for a 10-digit NANP number ``NXX NXX XXXX``.
#: ``{a}`` is the area code, ``{e}`` the exchange, ``{s}`` the subscriber
#: number.  These are the variants the synthetic page renderer emits and
#: the extractor must normalize.
PHONE_FORMATS: tuple[str, ...] = (
    "({a}) {e}-{s}",
    "{a}-{e}-{s}",
    "{a}.{e}.{s}",
    "{a} {e} {s}",
    "{a}{e}{s}",
    "+1-{a}-{e}-{s}",
    "1-{a}-{e}-{s}",
    "({a}) {e} {s}",
)


def is_valid_nanp_phone(digits: str) -> bool:
    """Check whether a 10-digit string is a plausible NANP number.

    NANP requires the area code and exchange to start with 2–9 and the
    area code's middle digit historically not to form an N11 service
    code.  This is the validity predicate the generator and the
    extractor share.
    """
    if len(digits) != 10 or not digits.isdigit():
        return False
    area, exchange = digits[:3], digits[3:6]
    if area[0] in "01" or exchange[0] in "01":
        return False
    if area[1] == area[2] == "1":  # N11 service codes (211, 311, ... 911)
        return False
    return True


def normalize_phone(raw: str) -> str:
    """Canonicalize a phone mention to its 10-digit key.

    Strips all non-digits and an optional leading country code ``1``.
    Raises :class:`ValueError` when the result is not a valid NANP
    number — the extractor uses this to reject false matches such as
    arbitrary 10-digit numbers with 0/1 prefixes.
    """
    digits = _NON_DIGIT.sub("", raw)
    if len(digits) == 11 and digits.startswith("1"):
        digits = digits[1:]
    if not is_valid_nanp_phone(digits):
        raise ValueError(f"not a valid NANP phone: {raw!r}")
    return digits


def format_phone(digits: str, style: int = 0) -> str:
    """Render a canonical 10-digit phone in one of :data:`PHONE_FORMATS`.

    ``style`` indexes into :data:`PHONE_FORMATS` (modulo its length), so
    callers can deterministically vary formatting per mention.
    """
    if not is_valid_nanp_phone(digits):
        raise ValueError(f"not a valid NANP phone: {digits!r}")
    template = PHONE_FORMATS[style % len(PHONE_FORMATS)]
    return template.format(a=digits[:3], e=digits[3:6], s=digits[6:])


# ---------------------------------------------------------------------------
# URLs and hosts
# ---------------------------------------------------------------------------


def canonical_host(host: str) -> str:
    """Canonicalize a hostname: lowercase, strip port and ``www.``.

    The paper groups pages "by hosts" (Section 3.1); this function
    defines the host equivalence classes used for that grouping and for
    matching homepage URLs to listings.
    """
    host = host.strip().lower().rstrip(".")
    if ":" in host:
        host = host.split(":", 1)[0]
    if host.startswith("www."):
        host = host[4:]
    return host


def canonical_url(url: str) -> str:
    """Canonicalize a URL for homepage matching.

    Lowercases scheme and host, strips ``www.``, default ports,
    fragments, and a trailing slash on the path.  Two URLs that
    canonicalize equal are treated as the same homepage; the homepage
    extractor compares hrefs to listing homepages under this map.
    """
    url = url.strip()
    if "://" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    host = canonical_host(parts.netloc)
    path = parts.path.rstrip("/")
    query = f"?{parts.query}" if parts.query else ""
    return f"{host}{path}{query}"


def host_of_url(url: str) -> str:
    """Return the canonical host of a URL."""
    if "://" not in url:
        url = "http://" + url
    return canonical_host(urlsplit(url).netloc)
