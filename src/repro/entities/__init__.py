"""Entity databases: the paper's proprietary Yahoo! datasets, rebuilt.

The paper uses two entity databases with *identifying attributes*
(Section 3.1): the Yahoo! Business Listings database (8 local-business
domains, identified by US phone numbers and homepage URLs) and a book
database (~1.4M entities identified by ISBN).  This package provides
deterministic synthetic equivalents:

- :mod:`repro.entities.ids` — the identifier algebra (ISBN checksums,
  NANP phone handling, URL canonicalization).
- :mod:`repro.entities.domains` — the domain/attribute registry
  (Table 1 of the paper).
- :mod:`repro.entities.business` — US business-listing generator.
- :mod:`repro.entities.books` — book generator with valid ISBNs.
- :mod:`repro.entities.catalog` — :class:`EntityDatabase`, the container
  the analyses consume.
"""

from repro.entities.books import Book, BookGenerator, generate_books
from repro.entities.business import (
    BusinessGenerator,
    BusinessListing,
    generate_listings,
)
from repro.entities.catalog import Entity, EntityDatabase
from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
    DOMAIN_REGISTRY,
    LOCAL_BUSINESS_DOMAINS,
    Domain,
    get_domain,
    table1_rows,
)

__all__ = [
    "ATTRIBUTE_HOMEPAGE",
    "ATTRIBUTE_ISBN",
    "ATTRIBUTE_PHONE",
    "ATTRIBUTE_REVIEWS",
    "DOMAIN_REGISTRY",
    "LOCAL_BUSINESS_DOMAINS",
    "Book",
    "BookGenerator",
    "BusinessGenerator",
    "BusinessListing",
    "Domain",
    "Entity",
    "EntityDatabase",
    "generate_books",
    "generate_listings",
    "get_domain",
    "table1_rows",
]
