"""Entity resolution: deduplication and linking of extracted mentions.

The paper's introduction frames the end-to-end challenge as "automatic
crawling, clustering, extraction, deduplication and linking, all at the
scale and diversity of the Web".  The spread analysis sidesteps
dedup/linking by matching *identifying attributes* exactly; this
package builds the general machinery for the harder case — mentions
with noisy names, partial addresses, and missing or malformed phones:

- :mod:`repro.linking.similarity` — string comparators (Jaro, Jaro–
  Winkler, token Jaccard) and the field-weighted mention↔listing score.
- :mod:`repro.linking.mentions` — a generator of realistically
  corrupted mentions with ground truth, for evaluation.
- :mod:`repro.linking.blocking` — candidate generation (phone, name-key
  and locality blocks) so resolution never does an O(M·N) scan.
- :mod:`repro.linking.resolution` — the resolver: block, score,
  threshold, and evaluate against ground truth.
"""

from repro.linking.blocking import BlockingIndex
from repro.linking.mentions import Mention, MentionGenerator
from repro.linking.resolution import EntityResolver, ResolutionReport
from repro.linking.similarity import (
    jaro,
    jaro_winkler,
    mention_listing_score,
    name_similarity,
    token_jaccard,
)

__all__ = [
    "BlockingIndex",
    "EntityResolver",
    "Mention",
    "MentionGenerator",
    "ResolutionReport",
    "jaro",
    "jaro_winkler",
    "mention_listing_score",
    "name_similarity",
    "token_jaccard",
]
