"""String similarity for entity resolution, from scratch.

Jaro and Jaro–Winkler are the standard comparators for short names in
record linkage; token Jaccard handles word reordering ("Golden Grill
Restaurant" vs "Restaurant Golden Grill"); the combined
:func:`mention_listing_score` weighs name, locality, and phone evidence
the way a production linker would.
"""

from __future__ import annotations

import re

__all__ = [
    "jaro",
    "jaro_winkler",
    "mention_listing_score",
    "name_similarity",
    "normalize_name",
    "token_jaccard",
]

_NON_ALNUM = re.compile(r"[^a-z0-9 ]+")
_WHITESPACE = re.compile(r"\s+")

#: Common business-name abbreviations folded to a canonical token.
_ABBREVIATIONS = {
    "rest": "restaurant",
    "restaurnt": "restaurant",
    "st": "street",
    "ave": "avenue",
    "dr": "drive",
    "co": "company",
    "inc": "incorporated",
    "&": "and",
}


def normalize_name(name: str) -> str:
    """Lowercase, strip punctuation, expand common abbreviations.

    Apostrophes are deleted (not spaced) so "Joe's" stays one token.
    """
    lowered = name.lower().replace("&", " and ").replace("'", "")
    cleaned = _NON_ALNUM.sub(" ", lowered)
    tokens = [
        _ABBREVIATIONS.get(token, token)
        for token in _WHITESPACE.sub(" ", cleaned).strip().split(" ")
        if token
    ]
    return " ".join(tokens)


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1].

    Matches are characters equal within a window of
    ``max(len)/2 - 1``; the score combines match density and
    transposition count.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == char:
                a_matched[i] = b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    a_stream = [char for char, m in zip(a, a_matched) if m]
    b_stream = [char for char, m in zip(b, b_matched) if m]
    transpositions = sum(1 for x, y in zip(a_stream, b_stream) if x != y) // 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted by a shared prefix (up to 4 chars)."""
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    base = jaro(a, b)
    prefix = 0
    for x, y in zip(a[:4], b[:4]):
        if x != y:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity of the token sets of two strings."""
    tokens_a = set(a.split())
    tokens_b = set(b.split())
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return len(tokens_a & tokens_b) / len(union)


def name_similarity(a: str, b: str) -> float:
    """Business-name similarity: max of Jaro–Winkler and token Jaccard
    over normalized forms (each handles a different corruption mode:
    typos vs. dropped/reordered words)."""
    na, nb = normalize_name(a), normalize_name(b)
    if not na or not nb:
        return 0.0
    return max(jaro_winkler(na, nb), token_jaccard(na, nb))


def mention_listing_score(
    name_a: str,
    name_b: str,
    same_city: bool,
    same_zip: bool,
    phone_match: bool | None,
    name_weight: float = 0.6,
    locality_weight: float = 0.2,
    phone_weight: float = 0.2,
) -> float:
    """Field-weighted match score between a mention and a listing.

    Args:
        name_a, name_b: The two name strings.
        same_city, same_zip: Locality agreement flags.
        phone_match: True/False when both sides have a phone; ``None``
            when the mention lacks one (the phone term is then
            redistributed onto the name, the strongest field).

    Returns:
        A score in [0, 1].  An exact phone match is decisive evidence
        in the NANP world, so it contributes its full weight; a phone
        *mismatch* actively penalizes.
    """
    total = name_weight + locality_weight + phone_weight
    if abs(total - 1.0) > 1e-9:
        raise ValueError("weights must sum to 1")
    name_term = name_similarity(name_a, name_b)
    locality_term = 0.5 * float(same_city) + 0.5 * float(same_zip)
    if phone_match is None:
        return (name_weight + phone_weight) * name_term + (
            locality_weight * locality_term
        )
    phone_term = 1.0 if phone_match else -0.5
    return (
        name_weight * name_term
        + locality_weight * locality_term
        + phone_weight * phone_term
    )
