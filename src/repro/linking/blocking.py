"""Candidate blocking for entity resolution.

Scoring every (mention, listing) pair is O(M·N); blocking restricts
comparison to pairs sharing a cheap key.  Three complementary blocks:

- **phone block**: exact canonical phone — near-perfect precision when
  the mention has a phone;
- **name-key block**: first 4 characters of each normalized name token
  — robust to suffix typos and abbreviation;
- **locality block**: (city, zip) — a fallback that catches renames.

The union of blocks bounds resolution recall; the resolver then scores
only within blocks.
"""

from __future__ import annotations

from collections import defaultdict

from repro.entities.business import BusinessListing
from repro.entities.ids import normalize_phone
from repro.linking.mentions import Mention
from repro.linking.similarity import normalize_name

__all__ = ["BlockingIndex"]


def _name_keys(name: str) -> set[str]:
    return {token[:4] for token in normalize_name(name).split() if len(token) >= 3}


class BlockingIndex:
    """Inverted indexes from blocking keys to listings."""

    def __init__(self, listings: list[BusinessListing]) -> None:
        if not listings:
            raise ValueError("cannot block over zero listings")
        self._by_phone: dict[str, str] = {}
        self._by_name_key: dict[str, set[str]] = defaultdict(set)
        self._by_locality: dict[tuple[str, str], set[str]] = defaultdict(set)
        self._listings: dict[str, BusinessListing] = {}
        for listing in listings:
            self._listings[listing.entity_id] = listing
            self._by_phone[normalize_phone(listing.phone)] = listing.entity_id
            for key in _name_keys(listing.name):
                self._by_name_key[key].add(listing.entity_id)
            self._by_locality[(listing.city, listing.zip_code)].add(
                listing.entity_id
            )

    @property
    def n_listings(self) -> int:
        """Listings indexed."""
        return len(self._listings)

    def listing(self, entity_id: str) -> BusinessListing:
        """Fetch an indexed listing."""
        return self._listings[entity_id]

    def candidates(self, mention: Mention) -> set[str]:
        """Entity ids sharing at least one blocking key with a mention."""
        found: set[str] = set()
        if mention.phone:
            try:
                canonical = normalize_phone(mention.phone)
            except ValueError:
                canonical = None
            if canonical and canonical in self._by_phone:
                found.add(self._by_phone[canonical])
        for key in _name_keys(mention.name):
            found.update(self._by_name_key.get(key, ()))
        if mention.zip_code:
            found.update(
                self._by_locality.get((mention.city, mention.zip_code), ())
            )
        return found

    def block_sizes(self) -> dict[str, float]:
        """Diagnostics: average candidates per key, per block type."""
        def mean_size(index: dict) -> float:
            if not index:
                return 0.0
            return sum(len(v) if isinstance(v, set) else 1 for v in index.values()) / len(index)

        return {
            "phone": mean_size(self._by_phone),
            "name_key": mean_size(self._by_name_key),
            "locality": mean_size(self._by_locality),
        }
