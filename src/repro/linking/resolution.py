"""The entity resolver: block, score, threshold, evaluate.

Links noisy mentions to database listings (the "linking" half of the
paper's end-to-end challenge) and groups unlinked mentions that refer
to the same unknown entity (the "deduplication" half).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entities.business import BusinessListing
from repro.entities.ids import normalize_phone
from repro.linking.blocking import BlockingIndex
from repro.linking.mentions import Mention
from repro.linking.similarity import mention_listing_score, name_similarity

__all__ = ["EntityResolver", "ResolutionReport"]


@dataclass(frozen=True)
class ResolutionReport:
    """Quality of one resolution run against ground truth.

    Attributes:
        n_mentions: Mentions processed.
        n_linked: Mentions assigned to some listing.
        precision: Of linked mentions, fraction linked correctly.
        recall: Of all mentions, fraction linked correctly.
        f1: Harmonic mean of the two.
        mean_candidates: Average blocking candidates per mention (the
            work saved vs. the O(M·N) scan).
    """

    n_mentions: int
    n_linked: int
    precision: float
    recall: float
    f1: float
    mean_candidates: float


class EntityResolver:
    """Links mentions to listings via blocking + weighted scoring.

    Args:
        listings: The reference database rows.
        threshold: Minimum score to accept a link; below it the mention
            stays unlinked (a candidate new entity).
    """

    def __init__(
        self, listings: list[BusinessListing], threshold: float = 0.75
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.index = BlockingIndex(listings)
        self._candidate_counts: list[int] = []

    def score(self, mention: Mention, listing: BusinessListing) -> float:
        """Match score between one mention and one listing."""
        phone_match: bool | None = None
        if mention.phone:
            try:
                phone_match = normalize_phone(mention.phone) == listing.phone
            except ValueError:
                phone_match = None
        return mention_listing_score(
            mention.name,
            listing.name,
            same_city=mention.city == listing.city,
            same_zip=bool(mention.zip_code)
            and mention.zip_code == listing.zip_code,
            phone_match=phone_match,
        )

    def resolve(self, mention: Mention) -> tuple[str | None, float]:
        """Best link for one mention: ``(entity_id or None, score)``."""
        candidates = self.index.candidates(mention)
        self._candidate_counts.append(len(candidates))
        best_id: str | None = None
        best_score = 0.0
        for entity_id in sorted(candidates):
            score = self.score(mention, self.index.listing(entity_id))
            if score > best_score:
                best_id, best_score = entity_id, score
        if best_score < self.threshold:
            return None, best_score
        return best_id, best_score

    def resolve_all(self, mentions: list[Mention]) -> dict[str, str | None]:
        """Resolve every mention; returns mention_id → entity_id/None."""
        return {m.mention_id: self.resolve(m)[0] for m in mentions}

    def deduplicate_unlinked(
        self, mentions: list[Mention], links: dict[str, str | None]
    ) -> list[list[str]]:
        """Group unlinked mentions that appear to co-refer.

        Greedy clustering by pairwise name similarity within the same
        city — adequate for the tail-entity discovery scenario where
        unlinked mentions are rare and local.
        """
        unlinked = [m for m in mentions if links.get(m.mention_id) is None]
        clusters: list[list[Mention]] = []
        for mention in unlinked:
            placed = False
            for cluster in clusters:
                head = cluster[0]
                if head.city == mention.city and (
                    name_similarity(head.name, mention.name) >= self.threshold
                ):
                    cluster.append(mention)
                    placed = True
                    break
            if not placed:
                clusters.append([mention])
        return [[m.mention_id for m in cluster] for cluster in clusters]

    def evaluate(self, mentions: list[Mention]) -> ResolutionReport:
        """Resolve and score against the mentions' ground truth."""
        if not mentions:
            raise ValueError("cannot evaluate on zero mentions")
        self._candidate_counts = []
        links = self.resolve_all(mentions)
        linked = 0
        correct = 0
        for mention in mentions:
            predicted = links[mention.mention_id]
            if predicted is None:
                continue
            linked += 1
            if predicted == mention.true_entity_id:
                correct += 1
        precision = correct / linked if linked else 0.0
        recall = correct / len(mentions)
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        mean_candidates = (
            sum(self._candidate_counts) / len(self._candidate_counts)
            if self._candidate_counts
            else 0.0
        )
        return ResolutionReport(
            n_mentions=len(mentions),
            n_linked=linked,
            precision=precision,
            recall=recall,
            f1=f1,
            mean_candidates=mean_candidates,
        )
