"""Noisy mention generation with ground truth.

A *mention* is how a tail site refers to a business: the name may be
abbreviated, reworded, or typo'd; the phone may be missing; the
locality may be partial.  The generator corrupts database listings with
controlled noise and keeps the true entity id, so resolution quality is
measurable exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.entities.business import BusinessListing
from repro.entities.ids import format_phone

__all__ = ["Mention", "MentionGenerator"]


@dataclass(frozen=True)
class Mention:
    """One noisy reference to a business found on some site.

    ``true_entity_id`` is ground truth for evaluation only — a resolver
    must never read it.
    """

    mention_id: str
    source_host: str
    name: str
    phone: str | None
    city: str
    state: str
    zip_code: str
    true_entity_id: str


_ABBREVIATE = {
    "Restaurant": "Rest.",
    "Avenue": "Ave",
    "Street": "St",
    "Company": "Co.",
    "Library": "Lib.",
    "School": "Sch.",
    "Center": "Ctr",
}


class MentionGenerator:
    """Corrupts listings into mentions with configurable noise rates.

    Args:
        typo_rate: Probability of one character swap in the name.
        drop_word_rate: Probability of dropping one name word.
        abbreviate_rate: Probability of abbreviating a known word.
        missing_phone_rate: Probability the mention has no phone.
        wrong_zip_rate: Probability the zip is absent/garbled.
        seed: RNG seed.
    """

    def __init__(
        self,
        typo_rate: float = 0.2,
        drop_word_rate: float = 0.15,
        abbreviate_rate: float = 0.3,
        missing_phone_rate: float = 0.25,
        wrong_zip_rate: float = 0.1,
        seed: int = 0,
    ) -> None:
        for rate in (
            typo_rate,
            drop_word_rate,
            abbreviate_rate,
            missing_phone_rate,
            wrong_zip_rate,
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("noise rates must be in [0, 1]")
        self.typo_rate = typo_rate
        self.drop_word_rate = drop_word_rate
        self.abbreviate_rate = abbreviate_rate
        self.missing_phone_rate = missing_phone_rate
        self.wrong_zip_rate = wrong_zip_rate
        self._rng = np.random.default_rng(seed)
        self._serial = 0

    def _corrupt_name(self, name: str) -> str:
        rng = self._rng
        words = name.split()
        if rng.random() < self.abbreviate_rate:
            words = [_ABBREVIATE.get(word, word) for word in words]
        if len(words) > 1 and rng.random() < self.drop_word_rate:
            drop = int(rng.integers(len(words)))
            words = words[:drop] + words[drop + 1:]
        text = " ".join(words)
        if len(text) > 3 and rng.random() < self.typo_rate:
            pos = int(rng.integers(1, len(text) - 1))
            chars = list(text)
            chars[pos], chars[pos - 1] = chars[pos - 1], chars[pos]
            text = "".join(chars)
        return text

    def corrupt(self, listing: BusinessListing, source_host: str) -> Mention:
        """Produce one noisy mention of ``listing`` from ``source_host``."""
        rng = self._rng
        self._serial += 1
        phone: str | None = None
        if rng.random() >= self.missing_phone_rate:
            style = int(rng.integers(8))
            phone = format_phone(listing.phone, style=style)
        zip_code = listing.zip_code
        if rng.random() < self.wrong_zip_rate:
            zip_code = ""
        return Mention(
            mention_id=f"mention:{self._serial:08d}",
            source_host=source_host,
            name=self._corrupt_name(listing.name),
            phone=phone,
            city=listing.city,
            state=listing.state,
            zip_code=zip_code,
            true_entity_id=listing.entity_id,
        )

    def corpus(
        self,
        listings: list[BusinessListing],
        mentions_per_listing: int = 3,
        host_pool: int = 50,
    ) -> list[Mention]:
        """Generate several mentions per listing across synthetic hosts."""
        if mentions_per_listing < 1:
            raise ValueError("mentions_per_listing must be >= 1")
        if host_pool < 1:
            raise ValueError("host_pool must be >= 1")
        mentions = []
        for listing in listings:
            for _ in range(mentions_per_listing):
                host = f"tail-{int(self._rng.integers(host_pool)):04d}.example.com"
                mentions.append(self.corrupt(listing, host))
        return mentions
