"""Wrapper + linking extraction: the path with no attribute shortcut.

The paper's methodology detects entities by matching identifying
attributes — a shortcut it justifies in §3.1 ("we have reduced the
problem ... to a task that is much easier than actual web-scale
extraction").  This module implements the *actual* task over the
synthetic corpus, composing the subsystems:

1. induce each site's record template from structural repetition
   (:mod:`repro.extract.wrappers`),
2. lift each record into a noisy mention (name from the heading field,
   locality from the address parser, phone if any),
3. link mentions to the database with blocking + weighted scoring
   (:mod:`repro.linking.resolution`), and
4. aggregate linked mentions per host into the same
   :class:`~repro.core.incidence.BipartiteIncidence` the shortcut path
   produces.

Comparing the two paths' coverage curves quantifies exactly how much
the paper's shortcut could distort its conclusions (answer, per the
ablation benchmark: very little — and only toward *under*-counting
spread, consistent with §3.5's one-sided error argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.incidence import BipartiteIncidence
from repro.crawl.cache import WebCache
from repro.crawl.hostindex import HostIndex
from repro.entities.catalog import EntityDatabase
from repro.extract.addresses import parse_address
from repro.extract.wrappers import WrapperInducer, WrapperRecord
from repro.linking.mentions import Mention
from repro.linking.resolution import EntityResolver

__all__ = ["WrapperLinkingExtractor", "WrapperLinkingStats"]


@dataclass
class WrapperLinkingStats:
    """Bookkeeping from one wrapper+linking extraction run."""

    pages_scanned: int = 0
    pages_with_template: int = 0
    records_induced: int = 0
    mentions_lifted: int = 0
    mentions_linked: int = 0

    @property
    def link_rate(self) -> float:
        """Fraction of lifted mentions that linked to the database."""
        if self.mentions_lifted == 0:
            return 0.0
        return self.mentions_linked / self.mentions_lifted


class WrapperLinkingExtractor:
    """Extracts an incidence via template induction + entity linking.

    Args:
        database: The reference entity database (used only by the
            *linker* — the induction stage never sees it).
        threshold: Link-acceptance score threshold.
        min_repeats: Template-induction repeat threshold.
    """

    def __init__(
        self,
        database: EntityDatabase,
        threshold: float = 0.7,
        min_repeats: int = 2,
    ) -> None:
        self.database = database
        listings = [
            entity.payload
            for entity in database
            if entity.payload is not None
        ]
        if not listings:
            raise ValueError("database has no listing payloads to link against")
        self.resolver = EntityResolver(listings, threshold=threshold)
        self.inducer = WrapperInducer(min_repeats=min_repeats)
        self.stats = WrapperLinkingStats()
        self._serial = 0

    def _lift(self, record: WrapperRecord, host: str) -> Mention | None:
        """Turn one induced record into a mention, if it has a name."""
        name = record.name
        if not name:
            return None
        address = None
        for value in record.fields.values():
            address = parse_address(value)
            if address:
                break
        self._serial += 1
        return Mention(
            mention_id=f"wrapped:{self._serial:08d}",
            source_host=host,
            name=name,
            phone=record.phone,
            city=address.city if address else "",
            state=address.state if address else "",
            zip_code=address.zip_code if address else "",
            true_entity_id="",  # unknown: this is the real task
        )

    def run(self, cache: WebCache) -> BipartiteIncidence:
        """Scan the cache; induce, lift, link, aggregate."""
        index = HostIndex(self.database)
        for host, pages in cache.scan():
            for page in pages:
                self.stats.pages_scanned += 1
                wrapper = self.inducer.induce(page.content)
                if wrapper is None:
                    continue
                self.stats.pages_with_template += 1
                self.stats.records_induced += wrapper.record_count
                for record in wrapper.records:
                    mention = self._lift(record, host)
                    if mention is None:
                        continue
                    self.stats.mentions_lifted += 1
                    entity_id, __ = self.resolver.resolve(mention)
                    if entity_id is None:
                        continue
                    self.stats.mentions_linked += 1
                    index.record(host, entity_id)
        return index.to_incidence()
