"""Benchmark trajectory across PRs (``repro bench --history``).

Each performance-focused PR leaves a ``BENCH_PR<n>.json`` report at the
repo root (PR 2: the workers × cache matrix; PR 4: serve latency /
throughput).  This module aggregates them into one trajectory table —
printed to stdout and maintained inside the marked data section of
``docs/performance.md`` — so the ROADMAP's "fast as the hardware
allows" claim stays measurable across the repo's history.

Extraction is deliberately tolerant: each report shape contributes the
headline numbers it actually has (speedups, throughput, latency), and
unknown shapes degrade to their benchmark name rather than failing the
whole table — old reports must never break new tooling.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

from repro.io import atomic_write_text

__all__ = [
    "BEGIN_MARKER",
    "END_MARKER",
    "collect_bench_rows",
    "format_history",
    "update_performance_doc",
]

BEGIN_MARKER = "<!-- BENCH_HISTORY_BEGIN -->"
END_MARKER = "<!-- BENCH_HISTORY_END -->"

_NAME_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def _headline(payload: dict) -> str:
    """Best-effort one-phrase summary of one bench report."""
    rungs = payload.get("rungs")
    if isinstance(rungs, list) and rungs and all(
        isinstance(rung, dict) and "backend" in rung for rung in rungs
    ):
        # The PR9 storage-tier ladder: one rung per backend.
        phrases = []
        for rung in rungs:
            latency = rung.get("latency_ms") or {}
            phrases.append(
                f"{rung['backend']} p99 {latency.get('p99_ms', '?')}ms"
            )
        verdict = payload.get("criteria", {}).get("pass")
        suffix = "" if verdict is None else (" PASS" if verdict else " FAIL")
        return ", ".join(phrases) + suffix
    speedups = payload.get("speedup_vs_serial_nocache")
    if isinstance(speedups, dict) and speedups:
        best = max(speedups, key=lambda name: speedups[name])
        identical = payload.get("byte_identical_across_modes")
        suffix = ", byte-identical" if identical else ""
        return f"best {speedups[best]}x ({best}){suffix}"
    sweep = payload.get("sweep")
    if isinstance(sweep, dict) and sweep.get("knee"):
        knee = sweep["knee"]
        return (
            f"open-loop knee {knee.get('offered_rate_rps', '?')} req/s "
            f"offered ({knee.get('throughput_rps', '?')} achieved), "
            f"p99 {knee.get('p99_ms', '?')}ms "
            f"(budget {sweep.get('p99_budget_ms', '?')}ms)"
        )
    latency = payload.get("latency_ms")
    if isinstance(latency, dict) and "throughput_rps" in payload:
        return (
            f"{payload['throughput_rps']} req/s, "
            f"p50 {latency.get('p50_ms', '?')}ms / "
            f"p95 {latency.get('p95_ms', '?')}ms / "
            f"p99 {latency.get('p99_ms', '?')}ms"
        )
    return str(payload.get("benchmark", "unrecognized report"))


def _extract_rss(payload: dict) -> object | None:
    """Server peak RSS from a report: a number, or per-backend dict.

    Flat serve-bench reports carry a single ``rss_mb``; the storage
    ladder carries one per rung, returned as ``{backend: rss_mb}``.
    """
    flat = payload.get("rss_mb")
    if isinstance(flat, (int, float)):
        return flat
    rungs = payload.get("rungs")
    if isinstance(rungs, list):
        per_backend = {
            rung["backend"]: rung["rss_mb"]
            for rung in rungs
            if isinstance(rung, dict)
            and "backend" in rung
            and isinstance(rung.get("rss_mb"), (int, float))
        }
        if per_backend:
            return per_backend
    return None


def _render_rss(value: object) -> str:
    """One table cell for the ``rss_mb`` column."""
    if value is None:
        return "-"
    if isinstance(value, dict):
        return " ".join(f"{name}={rss}" for name, rss in value.items())
    return str(value)


def collect_bench_rows(root: str | Path) -> list[dict]:
    """Parse every ``BENCH_PR<n>.json`` under ``root``, ordered by PR.

    Unreadable or non-JSON files yield a row flagging the problem
    instead of raising — the table is a dashboard, not a gate.
    """
    rows: list[dict] = []
    for path in sorted(Path(root).glob("BENCH_PR*.json")):
        match = _NAME_PATTERN.match(path.name)
        if match is None:
            continue
        row = {"pr": int(match.group(1)), "file": path.name}
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            # Name the broken report loudly: a silently-degraded row
            # reads as "that PR had no benchmark" in the trajectory.
            print(
                f"warning: {path.name} failed to parse "
                f"({type(exc).__name__}: {exc}); shown as unreadable",
                file=sys.stderr,
            )
            row["benchmark"] = f"unreadable ({type(exc).__name__})"
            row["headline"] = "-"
        else:
            row["benchmark"] = str(payload.get("benchmark", "?"))
            row["headline"] = _headline(payload)
            rss = _extract_rss(payload)
            if rss is not None:
                row["rss_mb"] = rss
        rows.append(row)
    rows.sort(key=lambda row: row["pr"])
    return rows


def format_history(rows: list[dict]) -> str:
    """Render the trajectory as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no BENCH_PR*.json reports found)"
    header = ["PR", "benchmark", "rss_mb", "headline"]
    body = [
        [
            str(row["pr"]),
            row["benchmark"],
            _render_rss(row.get("rss_mb")),
            row["headline"],
        ]
        for row in rows
    ]
    widths = [
        max(len(header[col]), *(len(line[col]) for line in body))
        for col in range(len(header))
    ]

    def render_line(cells: list[str]) -> str:
        padded = (cell.ljust(width) for cell, width in zip(cells, widths))
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    return "\n".join(
        [render_line(header), separator, *(render_line(line) for line in body)]
    )


def update_performance_doc(path: str | Path, rows: list[dict]) -> str:
    """Rewrite the marked data section of ``docs/performance.md``.

    Replaces everything between :data:`BEGIN_MARKER` and
    :data:`END_MARKER` with the current table (appending the whole
    section when the markers are absent).  Returns the table text.
    """
    location = Path(path)
    table = format_history(rows)
    section = f"{BEGIN_MARKER}\n{table}\n{END_MARKER}"
    text = location.read_text(encoding="utf-8") if location.is_file() else ""
    if BEGIN_MARKER in text and END_MARKER in text:
        prefix, rest = text.split(BEGIN_MARKER, 1)
        __, suffix = rest.split(END_MARKER, 1)
        updated = prefix + section + suffix
    else:
        body = text.rstrip("\n")
        heading = "## Benchmark trajectory"
        updated = (
            (body + "\n\n" if body else "")
            + f"{heading}\n\n{section}\n"
        )
    atomic_write_text(location, updated)
    return table
