"""Structured performance reports for pipeline runs.

The executor measures each runner's wall-clock and each worker's cache
counters; :class:`PerfReport` merges them into one JSON-serializable
record — the shape ``BENCH_PR2.json`` and the CI smoke job consume.
Timing data lives *next to* the reproduction artifacts, never inside
them, so enabling the perf layer cannot perturb byte-identical outputs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.perf.cache import CacheStats

__all__ = ["PerfReport", "TaskTiming"]


@dataclasses.dataclass(frozen=True)
class TaskTiming:
    """Wall-clock of one experiment runner."""

    name: str
    seconds: float

    def as_dict(self) -> dict[str, float]:
        """JSON-ready rendering."""
        return {"name": self.name, "seconds": round(self.seconds, 6)}


@dataclasses.dataclass
class PerfReport:
    """One pipeline run's performance record.

    Attributes:
        workers: Worker processes used (1 = serial).
        cache_enabled: Whether an artifact cache was installed.
        cache_dir: Cache location (empty string when disabled).
        total_seconds: End-to-end wall-clock of the run.
        timings: Per-runner wall-clock, including prewarm tasks.
        cache: Cache counters merged across the driver and all workers.
    """

    workers: int
    cache_enabled: bool
    cache_dir: str = ""
    total_seconds: float = 0.0
    timings: list[TaskTiming] = dataclasses.field(default_factory=list)
    cache: CacheStats = dataclasses.field(default_factory=CacheStats)

    def add_timing(self, name: str, seconds: float) -> None:
        """Record one runner's duration."""
        self.timings.append(TaskTiming(name=name, seconds=seconds))

    def merge_cache_stats(self, stats: CacheStats) -> None:
        """Fold one worker's cache counters into the run totals."""
        self.cache.merge(stats)

    def as_dict(self) -> dict:
        """JSON-ready rendering (stable key order for diffable reports)."""
        return {
            "workers": self.workers,
            "cache_enabled": self.cache_enabled,
            "cache_dir": self.cache_dir,
            "total_seconds": round(self.total_seconds, 6),
            "cache": self.cache.as_dict(),
            "timings": [
                t.as_dict() for t in sorted(self.timings, key=lambda t: t.name)
            ],
        }

    def to_json(self) -> str:
        """Serialize as indented JSON."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        """Write the JSON report to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path
