"""Structured performance reports for pipeline runs.

The executor measures each runner's wall-clock and each worker's cache
counters; :class:`PerfReport` merges them into one JSON-serializable
record — the shape ``BENCH_PR2.json`` and the CI smoke job consume.
Since the resilience layer landed, the same record also carries the
run's *failure report*: structured entries for every task that
exhausted its retry budget, every task skipped because its inputs died,
and the run id a partial run can be resumed under.  Timing data lives
*next to* the reproduction artifacts, never inside them, so enabling
the perf layer cannot perturb byte-identical outputs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.io import atomic_write_text
from repro.perf.cache import CacheStats

__all__ = ["PerfReport", "TaskTiming"]


@dataclasses.dataclass(frozen=True)
class TaskTiming:
    """Wall-clock of one experiment runner."""

    name: str
    seconds: float

    def as_dict(self) -> dict[str, float]:
        """JSON-ready rendering."""
        return {"name": self.name, "seconds": round(self.seconds, 6)}


@dataclasses.dataclass
class PerfReport:
    """One pipeline run's performance record.

    Attributes:
        workers: Worker processes used (1 = serial).
        cache_enabled: Whether an artifact cache was installed.
        cache_dir: Cache location (empty string when disabled).
        total_seconds: End-to-end wall-clock of the run.
        timings: Per-runner wall-clock, including prewarm tasks.
        cache: Cache counters merged across the driver and all workers.
        run_id: The journal id this run checkpoints under ("" when
            journaling is off); the handle ``--resume`` takes.
        resumed: True when this run skipped tasks a journal recorded.
        pool_rebuilds: Worker pools rebuilt after crashes/timeouts.
        degraded: True when pooled execution fell back to in-process.
        failures: Structured records of terminally-failed tasks (the
            dict shape of :class:`repro.perf.executor.TaskFailure`).
        skipped: ``{"name": ..., "reason": ...}`` per skipped task.
    """

    workers: int
    cache_enabled: bool
    cache_dir: str = ""
    total_seconds: float = 0.0
    timings: list[TaskTiming] = dataclasses.field(default_factory=list)
    cache: CacheStats = dataclasses.field(default_factory=CacheStats)
    run_id: str = ""
    resumed: bool = False
    pool_rebuilds: int = 0
    degraded: bool = False
    failures: list[dict] = dataclasses.field(default_factory=list)
    skipped: list[dict] = dataclasses.field(default_factory=list)

    def add_timing(self, name: str, seconds: float) -> None:
        """Record one runner's duration."""
        self.timings.append(TaskTiming(name=name, seconds=seconds))

    def merge_cache_stats(self, stats: CacheStats) -> None:
        """Fold one worker's cache counters into the run totals."""
        self.cache.merge(stats)

    def add_failure(self, failure: dict) -> None:
        """Record one terminally-failed task (TaskFailure.as_dict shape)."""
        self.failures.append(failure)

    def add_skip(self, name: str, reason: str) -> None:
        """Record one task skipped because a dependency failed."""
        self.skipped.append({"name": name, "reason": reason})

    @property
    def ok(self) -> bool:
        """True when the run completed every task."""
        return not self.failures and not self.skipped

    def as_dict(self) -> dict:
        """JSON-ready rendering (stable key order for diffable reports)."""
        return {
            "workers": self.workers,
            "cache_enabled": self.cache_enabled,
            "cache_dir": self.cache_dir,
            "total_seconds": round(self.total_seconds, 6),
            "run_id": self.run_id,
            "resumed": self.resumed,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "cache": self.cache.as_dict(),
            "failures": sorted(self.failures, key=lambda f: f["name"]),
            "skipped": sorted(self.skipped, key=lambda s: s["name"]),
            "timings": [
                t.as_dict() for t in sorted(self.timings, key=lambda t: t.name)
            ],
        }

    def to_json(self) -> str:
        """Serialize as indented JSON."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write(self, path: str | Path) -> Path:
        """Atomically write the JSON report to ``path`` (parents created)."""
        return atomic_write_text(Path(path), self.to_json() + "\n")
