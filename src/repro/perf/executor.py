"""Process-parallel execution of experiment runners, fault-tolerantly.

Runners declare the shared artifacts they *require* (cache entries
such as generated incidences or traffic datasets) and the ones they
*provide*; :func:`stage_tasks` topologically groups them so producers
run before consumers, and :func:`execute_tasks` fans each stage out
over a ``ProcessPoolExecutor``.  Producers therefore generate every
shared artifact exactly once — in parallel — and consumers hit the
content-addressed cache instead of regenerating, which is what makes
``python -m repro all`` faster even cold.

On top of the scheduling sits the resilience contract
(``docs/robustness.md``):

- every task gets up to :attr:`RetryPolicy.max_attempts` tries with
  seeded exponential backoff between them, and an optional per-attempt
  timeout;
- a worker crash (``BrokenProcessPool``) or a timed-out attempt tears
  the pool down and rebuilds it; when the pool cannot be rebuilt (or
  keeps dying) the executor *degrades* to in-process serial execution
  rather than losing the run;
- a task that exhausts its attempts fails *alone*: only tasks whose
  required artifacts it would have provided are skipped, every
  independent DAG branch still completes, and the failures/skips are
  returned as structured records (:class:`TaskFailure`) instead of one
  opaque exception — unless the caller asked for fail-fast semantics
  (``raise_on_failure=True``, the library default), in which case the
  pool is shut down with ``cancel_futures=True`` and the original
  traceback is chained.

Determinism: tasks never communicate through in-memory state, only
through the cache (whose round-trips are exact) and their own derived
seeds, so serial, parallel, retried, and resumed schedules all produce
byte-identical artifacts.  Each task is timed in its worker; cache
counters are returned as per-task deltas and merged by the driver.
"""

from __future__ import annotations

import collections
import dataclasses
import logging
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.perf.cache import CacheStats, active_cache
from repro.resilience import RetryPolicy, active_plan

__all__ = [
    "ExecutionResult",
    "ExperimentTask",
    "TaskExecutionError",
    "TaskFailure",
    "TaskOutcome",
    "execute_tasks",
    "stage_tasks",
]

_log = logging.getLogger(__name__)


class TaskExecutionError(RuntimeError):
    """A task failed terminally under fail-fast (``raise_on_failure``)."""


@dataclasses.dataclass(frozen=True)
class ExperimentTask:
    """One schedulable unit of work.

    Attributes:
        name: Unique task name (also the timing label).
        fn: A *module-level* callable (workers import it by reference);
            invoked as ``fn(payload)``.
        payload: Picklable argument for ``fn``.
        requires: Labels of shared artifacts this task consumes.
        provides: Labels of shared artifacts this task produces.
    """

    name: str
    fn: Callable[[Any], Any]
    payload: Any = None
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """Result envelope returned from a worker."""

    name: str
    value: Any
    seconds: float
    cache_stats: CacheStats
    attempts: int = 1


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that exhausted its retry budget."""

    name: str
    attempts: int
    error_type: str
    message: str
    traceback: str

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering for failure reports."""
        return {
            "name": self.name,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclasses.dataclass(frozen=True)
class ExecutionResult:
    """All task outcomes plus the end-to-end wall-clock of the run.

    The executor owns every clock read so that layers above it (which
    the determinism linter bans from reading clocks) only ever see
    already-measured durations.

    Attributes:
        outcomes: Successful tasks, keyed by name.
        total_seconds: End-to-end wall-clock.
        failures: Tasks that exhausted their retry budget.
        skipped: Tasks never run because a task they (transitively)
            depend on failed; maps name → human-readable reason.
        pool_rebuilds: Worker pools torn down and rebuilt during the
            run (worker crashes and per-attempt timeouts).
        degraded: True when the pool could not be (re)built and the
            remainder of the run fell back to in-process execution.
    """

    outcomes: dict[str, TaskOutcome]
    total_seconds: float
    failures: dict[str, TaskFailure] = dataclasses.field(default_factory=dict)
    skipped: dict[str, str] = dataclasses.field(default_factory=dict)
    pool_rebuilds: int = 0
    degraded: bool = False

    @property
    def ok(self) -> bool:
        """True when every task completed."""
        return not self.failures and not self.skipped


def stage_tasks(
    tasks: Sequence[ExperimentTask],
) -> list[list[ExperimentTask]]:
    """Group tasks into topological stages by artifact dependencies.

    A task joins the earliest stage in which every artifact it requires
    has already been provided by an earlier stage.  Labels that no task
    provides are treated as externally satisfied (e.g. already-warm
    cache entries).  Raises ``ValueError`` on dependency cycles and on
    duplicate task names.
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate task names: {sorted(names)}")
    provided_by_someone = {label for t in tasks for label in t.provides}
    satisfied: set[str] = set()
    remaining = list(tasks)
    stages: list[list[ExperimentTask]] = []
    while remaining:
        ready = [
            t
            for t in remaining
            if all(
                label in satisfied or label not in provided_by_someone
                for label in t.requires
            )
        ]
        if not ready:
            cycle = ", ".join(t.name for t in remaining)
            raise ValueError(f"dependency cycle among tasks: {cycle}")
        stages.append(ready)
        satisfied.update(label for t in ready for label in t.provides)
        remaining = [t for t in remaining if t not in ready]
    return stages


def _stats_snapshot() -> tuple[int | None, CacheStats]:
    """Identity and counter snapshot of the process-active cache."""
    cache = active_cache()
    if cache is None:
        return None, CacheStats()
    return id(cache), dataclasses.replace(cache.stats)


def _run_one(task: ExperimentTask) -> TaskOutcome:
    """Execute one task, timing it and capturing its cache delta.

    Runs in a worker process (or inline when serial).  The cache delta
    is computed against the counters of whatever cache is active after
    the call: tasks that install their own cache start from zero, tasks
    reusing a process-global cache are charged only their own activity.
    """
    before_id, before = _stats_snapshot()
    start = time.perf_counter()
    value = task.fn(task.payload)
    seconds = time.perf_counter() - start
    cache = active_cache()
    delta = CacheStats()
    if cache is not None:
        base = before if id(cache) == before_id else CacheStats()
        delta = CacheStats(
            hits=cache.stats.hits - base.hits,
            misses=cache.stats.misses - base.misses,
            puts=cache.stats.puts - base.puts,
            evictions=cache.stats.evictions - base.evictions,
            quarantined=cache.stats.quarantined - base.quarantined,
        )
    return TaskOutcome(
        name=task.name, value=value, seconds=seconds, cache_stats=delta
    )


def _run_attempt(task: ExperimentTask, attempt: int, in_worker: bool) -> TaskOutcome:
    """One (possibly fault-injected) attempt at a task.

    The attempt number is threaded from the driver so the fault plan
    can count attempts without shared state — a plan directive with
    ``times=k`` fires on attempts 1..k in any process.
    """
    plan = active_plan()
    if plan is not None:
        plan.apply_task_faults(task.name, attempt, in_worker=in_worker)
    return _run_one(task)


class _StagedRunner:
    """Mutable state of one ``execute_tasks`` call.

    Owns the worker pool (including teardown/rebuild after crashes and
    timeouts), the per-task attempt ledger, and the failure/skip
    bookkeeping that implements partial-failure semantics.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        workers: int,
        pool_factory: Callable[..., Any],
        on_complete: Callable[[TaskOutcome], None] | None,
        raise_on_failure: bool,
    ) -> None:
        self.policy = policy
        self.workers = workers
        self.pool_factory = pool_factory
        self.on_complete = on_complete
        self.raise_on_failure = raise_on_failure
        self.outcomes: dict[str, TaskOutcome] = {}
        self.failures: dict[str, TaskFailure] = {}
        self.skipped: dict[str, str] = {}
        self.dead_labels: dict[str, str] = {}  # label -> root-cause task
        self.attempts: dict[str, int] = {}
        self.pool: Any = None
        self.pool_broken = False
        self.rebuilds = 0
        self.degraded = workers <= 1

    # -- driving ------------------------------------------------------------

    def run(self, stages: list[list[ExperimentTask]]) -> None:
        """Execute every stage, honouring retries and partial failure."""
        try:
            for stage in stages:
                runnable = self._admit(stage)
                if not runnable:
                    continue
                if self.degraded:
                    for task in runnable:
                        self._run_inline(task)
                else:
                    self._run_pooled_stage(runnable)
        finally:
            self._shutdown_pool()

    def _admit(self, stage: list[ExperimentTask]) -> list[ExperimentTask]:
        """Split a stage into runnable tasks and skips (dead inputs)."""
        runnable = []
        for task in stage:
            culprits = sorted(
                {
                    self.dead_labels[label]
                    for label in task.requires
                    if label in self.dead_labels
                }
            )
            if culprits:
                self.skipped[task.name] = (
                    "skipped: requires artifacts from failed task(s) "
                    + ", ".join(culprits)
                )
                for label in task.provides:
                    self.dead_labels.setdefault(label, culprits[0])
            else:
                runnable.append(task)
        return runnable

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> None:
        """(Re)build the worker pool; flip to degraded mode on failure."""
        if self.pool is not None and not self.pool_broken:
            return
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None
            self.rebuilds += 1
        if self.rebuilds > self.policy.max_pool_rebuilds:
            self.degraded = True
            return
        try:
            self.pool = self.pool_factory(max_workers=self.workers)
            self.pool_broken = False
        except Exception:
            # No pool to be had (fork limits, dead interpreter, ...):
            # finish the run in-process rather than losing it.
            _log.warning(
                "worker pool unavailable; degrading to in-process "
                "serial execution",
                exc_info=True,
            )
            self.pool = None
            self.degraded = True

    def _shutdown_pool(self) -> None:
        """Tear the pool down, cancelling anything still queued."""
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    # -- bookkeeping --------------------------------------------------------

    def _record_success(self, task: ExperimentTask, outcome: TaskOutcome) -> None:
        outcome = dataclasses.replace(
            outcome, attempts=self.attempts.get(task.name, 1)
        )
        self.outcomes[task.name] = outcome
        if self.on_complete is not None:
            self.on_complete(outcome)

    def _record_failure(self, task: ExperimentTask, exc: BaseException) -> None:
        attempts = self.attempts.get(task.name, 0)
        failure = TaskFailure(
            name=task.name,
            attempts=attempts,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(traceback_module.format_exception(exc)),
        )
        self.failures[task.name] = failure
        for label in task.provides:
            self.dead_labels.setdefault(label, task.name)
        if self.raise_on_failure:
            self._shutdown_pool()
            raise TaskExecutionError(
                f"experiment task {task.name!r} failed after "
                f"{attempts} attempt(s): {exc}"
            ) from exc

    def _retry_or_fail(
        self,
        task: ExperimentTask,
        exc: BaseException,
        queue: "collections.deque[ExperimentTask]",
    ) -> None:
        """After a failed attempt: back off and requeue, or fail for good."""
        attempt = self.attempts.get(task.name, 0)
        if attempt < self.policy.max_attempts:
            self.policy.sleep(self.policy.delay_for(task.name, attempt))
            queue.append(task)
        else:
            self._record_failure(task, exc)

    # -- inline (serial / degraded) execution -------------------------------

    def _run_inline(self, task: ExperimentTask) -> None:
        """Run one task to completion (or terminal failure) in-process."""
        while True:
            attempt = self.attempts.get(task.name, 0) + 1
            self.attempts[task.name] = attempt
            try:
                outcome = _run_attempt(task, attempt, in_worker=False)
            except Exception as exc:
                if attempt < self.policy.max_attempts:
                    self.policy.sleep(self.policy.delay_for(task.name, attempt))
                    continue
                self._record_failure(task, exc)
                return
            self._record_success(task, outcome)
            return

    # -- pooled execution ---------------------------------------------------

    def _run_pooled_stage(self, stage: list[ExperimentTask]) -> None:
        """Fan one stage out over the pool with retries and deadlines."""
        queue: collections.deque[ExperimentTask] = collections.deque(stage)
        pending: dict[str, tuple[ExperimentTask, Any, float | None]] = {}
        while queue or pending:
            if self.degraded:
                leftovers = [task for task, _, __ in pending.values()]
                leftovers += list(queue)
                pending.clear()
                queue.clear()
                for task in leftovers:
                    self._run_inline(task)
                return
            self._ensure_pool()
            if self.pool is None:
                continue  # degraded flipped; loop handles the migration
            while queue:
                task = queue.popleft()
                attempt = self.attempts.get(task.name, 0) + 1
                self.attempts[task.name] = attempt
                future = self.pool.submit(_run_attempt, task, attempt, True)
                deadline = (
                    None
                    if self.policy.timeout_seconds is None
                    else time.monotonic() + self.policy.timeout_seconds
                )
                pending[task.name] = (task, future, deadline)
            futures = [future for _, future, __ in pending.values()]
            deadlines = [d for _, __, d in pending.values() if d is not None]
            wait_timeout = None
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - time.monotonic())
            done, _ = wait(futures, timeout=wait_timeout, return_when=FIRST_COMPLETED)
            if done:
                self._consume_completed(pending, done, queue)
            else:
                self._expire_overdue(pending, queue)

    def _consume_completed(
        self,
        pending: dict[str, tuple[ExperimentTask, Any, float | None]],
        done: set,
        queue: "collections.deque[ExperimentTask]",
    ) -> None:
        """Fold finished futures into outcomes/retries/failures."""
        for name in [n for n, (_, future, __) in pending.items() if future in done]:
            task, future, _deadline = pending.pop(name)
            try:
                outcome = future.result()
            except BrokenProcessPool as exc:
                # A worker died; every sibling future is doomed too —
                # they surface here one by one.  Mark the pool for
                # rebuild and push the task back through retry logic.
                self.pool_broken = True
                self._retry_or_fail(task, exc, queue)
            except Exception as exc:
                self._retry_or_fail(task, exc, queue)
            else:
                self._record_success(task, outcome)

    def _expire_overdue(
        self,
        pending: dict[str, tuple[ExperimentTask, Any, float | None]],
        queue: "collections.deque[ExperimentTask]",
    ) -> None:
        """Handle a wait() that elapsed without any completion.

        Tasks past their deadline are charged a failed (timed-out)
        attempt.  The pool — which still has their workers occupied —
        is marked for rebuild, and the innocent in-flight tasks are
        resubmitted *without* losing an attempt.
        """
        now = time.monotonic()
        expired = [
            name
            for name, (_, __, deadline) in pending.items()
            if deadline is not None and deadline <= now
        ]
        if not expired:
            return  # spurious wakeup; keep waiting
        for name in expired:
            task, _future, __ = pending.pop(name)
            timeout_exc = TimeoutError(
                f"attempt exceeded the per-task timeout of "
                f"{self.policy.timeout_seconds}s"
            )
            self._retry_or_fail(task, timeout_exc, queue)
        self.pool_broken = True  # stuck workers: tear down and restart
        for name in list(pending):
            task, _future, __ = pending.pop(name)
            # Not their fault: refund the attempt charged at submit.
            self.attempts[task.name] -= 1
            queue.append(task)


def execute_tasks(
    tasks: Sequence[ExperimentTask],
    workers: int = 1,
    policy: RetryPolicy | None = None,
    raise_on_failure: bool = True,
    on_complete: Callable[[TaskOutcome], None] | None = None,
    pool_factory: Callable[..., Any] | None = None,
) -> ExecutionResult:
    """Run all tasks, stage by stage; returns outcomes plus wall-clock.

    Args:
        tasks: The task graph (see :func:`stage_tasks`).
        workers: ``<= 1`` runs everything inline (no subprocesses at
            all — the mode tests and debuggers want); otherwise each
            stage fans out over one shared ``ProcessPoolExecutor``.
        policy: Retry/timeout policy; default is the pre-resilience
            contract (one attempt, no timeout).
        raise_on_failure: With True (default), the first terminal task
            failure shuts the pool down (``cancel_futures=True``) and
            raises :class:`TaskExecutionError` chained to the original
            exception.  With False, the run continues: independent
            branches complete and failures/skips come back in the
            :class:`ExecutionResult`.
        on_complete: Optional callback invoked in the driver process
            after each successful task (checkpoint journaling).
        pool_factory: Worker-pool constructor (tests inject failing
            factories to exercise degraded mode); defaults to
            ``ProcessPoolExecutor``.
    """
    stages = stage_tasks(tasks)
    runner = _StagedRunner(
        policy=policy or RetryPolicy.single_shot(),
        workers=workers,
        pool_factory=pool_factory or ProcessPoolExecutor,
        on_complete=on_complete,
        raise_on_failure=raise_on_failure,
    )
    start = time.perf_counter()
    runner.run(stages)
    return ExecutionResult(
        outcomes=runner.outcomes,
        total_seconds=time.perf_counter() - start,
        failures=runner.failures,
        skipped=runner.skipped,
        pool_rebuilds=runner.rebuilds,
        degraded=runner.degraded and workers > 1,
    )
