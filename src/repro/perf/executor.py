"""Process-parallel execution of experiment runners.

Runners declare the shared artifacts they *require* (cache entries
such as generated incidences or traffic datasets) and the ones they
*provide*; :func:`stage_tasks` topologically groups them so producers
run before consumers, and :func:`execute_tasks` fans each stage out
over a ``ProcessPoolExecutor``.  Producers therefore generate every
shared artifact exactly once — in parallel — and consumers hit the
content-addressed cache instead of regenerating, which is what makes
``python -m repro all`` faster even cold.

Determinism: tasks never communicate through in-memory state, only
through the cache (whose round-trips are exact) and their own derived
seeds, so serial and parallel schedules produce byte-identical
artifacts.  Each task is timed in its worker; cache counters are
returned as per-task deltas and merged by the driver.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.perf.cache import CacheStats, active_cache

__all__ = [
    "ExecutionResult",
    "ExperimentTask",
    "TaskOutcome",
    "execute_tasks",
    "stage_tasks",
]


@dataclasses.dataclass(frozen=True)
class ExperimentTask:
    """One schedulable unit of work.

    Attributes:
        name: Unique task name (also the timing label).
        fn: A *module-level* callable (workers import it by reference);
            invoked as ``fn(payload)``.
        payload: Picklable argument for ``fn``.
        requires: Labels of shared artifacts this task consumes.
        provides: Labels of shared artifacts this task produces.
    """

    name: str
    fn: Callable[[Any], Any]
    payload: Any = None
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """Result envelope returned from a worker."""

    name: str
    value: Any
    seconds: float
    cache_stats: CacheStats


@dataclasses.dataclass(frozen=True)
class ExecutionResult:
    """All task outcomes plus the end-to-end wall-clock of the run.

    The executor owns every clock read so that layers above it (which
    the determinism linter bans from reading clocks) only ever see
    already-measured durations.
    """

    outcomes: dict[str, TaskOutcome]
    total_seconds: float


def stage_tasks(
    tasks: Sequence[ExperimentTask],
) -> list[list[ExperimentTask]]:
    """Group tasks into topological stages by artifact dependencies.

    A task joins the earliest stage in which every artifact it requires
    has already been provided by an earlier stage.  Labels that no task
    provides are treated as externally satisfied (e.g. already-warm
    cache entries).  Raises ``ValueError`` on dependency cycles and on
    duplicate task names.
    """
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate task names: {sorted(names)}")
    provided_by_someone = {label for t in tasks for label in t.provides}
    satisfied: set[str] = set()
    remaining = list(tasks)
    stages: list[list[ExperimentTask]] = []
    while remaining:
        ready = [
            t
            for t in remaining
            if all(
                label in satisfied or label not in provided_by_someone
                for label in t.requires
            )
        ]
        if not ready:
            cycle = ", ".join(t.name for t in remaining)
            raise ValueError(f"dependency cycle among tasks: {cycle}")
        stages.append(ready)
        satisfied.update(label for t in ready for label in t.provides)
        remaining = [t for t in remaining if t not in ready]
    return stages


def _stats_snapshot() -> tuple[int | None, CacheStats]:
    """Identity and counter snapshot of the process-active cache."""
    cache = active_cache()
    if cache is None:
        return None, CacheStats()
    return id(cache), dataclasses.replace(cache.stats)


def _run_one(task: ExperimentTask) -> TaskOutcome:
    """Execute one task, timing it and capturing its cache delta.

    Runs in a worker process (or inline when serial).  The cache delta
    is computed against the counters of whatever cache is active after
    the call: tasks that install their own cache start from zero, tasks
    reusing a process-global cache are charged only their own activity.
    """
    before_id, before = _stats_snapshot()
    start = time.perf_counter()
    value = task.fn(task.payload)
    seconds = time.perf_counter() - start
    cache = active_cache()
    delta = CacheStats()
    if cache is not None:
        base = before if id(cache) == before_id else CacheStats()
        delta = CacheStats(
            hits=cache.stats.hits - base.hits,
            misses=cache.stats.misses - base.misses,
            puts=cache.stats.puts - base.puts,
            evictions=cache.stats.evictions - base.evictions,
        )
    return TaskOutcome(
        name=task.name, value=value, seconds=seconds, cache_stats=delta
    )


def execute_tasks(
    tasks: Sequence[ExperimentTask],
    workers: int = 1,
) -> ExecutionResult:
    """Run all tasks, stage by stage; returns outcomes plus wall-clock.

    ``workers <= 1`` runs everything inline (no subprocesses at all —
    the mode tests and debuggers want).  Otherwise each stage fans out
    over one shared ``ProcessPoolExecutor``; a task exception cancels
    the run and re-raises with the task's name attached.
    """
    stages = stage_tasks(tasks)
    outcomes: dict[str, TaskOutcome] = {}
    start = time.perf_counter()
    if workers <= 1:
        for stage in stages:
            for task in stage:
                outcomes[task.name] = _run_one(task)
        return ExecutionResult(
            outcomes=outcomes, total_seconds=time.perf_counter() - start
        )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for stage in stages:
            futures = [(task, pool.submit(_run_one, task)) for task in stage]
            for task, future in futures:
                try:
                    outcome = future.result()
                except Exception as exc:
                    raise RuntimeError(
                        f"experiment task {task.name!r} failed: {exc}"
                    ) from exc
                outcomes[task.name] = outcome
    return ExecutionResult(
        outcomes=outcomes, total_seconds=time.perf_counter() - start
    )
