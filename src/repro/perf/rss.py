"""Resident-memory accounting for benchmark reports.

The storage-tier benchmarks (``repro serve-bench``, the PR9 backend
ladder) compare tiers by *peak* resident set size: the mmap and SQLite
backends exist to keep RSS bounded while the ram tier pays memory for
latency.  Linux keeps exactly the number we want — ``VmHWM`` in
``/proc/<pid>/status``, the high-water mark of the resident set over
the process lifetime — so a single read after the load run captures
the worst moment without sampling.

Fallback order: ``/proc`` (any pid), then ``resource.getrusage`` for
the calling process only (``ru_maxrss`` is kilobytes on Linux, bytes
on macOS).  Remote pids without a readable ``/proc`` entry report
``None`` rather than a guess.
"""

from __future__ import annotations

import resource
import sys
from pathlib import Path
from typing import Iterable

__all__ = ["peak_rss_mb", "rss_high_water_mb"]

_KB_PER_MB = 1024.0


def rss_high_water_mb(pid: int | None = None) -> float | None:
    """Peak RSS of ``pid`` (default: this process) in MB, or None.

    Reads ``VmHWM`` from ``/proc/<pid>/status`` where available; for
    the calling process falls back to ``getrusage`` elsewhere.  The
    value is rounded to 2 decimals — report material, not arithmetic.
    """
    target = "self" if pid is None else str(int(pid))
    try:
        text = Path(f"/proc/{target}/status").read_text()
    except OSError:
        return _fallback_rss_mb(pid)
    for line in text.splitlines():
        if line.startswith("VmHWM:"):
            kb = float(line.split()[1])
            return round(kb / _KB_PER_MB, 2)
    return _fallback_rss_mb(pid)


def _fallback_rss_mb(pid: int | None) -> float | None:
    """``getrusage`` peak RSS without ``/proc`` (self only)."""
    if pid is not None:
        # getrusage cannot observe an arbitrary other process.
        return None
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = _KB_PER_MB * 1024.0 if sys.platform == "darwin" else _KB_PER_MB
    return round(ru_maxrss / divisor, 2)


def peak_rss_mb(pids: Iterable[int | None]) -> float | None:
    """Highest per-process peak RSS in MB over ``pids``; None if unknown.

    The sharded server's memory story is per-worker (each worker maps
    the same blobs / opens its own SQLite connection), so the ladder
    reports the *max* over workers, not the sum — the sum would charge
    shared mmap pages once per worker.
    """
    values = [rss_high_water_mb(pid) for pid in pids]
    known = [value for value in values if value is not None]
    return max(known) if known else None
