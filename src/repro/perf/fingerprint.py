"""Deterministic content fingerprints for cacheable artifacts.

A cache key must change exactly when the artifact it names would: the
fingerprint therefore hashes a *canonical* JSON rendering of everything
that determines the artifact's bytes — the generator parameters
(dataclass fields), the scale preset, the derived per-experiment seed,
and the artifact kind — never object identities, ``repr`` strings, or
salted ``hash()`` values (Python string hashing differs across
processes, which would silently split the cache between workers).

The scheme is versioned: bump ``SCHEMA_VERSION`` whenever the meaning
of an artifact kind changes (e.g. a generator tweak that keeps its
parameters but changes its output), which orphans all old entries
rather than serving stale bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

import numpy as np

__all__ = ["SCHEMA_VERSION", "canonical_payload", "fingerprint"]

#: Bump to invalidate every existing cache entry (format/semantics change).
SCHEMA_VERSION = 1


def canonical_payload(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-serializable primitives.

    Dataclasses become sorted field dicts, mappings get sorted string
    keys, sequences become lists, and numpy scalars/arrays collapse to
    Python numbers/nested lists.  Raises ``TypeError`` for values with
    no canonical form (functions, open files, ...) so accidental
    under-specification fails loudly instead of fingerprinting object
    identity.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical_payload(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, Mapping):
        return {str(k): canonical_payload(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical_payload(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} into a cache key; "
        "pass primitives, dataclasses, mappings, sequences, or arrays"
    )


def fingerprint(kind: str, **components: Any) -> str:
    """SHA-256 hex digest naming one artifact.

    Args:
        kind: Artifact kind tag (``incidence``, ``traffic``,
            ``table2``, ``robustness``, ...); part of the key so two
            artifact types derived from the same inputs never collide.
        **components: Everything that determines the artifact's bytes.

    Returns:
        64-char lowercase hex digest, stable across processes and runs.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "components": canonical_payload(components),
    }
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(blob.encode("ascii")).hexdigest()
