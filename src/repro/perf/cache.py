"""Content-addressed, on-disk artifact cache with integrity checking.

Every expensive intermediate of the experiment pipeline — generated
incidences, simulated traffic demand vectors, Table 2 graph metrics,
robustness curves — is a pure function of (generator parameters, scale,
seed, artifact kind).  :class:`ArtifactCache` maps the fingerprint of
those inputs (:mod:`repro.perf.fingerprint`) to an on-disk blob:

- incidences via the existing :mod:`repro.io` ``.npz`` round-trip
  (exact, so a cache hit is byte-for-byte the regenerated artifact);
- raw array bundles via ``numpy`` ``.npz``;
- row-oriented records (e.g. Table 2 metrics) as JSON lines.

The cache is safe for concurrent writers: blobs are published through
:func:`repro.io.atomic_publish` (process-unique temp file + atomic
``os.replace``), so parallel workers racing on the same key simply
last-write-win with identical bytes.  A byte budget turns it into an
LRU: reads refresh the entry mtime and :meth:`ArtifactCache.put`
evicts oldest-read entries once the budget is exceeded.

**Integrity**: every publish also records the blob's sha256 in a
``.sha256`` sidecar, and every read verifies it before decoding.  An
entry that fails verification — or that decodes to garbage — is never
treated as a silent miss: it is *quarantined* (moved, with its sidecar,
into a ``quarantine/`` subdirectory for post-mortem), counted in
:attr:`CacheStats.quarantined`, logged, and then reported as a miss so
the caller regenerates.  ``tests/test_resilience_chaos.py`` drives this
path with deliberate blob corruption.

The default location honours the ``REPRO_CACHE_DIR`` environment
variable (escape hatch: point it at a tmpfs, a shared volume, or a
throwaway dir) and falls back to ``~/.cache/repro-artifacts``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.core.incidence import BipartiteIncidence
from repro.io import atomic_publish, atomic_write_text, load_incidence, save_incidence
from repro.resilience import active_plan

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "ENV_CACHE_DIR",
    "QUARANTINE_DIR",
    "active_cache",
    "configure_cache",
    "resolve_cache_dir",
]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Subdirectory (under the cache root) holding quarantined blobs.
QUARANTINE_DIR = "quarantine"

_DIGEST_SUFFIX = ".sha256"

_log = logging.getLogger(__name__)


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance (merged across workers later)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another instance's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions
        self.quarantined += other.quarantined

    def as_dict(self) -> dict[str, float]:
        """JSON-ready rendering, including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "hit_rate": round(self.hit_rate, 4),
        }


def resolve_cache_dir(explicit: str | Path | None = None) -> Path:
    """The cache directory: explicit arg > ``REPRO_CACHE_DIR`` > default."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-artifacts"


def _sha256_file(path: Path) -> str:
    """Hex sha256 of a file's bytes, streamed in 1 MiB chunks.

    Store blobs (CSR arrays, the SQLite image) run to hundreds of MB;
    a whole-file ``read_bytes()`` here would spike every opener's RSS
    by the largest blob's size and defeat the out-of-core tiers.
    """
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactCache:
    """Fingerprint-keyed blob store with LRU eviction and statistics.

    Args:
        directory: Root directory; created lazily on first put.
        max_bytes: Optional byte budget.  ``put`` evicts the
            least-recently-read entries once the total exceeds it; the
            entry just written is never evicted by its own put.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.directory = resolve_cache_dir(directory)
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # -- key/path plumbing --------------------------------------------------

    def _path(self, key: str, suffix: str) -> Path:
        """Blob path for a fingerprint (sharded on the first hex byte)."""
        return self.directory / key[:2] / f"{key}{suffix}"

    @staticmethod
    def _sidecar(path: Path) -> Path:
        """The ``.sha256`` digest sidecar for a blob path."""
        return path.with_name(path.name + _DIGEST_SUFFIX)

    @property
    def quarantine_dir(self) -> Path:
        """Directory quarantined (corrupt) blobs are moved into."""
        return self.directory / QUARANTINE_DIR

    def _publish(self, path: Path, write) -> None:
        """Atomically write a blob, record its digest, enforce budget.

        The digest is computed over the temp file *before* publication,
        so the sidecar always describes the bytes that were actually
        written; anything that mangles the blob afterwards (bit rot,
        torn writes from outside, an injected corruption fault) is
        caught by the read-side verification.
        """
        digest = ""
        plan = active_plan()
        if plan is not None:
            # op=stall wedges the publish (path name is "<key><suffix>",
            # so stem recovers the key); the attempt timeout must trip.
            plan.stall_cache_io(path.stem, path)

        def _write(tmp: Path) -> None:
            nonlocal digest
            write(tmp)
            digest = _sha256_file(tmp)

        atomic_publish(path, _write)
        atomic_write_text(self._sidecar(path), digest + "\n")
        self.stats.puts += 1
        if plan is not None:
            # path name is "<key><suffix>", so stem recovers the key.
            plan.corrupt_blob(path.stem, path)
        self._enforce_budget(keep=path)

    def _verified(self, path: Path) -> bool:
        """True when the blob's bytes match its recorded digest."""
        sidecar = self._sidecar(path)
        if not sidecar.is_file():
            return False  # integrity unknowable: treat as corrupt
        expected = sidecar.read_text(encoding="utf-8").strip()
        return expected == _sha256_file(path)

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt blob (and sidecar) aside; never delete evidence.

        Quarantined entries keep their blob name, so re-quarantining the
        same key overwrites the previous specimen instead of piling up.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        _log.warning(
            "quarantining corrupt cache entry %s (%s)", path.name, reason
        )
        try:
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)  # racing reader got there first
        sidecar = self._sidecar(path)
        try:
            os.replace(sidecar, self.quarantine_dir / sidecar.name)
        except OSError:
            sidecar.unlink(missing_ok=True)

    def _read_hit(self, path: Path) -> bool:
        """Account one lookup: verify digest, refresh mtime on hit (LRU)."""
        plan = active_plan()
        if plan is not None:
            # op=stall wedges the read before the blob is touched.
            plan.stall_cache_io(path.stem, path)
        if not path.is_file():
            self.stats.misses += 1
            return False
        if not self._verified(path):
            self._quarantine(path, "content digest mismatch")
            self.stats.quarantined += 1
            self.stats.misses += 1
            return False
        os.utime(path)
        self.stats.hits += 1
        return True

    def _decode_failed(self, path: Path) -> None:
        """A digest-valid blob still failed to decode: quarantine it.

        Converts the already-counted hit into a quarantined miss, so
        callers regenerate and the corruption is visible in stats —
        never a silent miss.
        """
        self._quarantine(path, "undecodable blob")
        self.stats.quarantined += 1
        self.stats.hits -= 1
        self.stats.misses += 1

    # -- incidence blobs ----------------------------------------------------

    def get_incidence(self, key: str) -> BipartiteIncidence | None:
        """Load a cached incidence, or None on miss."""
        path = self._path(key, ".npz")
        if not self._read_hit(path):
            return None
        try:
            return load_incidence(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # BadZipFile: a truncated ``.npz`` (torn mid-write) subclasses
            # Exception directly, not OSError/ValueError.
            self._decode_failed(path)
            return None

    def put_incidence(self, key: str, incidence: BipartiteIncidence) -> None:
        """Store an incidence via the :mod:`repro.io` round-trip."""
        path = self._path(key, ".npz")
        self._publish(
            path, lambda tmp: save_incidence(incidence, tmp, compressed=False)
        )

    # -- raw array bundles --------------------------------------------------

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """Load a cached array bundle, or None on miss."""
        path = self._path(key, ".npz")
        if not self._read_hit(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                return {name: data[name] for name in data.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            self._decode_failed(path)
            return None

    def put_arrays(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Store named arrays as an (uncompressed, exact) ``.npz``."""
        path = self._path(key, ".npz")
        self._publish(path, lambda tmp: np.savez(tmp, **arrays))

    # -- JSON-lines records -------------------------------------------------

    def get_records(self, key: str) -> list[dict] | None:
        """Load cached JSON-lines records, or None on miss."""
        path = self._path(key, ".jsonl")
        if not self._read_hit(path):
            return None
        try:
            with path.open(encoding="utf-8") as handle:
                return [json.loads(line) for line in handle if line.strip()]
        except (OSError, ValueError):
            self._decode_failed(path)
            return None

    def put_records(self, key: str, records: list[dict]) -> None:
        """Store a list of JSON-serializable rows, one per line."""
        path = self._path(key, ".jsonl")
        text = "".join(json.dumps(row, sort_keys=True) + "\n" for row in records)
        self._publish(path, lambda tmp: tmp.write_text(text, encoding="utf-8"))

    # -- raw file blobs -----------------------------------------------------
    #
    # Opaque single-file artifacts the caller opens *in place* (a
    # compiled SQLite store, an individual ``.npy`` destined for
    # ``mmap_mode="r"``).  Unlike the decoding kinds above, a hit hands
    # back the verified blob *path*: out-of-core backends must read the
    # published file itself, not a deserialized copy.

    def get_file(self, key: str, suffix: str) -> Path | None:
        """Verified path of a cached raw blob, or None on miss."""
        path = self._path(key, suffix)
        if not self._read_hit(path):
            return None
        return path

    def put_file(self, key: str, suffix: str, write) -> Path:
        """Publish a raw blob via a ``write(tmp_path)`` callback.

        The callback must create ``tmp_path`` (same directory and
        suffix as the final blob, so suffix-sensitive writers like
        ``np.save`` behave).  Returns the published path.
        """
        path = self._path(key, suffix)
        self._publish(path, write)
        return path

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        """All blob paths currently in the cache (sorted for determinism).

        Digest sidecars and quarantined blobs are bookkeeping, not
        entries: they are excluded here and from the byte budget.
        """
        if not self.directory.is_dir():
            return []
        return sorted(
            p
            for p in self.directory.glob("*/*")
            if p.is_file()
            and ".tmp" not in p.name
            and not p.name.endswith(_DIGEST_SUFFIX)
            and p.parent.name != QUARANTINE_DIR
        )

    def quarantined_entries(self) -> list[Path]:
        """Quarantined blob paths (sorted; excludes digest sidecars)."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(
            p
            for p in self.quarantine_dir.iterdir()
            if p.is_file() and not p.name.endswith(_DIGEST_SUFFIX)
        )

    def total_bytes(self) -> int:
        """Total size of all cached blobs."""
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry (and its sidecar); returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            self._sidecar(path).unlink(missing_ok=True)
            removed += 1
        return removed

    def _enforce_budget(self, keep: Path | None = None) -> None:
        """Evict least-recently-read entries beyond ``max_bytes``."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self.entries():
            stat = path.stat()
            entries.append((stat.st_mtime_ns, path.name, path, stat.st_size))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        # Oldest read first; name as a deterministic tie-break.
        for __, __, path, size in sorted(entries):
            if keep is not None and path == keep:
                continue
            path.unlink(missing_ok=True)
            self._sidecar(path).unlink(missing_ok=True)
            self.stats.evictions += 1
            total -= size
            if total <= self.max_bytes:
                return


# -- process-wide active cache ------------------------------------------------
#
# The experiment runners consult a single process-global cache handle so
# that caching composes with code that never heard of it (extensions,
# benchmarks, user scripts).  ``None`` means caching is off — the
# ``--no-cache`` escape hatch simply never installs a cache.

_ACTIVE: ArtifactCache | None = None


def configure_cache(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install (or, with ``None``, remove) the process-wide cache.

    Returns the previous handle so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous


def active_cache() -> ArtifactCache | None:
    """The currently installed cache, or None when caching is off."""
    return _ACTIVE
