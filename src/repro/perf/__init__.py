"""Performance layer: artifact caching, parallel execution, timing.

Three cooperating pieces (see ``docs/performance.md``):

- :mod:`repro.perf.fingerprint` — deterministic content fingerprints
  over (generator parameters, scale, seed, artifact kind);
- :mod:`repro.perf.cache` — a content-addressed on-disk cache with
  hit/miss/put statistics and an LRU byte budget;
- :mod:`repro.perf.executor` — topologically staged, process-parallel
  execution of experiment runners;
- :mod:`repro.perf.report` — the structured perf report the staged
  runs emit;
- :mod:`repro.perf.history` — the cross-PR benchmark trajectory table
  (``repro bench --history``) aggregated from ``BENCH_PR*.json``;
- :mod:`repro.perf.rss` — peak resident-set accounting (``VmHWM``) for
  the serve/storage benchmark reports.

The layer is strictly optional: with no cache installed and one worker,
the pipeline behaves exactly as before, and outputs are byte-identical
across (serial, parallel) × (cold, warm) for a fixed seed.
"""

from repro.perf.cache import (
    ArtifactCache,
    CacheStats,
    active_cache,
    configure_cache,
    resolve_cache_dir,
)
from repro.perf.executor import (
    ExecutionResult,
    ExperimentTask,
    TaskExecutionError,
    TaskFailure,
    TaskOutcome,
    execute_tasks,
    stage_tasks,
)
from repro.perf.fingerprint import canonical_payload, fingerprint
from repro.perf.history import (
    collect_bench_rows,
    format_history,
    update_performance_doc,
)
from repro.perf.report import PerfReport, TaskTiming
from repro.perf.rss import peak_rss_mb, rss_high_water_mb

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "ExecutionResult",
    "ExperimentTask",
    "PerfReport",
    "TaskExecutionError",
    "TaskFailure",
    "TaskOutcome",
    "TaskTiming",
    "active_cache",
    "canonical_payload",
    "collect_bench_rows",
    "configure_cache",
    "execute_tasks",
    "fingerprint",
    "format_history",
    "peak_rss_mb",
    "resolve_cache_dir",
    "rss_high_water_mb",
    "stage_tasks",
    "update_performance_doc",
]
