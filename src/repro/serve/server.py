"""The HTTP query service: routing, deadlines, caching, fault hooks.

Two layers, split for testability:

- :class:`ServeApp` — the pure request handler.  ``handle(path)`` maps
  a request path (with query string) to ``(status, body_bytes)``.  All
  heavy queries run on a worker pool so the caller can enforce the
  per-request deadline (``RetryPolicy.timeout_seconds`` semantics from
  :mod:`repro.resilience`) with ``future.result(timeout=...)``; a
  deadline miss returns 504 without wedging the accept loop.  Tests
  drive this object directly, no sockets needed.
- :class:`_RequestHandler`/:func:`make_server` — the thin
  ``ThreadingHTTPServer`` shell around it.  The sharded multi-process
  shell lives in :mod:`repro.serve.sharding` and drives the same app
  through :mod:`repro.serve.fasthttp`.

Determinism contract: handlers are pure functions of the immutable
:class:`~repro.serve.indices.ServeIndex`, and bodies are rendered with
sorted keys, so a response is byte-identical whether it came from the
LRU cache, the micro-batcher's shared future, or a cold computation.

Hot reload: everything derived from one index generation — the index
itself, the response cache, the in-flight batcher, and the path-key
memo — is bundled into an :class:`_Epoch`.  A request captures the
epoch reference once and never touches ``self`` state that could swap
under it, so :meth:`ServeApp.swap_index` is a single atomic reference
assignment: in-flight requests finish against the epoch they started
with, new requests see the new one, and a torn read (old pair data
with new demand tables, say) is impossible by construction.

Fault injection: each query endpoint calls
``active_plan().apply_task_faults("serve:<endpoint>", ...)`` inside the
pooled work, so an ``op=hang,task=serve:*`` directive wedges the
handler — and must trip the deadline — while ``op=error`` surfaces as a
500.  This puts the serving path under the same chaos suite as the
batch pipeline.
"""

from __future__ import annotations

import base64
import binascii
import json
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.perf import fingerprint
from repro.resilience import InjectedTaskError, RetryPolicy, active_plan
from repro.serve.batcher import MicroBatcher
from repro.serve.indices import PairIndex, ServeIndex
from repro.serve.metrics import ServeMetrics
from repro.serve.rcache import ResponseCache

__all__ = [
    "RunRouter",
    "ServeApp",
    "ServeSettings",
    "WORKER_HEADER",
    "make_server",
]

_JSON = "application/json"

#: Response header naming the worker process that answered a request —
#: the load generator aggregates it into per-worker attribution.
WORKER_HEADER = "X-Repro-Worker"

#: Query endpoints eligible for response caching and batching.
_CACHEABLE = frozenset({"entity", "site", "coverage", "demand", "setcover"})


@dataclass(frozen=True)
class ServeSettings:
    """Operational knobs for the query service.

    Attributes:
        host: Bind address for the HTTP shell.
        port: Bind port (0 = ephemeral, useful in tests/CI).
        deadline_seconds: Per-request wall-clock budget, enforced with
            ``RetryPolicy`` semantics (one attempt, hard timeout).
        query_threads: Worker threads executing query bodies.
        response_cache_entries: LRU response-cache capacity; 0 disables
            the cache entirely (for byte-identity comparisons).
        max_setcover_budget: Upper bound on ``/v1/setcover?budget=``.
        max_site_entities: Truncation limit for unpaginated ``/v1/site``
            listings, and the cap on ``?limit=`` page sizes.
    """

    host: str = "127.0.0.1"
    port: int = 8123
    deadline_seconds: float = 5.0
    query_threads: int = 8
    response_cache_entries: int = 1024
    max_setcover_budget: int = 500
    max_site_entities: int = 500

    def __post_init__(self) -> None:
        if self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.query_threads < 1:
            raise ValueError("query_threads must be >= 1")
        if self.response_cache_entries < 0:
            raise ValueError("response_cache_entries must be >= 0")
        if self.max_setcover_budget < 1 or self.max_site_entities < 1:
            raise ValueError("limits must be >= 1")


class _HTTPError(Exception):
    """Internal control flow: an error response with a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _render(payload: dict[str, object]) -> bytes:
    """Canonical JSON bytes: sorted keys, compact, trailing newline."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _encode_cursor(domain: str, attribute: str, offset: int) -> str:
    """Opaque pagination cursor over the stable CSR listing order."""
    token = json.dumps(
        {"a": attribute, "d": domain, "o": int(offset)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return base64.urlsafe_b64encode(token).decode("ascii")


def _decode_cursor(cursor: str) -> tuple[str, str, int]:
    """Decode a cursor; raises :class:`_HTTPError` 400 when malformed."""
    try:
        payload = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
        domain, attribute = str(payload["d"]), str(payload["a"])
        offset = int(payload["o"])
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise _HTTPError(400, f"malformed cursor: {type(exc).__name__}") from exc
    if offset < 0:
        raise _HTTPError(400, "malformed cursor: negative offset")
    return domain, attribute, offset


class _Epoch:
    """One index generation and every cache derived from it.

    Requests capture the epoch once; hot reload replaces the whole
    bundle in one reference assignment.  The path-key memo maps raw
    request targets to their (endpoint, fingerprint) so the hot path
    skips URL parsing and sha256 hashing entirely on repeat targets —
    it is bounded and simply cleared when full (memo entries are pure
    derivations, so losing them only costs a recompute).
    """

    __slots__ = ("index", "rcache", "batcher", "path_keys", "path_keys_cap")

    def __init__(self, index: ServeIndex, settings: ServeSettings) -> None:
        """Build the caches one index generation owns."""
        self.index = index
        self.rcache: ResponseCache | None = (
            ResponseCache(settings.response_cache_entries)
            if settings.response_cache_entries
            else None
        )
        self.batcher = MicroBatcher()
        self.path_keys: dict[str, tuple[str, str]] = {}
        self.path_keys_cap = max(4096, 4 * settings.response_cache_entries)


class ServeApp:
    """Socket-free request handler over an immutable :class:`ServeIndex`."""

    def __init__(
        self,
        index: ServeIndex,
        settings: ServeSettings | None = None,
        worker_id: int = 0,
    ) -> None:
        """Wire the index to a worker pool, caches, and metrics."""
        self.settings = settings or ServeSettings()
        self.worker_id = int(worker_id)
        self.policy = RetryPolicy(
            max_attempts=1, timeout_seconds=self.settings.deadline_seconds
        )
        self.metrics = ServeMetrics()
        self.metrics.set_index_build_seconds(index.build_seconds)
        self._epoch = _Epoch(index, self.settings)
        self._executor = ThreadPoolExecutor(
            max_workers=self.settings.query_threads,
            thread_name_prefix="serve-query",
        )

    # Back-compat accessors: tests and callers address the *current*
    # epoch's structures through the app.
    @property
    def index(self) -> ServeIndex:
        """The current index generation."""
        return self._epoch.index

    @property
    def rcache(self) -> ResponseCache | None:
        """The current epoch's response cache (None when disabled)."""
        return self._epoch.rcache

    @property
    def batcher(self) -> MicroBatcher:
        """The current epoch's micro-batcher."""
        return self._epoch.batcher

    def swap_index(self, index: ServeIndex) -> None:
        """Atomically point new requests at ``index``.

        In-flight requests keep the epoch they captured — no lock, no
        drain, no torn reads.  The response cache and batcher are
        rebuilt with the epoch because their keys embed the old index
        identity and would never hit again anyway.
        """
        self.metrics.set_index_build_seconds(index.build_seconds)
        self._epoch = _Epoch(index, self.settings)
        self.metrics.count_index_swap()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- routing --------------------------------------------------------------

    def handle(self, target: str) -> tuple[int, bytes]:
        """Serve one GET request path; never raises."""
        started = time.perf_counter()
        epoch = self._epoch
        # Hot path: a repeat target skips urlsplit + param normalization
        # + fingerprint hashing and goes straight to the response cache.
        memo = epoch.path_keys.get(target)
        if memo is not None and epoch.rcache is not None:
            endpoint, key = memo
            cached = epoch.rcache.get(key)
            if cached is not None:
                self.metrics.observe(
                    endpoint, cached[0], time.perf_counter() - started
                )
                return cached
        endpoint = "unknown"
        try:
            parts = urlsplit(target)
            segments = [s for s in parts.path.split("/") if s]
            params = dict(parse_qsl(parts.query, keep_blank_values=True))
            endpoint, status, body = self._route(segments, params, epoch, target)
        except _HTTPError as exc:
            status, body = exc.status, _render(
                {"error": str(exc), "status": exc.status}
            )
        except InjectedTaskError as exc:
            status, body = 500, _render({"error": str(exc), "status": 500})
        except Exception as exc:
            # Process boundary: a handler bug must become a 500 response,
            # never a dropped connection or a dead server thread.
            status, body = 500, _render(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500}
            )
        self.metrics.observe(endpoint, status, time.perf_counter() - started)
        return status, body

    def _route(
        self,
        segments: list[str],
        params: dict[str, str],
        epoch: _Epoch,
        target: str,
    ) -> tuple[str, int, bytes]:
        """Dispatch to an endpoint; returns (endpoint, status, body)."""
        if segments == ["healthz"]:
            return "healthz", 200, _render(epoch.index.summary())
        if segments == ["metrics"]:
            return "metrics", 200, _render(self._metrics_payload(epoch))
        if len(segments) >= 2 and segments[0] == "v1":
            kind = segments[1]
            if kind == "entity" and len(segments) == 5 and segments[4] == "sites":
                return "entity", *self._query(
                    "entity",
                    {"domain": segments[2], "id": segments[3], **params},
                    epoch,
                    target,
                )
            if kind == "site" and len(segments) == 4 and segments[3] == "entities":
                return "site", *self._query(
                    "site", {"host": segments[2], **params}, epoch, target
                )
            if kind == "coverage" and len(segments) == 3:
                return "coverage", *self._query(
                    "coverage", {"domain": segments[2], **params}, epoch, target
                )
            if kind == "demand" and len(segments) == 3:
                return "demand", *self._query(
                    "demand", {"site": segments[2], **params}, epoch, target
                )
            if kind == "setcover" and len(segments) == 3:
                return "setcover", *self._query(
                    "setcover", {"domain": segments[2], **params}, epoch, target
                )
        raise _HTTPError(404, f"no route for /{'/'.join(segments)}")

    # -- query execution ------------------------------------------------------

    def _query(
        self,
        endpoint: str,
        params: dict[str, str],
        epoch: _Epoch,
        target: str,
    ) -> tuple[int, bytes]:
        """Run one cacheable query: LRU -> micro-batcher -> worker pool.

        The cache key fingerprints (endpoint, normalized params, index
        identity); the same key coalesces concurrent identical requests
        onto one future.  Each caller applies its own deadline, so a
        wedged handler (fault-injected or not) costs its requesters one
        timeout each, never the server.
        """
        assert endpoint in _CACHEABLE
        key = fingerprint(
            "serve-response",
            endpoint=endpoint,
            params=dict(sorted(params.items())),
            index=epoch.index.identity,
        )
        if epoch.rcache is not None:
            # Memoize target -> key so repeats take the fast path; the
            # memo is epoch-scoped, so a swap invalidates it wholesale.
            if len(epoch.path_keys) >= epoch.path_keys_cap:
                epoch.path_keys.clear()
            epoch.path_keys[target] = (endpoint, key)
            cached = epoch.rcache.get(key)
            if cached is not None:
                return cached
        future: Future = epoch.batcher.submit(
            key, self._executor, lambda: self._compute(endpoint, params, epoch)
        )
        try:
            status, body = future.result(timeout=self.policy.timeout_seconds)
        except FutureTimeout:
            message = (
                f"deadline of {self.policy.timeout_seconds:g}s exceeded "
                f"for {endpoint}"
            )
            return 504, _render({"error": message, "status": 504})
        if epoch.rcache is not None and status == 200:
            epoch.rcache.put(key, status, body)
        return status, body

    def _compute(
        self, endpoint: str, params: dict[str, str], epoch: _Epoch
    ) -> tuple[int, bytes]:
        """Query body, run on the worker pool (fault-injectable).

        Always returns a response tuple — errors become status codes
        here, inside the endpoint's attribution scope, so `/metrics`
        charges a 400/404/500 to the endpoint that produced it rather
        than to ``unknown``.
        """
        try:
            plan = active_plan()
            if plan is not None:
                plan.apply_task_faults(
                    f"serve:{endpoint}", attempt=1, in_worker=False
                )
            payload = getattr(self, f"_handle_{endpoint}")(epoch.index, params)
        except _HTTPError as exc:
            return exc.status, _render({"error": str(exc), "status": exc.status})
        except (KeyError, ValueError) as exc:
            return 400, _render({"error": str(exc), "status": 400})
        except Exception as exc:
            # Includes injected faults: a wedged or raising handler must
            # answer its own requesters, never take the pool down.
            return 500, _render(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500}
            )
        return 200, _render(payload)

    @staticmethod
    def _pair(index: ServeIndex, params: dict[str, str]) -> PairIndex:
        """Resolve the (domain, attribute) pair named by request params."""
        domain = params["domain"]
        pair = index.resolve_pair(domain, params.get("attribute"))
        if pair is None:
            raise _HTTPError(
                404,
                f"unknown domain/attribute "
                f"{domain}/{params.get('attribute') or '<default>'}",
            )
        return pair

    @staticmethod
    def _int_param(params: dict[str, str], name: str, default: int | None = None) -> int:
        """Parse a required-or-defaulted integer query parameter."""
        raw = params.get(name)
        if raw is None:
            if default is None:
                raise _HTTPError(400, f"missing required parameter {name!r}")
            return default
        try:
            return int(raw)
        except ValueError:
            raise _HTTPError(400, f"parameter {name!r} must be an integer") from None

    def _handle_entity(
        self, index: ServeIndex, params: dict[str, str]
    ) -> dict[str, object]:
        """GET /v1/entity/{domain}/{id}/sites — where does an entity live?"""
        pair = self._pair(index, params)
        entity = pair.resolve_entity(params["id"])
        if entity is None:
            raise _HTTPError(
                404, f"unknown entity {params['id']!r} in {pair.domain}"
            )
        hosts = pair.entity_site_hosts(entity)
        return {
            "domain": pair.domain,
            "attribute": pair.attribute,
            "entity": pair.entity_label(entity),
            "entity_index": int(entity),
            "n_sites": int(len(hosts)),
            "sites": hosts,
        }

    def _site_matches(
        self, index: ServeIndex, host: str, params: dict[str, str]
    ) -> list[tuple[PairIndex, int]]:
        """(pair, site) matches for a host, in stable sorted-pair order."""
        domain = params.get("domain")
        attribute = params.get("attribute")
        matches: list[tuple[PairIndex, int]] = []
        for key in sorted(index.pairs):
            pair = index.pairs[key]
            if domain is not None and pair.domain != domain:
                continue
            if attribute is not None and pair.attribute != attribute:
                continue
            site = pair.site_of_host(host)
            if site is None:
                continue
            matches.append((pair, site))
        if not matches:
            raise _HTTPError(404, f"unknown host {host!r}")
        return matches

    def _handle_site(
        self, index: ServeIndex, params: dict[str, str]
    ) -> dict[str, object]:
        """GET /v1/site/{host}/entities — what does a site mention?

        Without ``limit``/``cursor`` this is the PR 4 contract: every
        match with its entity list truncated at ``max_site_entities``.
        With them it pages over the same stable CSR order: each page
        holds up to ``limit`` entities (across matches, in sorted-pair
        order) plus an opaque ``next_cursor``; concatenating every
        page's entities per match reproduces the full listing exactly.
        """
        host = params["host"]
        matches = self._site_matches(index, host, params)
        if "limit" not in params and "cursor" not in params:
            limit = self.settings.max_site_entities
            return {
                "host": host,
                "matches": [
                    {
                        "domain": pair.domain,
                        "attribute": pair.attribute,
                        "n_entities": int(total),
                        "truncated": bool(total > limit),
                        "entities": pair.entity_labels(page),
                    }
                    for pair, total, page in (
                        (pair, *pair.site_page(site, 0, limit))
                        for pair, site in matches
                    )
                ],
            }
        limit = self._int_param(
            params, "limit", default=self.settings.max_site_entities
        )
        if limit < 1:
            raise _HTTPError(400, f"limit must be >= 1, got {limit}")
        limit = min(limit, self.settings.max_site_entities)
        start_at = 0
        offset = 0
        cursor = params.get("cursor")
        if cursor is not None:
            domain, attribute, offset = _decode_cursor(cursor)
            keys = [(pair.domain, pair.attribute) for pair, __ in matches]
            try:
                start_at = keys.index((domain, attribute))
            except ValueError:
                raise _HTTPError(
                    400, f"cursor names no current match: {domain}/{attribute}"
                ) from None
        pages: list[dict[str, object]] = []
        remaining = limit
        next_cursor: str | None = None
        for position in range(start_at, len(matches)):
            pair, site = matches[position]
            begin = offset if position == start_at else 0
            total, taken = pair.site_page(site, begin, remaining)
            if begin > total:
                raise _HTTPError(400, "cursor offset beyond listing")
            pages.append(
                {
                    "domain": pair.domain,
                    "attribute": pair.attribute,
                    "n_entities": int(total),
                    "offset": int(begin),
                    "entities": pair.entity_labels(taken),
                }
            )
            remaining -= len(taken)
            if begin + len(taken) < total:
                next_cursor = _encode_cursor(
                    pair.domain, pair.attribute, begin + len(taken)
                )
                break
            if remaining == 0:
                if position + 1 < len(matches):
                    follower, __ = matches[position + 1]
                    next_cursor = _encode_cursor(
                        follower.domain, follower.attribute, 0
                    )
                break
        return {
            "host": host,
            "limit": int(limit),
            "matches": pages,
            "next_cursor": next_cursor,
        }

    def _handle_coverage(
        self, index: ServeIndex, params: dict[str, str]
    ) -> dict[str, object]:
        """GET /v1/coverage/{domain}?k=&t= — dense-table k-coverage."""
        pair = self._pair(index, params)
        k = self._int_param(params, "k", default=1)
        top_t = self._int_param(params, "t", default=pair.n_sites)
        try:
            value = pair.coverage_at(k, top_t)
        except (KeyError, ValueError) as exc:
            raise _HTTPError(400, str(exc)) from exc
        return {
            "domain": pair.domain,
            "attribute": pair.attribute,
            "k": k,
            "t": top_t,
            "coverage": round(value, 6),
        }

    def _handle_demand(
        self, index: ServeIndex, params: dict[str, str]
    ) -> dict[str, object]:
        """GET /v1/demand/{site}?n_reviews=&source= — Figure-7 lookup."""
        site = params["site"]
        table = index.demand.get(site)
        if table is None:
            raise _HTTPError(
                404,
                f"unknown traffic site {site!r}; "
                f"have {sorted(index.demand)}",
            )
        n_reviews = self._int_param(params, "n_reviews")
        if n_reviews < 0:
            raise _HTTPError(400, "n_reviews must be non-negative")
        source = params.get("source", "search")
        try:
            result = table.lookup(source, n_reviews)
        except KeyError as exc:
            raise _HTTPError(400, str(exc)) from exc
        return {"site": site, "source": source, "n_reviews": n_reviews, **result}

    def _handle_setcover(
        self, index: ServeIndex, params: dict[str, str]
    ) -> dict[str, object]:
        """GET /v1/setcover/{domain}?budget= — bounded greedy cover."""
        pair = self._pair(index, params)
        budget = self._int_param(params, "budget", default=10)
        if not 1 <= budget <= self.settings.max_setcover_budget:
            raise _HTTPError(
                400,
                f"budget must be in [1, {self.settings.max_setcover_budget}], "
                f"got {budget}",
            )
        return {
            "domain": pair.domain,
            "attribute": pair.attribute,
            **pair.set_cover(budget),
        }

    def _metrics_payload(self, epoch: _Epoch) -> dict[str, object]:
        """The `/metrics` document: counters, histograms, cache stats."""
        payload = self.metrics.snapshot()
        payload["worker"] = self.worker_id
        payload["response_cache"] = (
            epoch.rcache.stats()
            if epoch.rcache is not None
            else {"enabled": False}
        )
        payload["batcher"] = epoch.batcher.stats()
        payload["deadline_seconds"] = self.policy.timeout_seconds
        payload["index_fingerprint"] = epoch.index.identity
        payload["backend"] = getattr(epoch.index, "backend", "ram")
        return payload


class RunRouter:
    """Route ``/v1/run/{run_id}/...`` prefixes to per-run apps.

    The multi-run registry: each run keeps its own :class:`ServeApp`
    (index epoch, response cache, batcher, metrics), so runs reload and
    account independently.  Legacy unprefixed routes go to the default
    run unchanged — single-run clients never notice the router — and
    ``/v1/runs`` lists the registry.  The router quacks like a
    :class:`ServeApp` where the HTTP shells care (``handle`` /
    ``settings`` / ``worker_id``), so :func:`make_server` and the
    sharded workers drive it unmodified.
    """

    def __init__(self, apps: dict[str, ServeApp], default_run: str) -> None:
        if default_run not in apps:
            raise ValueError(f"default run {default_run!r} not in registry")
        self.apps = dict(apps)
        self.default_run = default_run

    @property
    def settings(self) -> ServeSettings:
        """The default run's settings (shells bind with these)."""
        return self.apps[self.default_run].settings

    @property
    def worker_id(self) -> int:
        """The default run's worker id (shells stamp it on responses)."""
        return self.apps[self.default_run].worker_id

    def handle(self, target: str) -> tuple[int, bytes]:
        """Serve one GET request path, routing by run prefix."""
        parts = urlsplit(target)
        segments = [s for s in parts.path.split("/") if s]
        if segments == ["v1", "runs"]:
            return 200, _render(self._runs_payload())
        if len(segments) >= 3 and segments[0] == "v1" and segments[1] == "run":
            run_id = segments[2]
            app = self.apps.get(run_id)
            if app is None:
                return 404, _render(
                    {
                        "error": f"unknown run {run_id!r}; "
                        f"have {sorted(self.apps)}",
                        "status": 404,
                    }
                )
            rest = segments[3:]
            # /v1/run/{id}/healthz and /metrics unwrap to the run's own
            # service endpoints; everything else re-roots under /v1/.
            if rest in (["healthz"], ["metrics"]):
                path = f"/{rest[0]}"
            else:
                path = "/v1/" + "/".join(rest)
            query = f"?{parts.query}" if parts.query else ""
            return app.handle(path + query)
        return self.apps[self.default_run].handle(target)

    def _runs_payload(self) -> dict[str, object]:
        """The ``/v1/runs`` registry listing."""
        return {
            "default_run": self.default_run,
            "runs": [
                {
                    "run_id": run_id,
                    "backend": getattr(app.index, "backend", "ram"),
                    "index_fingerprint": app.index.identity,
                    "scale": app.index.config.scale,
                    "seed": app.index.config.seed,
                    "pairs": len(app.index.pairs),
                }
                for run_id, app in sorted(self.apps.items())
            ],
        }

    def close(self) -> None:
        """Shut down every run's worker pool (idempotent)."""
        for app in self.apps.values():
            app.close()


class _RequestHandler(BaseHTTPRequestHandler):
    """Minimal GET-only shell delegating to the app (quiet logging)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    # Without TCP_NODELAY, Nagle + delayed ACK quantizes every loopback
    # response at ~40ms and the latency benchmark measures the kernel,
    # not the server.
    disable_nagle_algorithm = True
    app: "ServeApp | RunRouter"  # attached by make_server

    def do_GET(self) -> None:
        """Serve one request through :meth:`ServeApp.handle`."""
        status, body = self.app.handle(self.path)
        self.send_response(status)
        self.send_header("Content-Type", _JSON)
        self.send_header("Content-Length", str(len(body)))
        self.send_header(WORKER_HEADER, str(self.app.worker_id))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Suppress stderr access logs (metrics cover observability)."""


def make_server(app: "ServeApp | RunRouter") -> ThreadingHTTPServer:
    """Bind a :class:`ThreadingHTTPServer` serving ``app``.

    The handler class is specialized per call so multiple servers (and
    tests) can run distinct apps in one process.  Caller owns the server
    lifecycle: ``serve_forever()`` / ``shutdown()`` / ``server_close()``.
    """
    handler = type("BoundRequestHandler", (_RequestHandler,), {"app": app})
    server = ThreadingHTTPServer(
        (app.settings.host, app.settings.port), handler
    )
    server.daemon_threads = True
    return server
