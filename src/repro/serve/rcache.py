"""LRU response cache keyed on `repro.perf` fingerprints.

Stores fully rendered response bodies (status + bytes) for the five
query endpoints, keyed by :func:`repro.perf.fingerprint` digests that
cover the endpoint name, the normalized query parameters, and the
serving index's identity fingerprint.  Because every cached entry is
the exact byte string a cold handler would have produced (handlers are
pure functions of immutable indices and render JSON with sorted keys),
serving from cache is byte-identical to recomputing — the same
invariant `repro.perf.cache` maintains for batch artifacts.

Only successful (HTTP 200) responses are cached; errors stay cheap to
produce and should never be pinned.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded thread-safe LRU mapping fingerprint -> (status, body)."""

    def __init__(self, max_entries: int = 1024) -> None:
        """Create a cache holding at most ``max_entries`` responses."""
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[int, bytes]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> tuple[int, bytes] | None:
        """Return the cached (status, body) for ``key``, or None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: str, status: int, body: bytes) -> None:
        """Insert a response, evicting the least recently used if full."""
        with self._lock:
            self._entries[key] = (int(status), bytes(body))
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> dict[str, float | int]:
        """Return hit/miss/eviction counters and the current hit rate."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / lookups, 4) if lookups else 0.0,
            }
