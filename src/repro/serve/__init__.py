"""Online serving: a sharded, read-optimized query service (``repro serve``).

The batch pipeline (``repro all``) computes the paper's artifacts once;
this subsystem turns them into the indices a production system would
*serve* — the Google-Dataset-Search shape of the workload.  The
cooperating pieces:

- :mod:`repro.serve.indices` — immutable in-memory indices built from a
  run's :data:`~repro.pipeline.config.MANIFEST_NAME` manifest: CSR
  entity↔site adjacency per (domain, attribute), per-site k-coverage
  tables, demand-vs-reviews lookup tables, and catalog id maps.
  ``build_index(..., backend=)`` also fronts the out-of-core tiers in
  :mod:`repro.store` (``mmap`` CSR blobs, compiled SQLite) — byte-
  identical responses, bounded residency (see ``docs/storage.md``).
- :mod:`repro.serve.server` — the JSON request core (``/v1/entity``,
  ``/v1/site`` with pagination cursors, ``/v1/coverage``,
  ``/v1/demand``, ``/v1/setcover``, ``/healthz``, ``/metrics``) with
  per-request deadlines from :class:`repro.resilience.RetryPolicy`,
  fault-injectable handlers (``--inject-faults``), and epoch-swappable
  indices (hot reload), plus the portable ``ThreadingHTTPServer``
  shell.
- :mod:`repro.serve.fasthttp` — the pipelining keep-alive HTTP/1.1
  shell sharded workers run (batched writes, buffer-scan parsing).
- :mod:`repro.serve.sharding` — the multi-process supervisor: N forked
  workers behind one port via ``SO_REUSEPORT`` (fallback: an
  fd-passing round-robin router), each inheriting the index built once
  in the parent.
- :mod:`repro.serve.reload` — manifest watching and atomic hot index
  swaps (mtime gate, config-fingerprint gate, epoch replacement).
- :mod:`repro.serve.rcache` — an LRU response cache keyed on
  :func:`repro.perf.fingerprint` digests; responses are byte-identical
  with and without it.
- :mod:`repro.serve.batcher` — a micro-batcher that coalesces
  concurrent identical queries (one greedy set-cover run serves every
  simultaneous requester).
- :mod:`repro.serve.loadgen` — seeded load generators
  (``repro serve-bench``): the PR4-compatible closed loop and the
  open-loop Poisson generator with rate sweeps, emitting latency /
  throughput / knee reports to ``BENCH_PR7.json``.

Layering: ``serve`` sits *above* ``pipeline`` and ``store`` in the
DESIGN.md §3 DAG, because it is an online consumer of the batch
pipeline's artifact builders and the compiled storage tiers.  Nothing
imports ``serve`` except the CLI — it is the DAG's sink.  Serving never
mutates indices; every structure is built once per epoch and read
concurrently without locks.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.fasthttp import FastHTTPServer
from repro.serve.indices import (
    PairIndex,
    ServeIndex,
    build_index,
    load_manifest,
    manifest_identity,
)
from repro.serve.loadgen import (
    LoadPlan,
    LoadResult,
    OpenLoadPlan,
    OpenLoadResult,
    build_open_schedule,
    build_streams,
    find_knee,
    open_rate_summary,
    run_load,
    run_open_load,
    stream_digest,
    write_bench_report,
    write_open_bench_report,
)
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.rcache import ResponseCache
from repro.serve.reload import ManifestWatcher
from repro.serve.server import (
    WORKER_HEADER,
    RunRouter,
    ServeApp,
    ServeSettings,
    make_server,
)
from repro.serve.sharding import (
    ShardPlan,
    ShardedServer,
    resolve_strategy,
    reuseport_available,
)

__all__ = [
    "FastHTTPServer",
    "LatencyHistogram",
    "LoadPlan",
    "LoadResult",
    "ManifestWatcher",
    "MicroBatcher",
    "OpenLoadPlan",
    "OpenLoadResult",
    "PairIndex",
    "ResponseCache",
    "RunRouter",
    "ServeApp",
    "ServeIndex",
    "ServeMetrics",
    "ServeSettings",
    "ShardPlan",
    "ShardedServer",
    "WORKER_HEADER",
    "build_index",
    "build_open_schedule",
    "build_streams",
    "find_knee",
    "load_manifest",
    "make_server",
    "manifest_identity",
    "open_rate_summary",
    "resolve_strategy",
    "reuseport_available",
    "run_load",
    "run_open_load",
    "stream_digest",
    "write_bench_report",
    "write_open_bench_report",
]
