"""Online serving: a read-optimized entity-query service (``repro serve``).

The batch pipeline (``repro all``) computes the paper's artifacts once;
this subsystem turns them into the indices a production system would
*serve* — the Google-Dataset-Search shape of the workload.  Five
cooperating pieces:

- :mod:`repro.serve.indices` — immutable in-memory indices built from a
  run's :data:`~repro.pipeline.runall.MANIFEST_NAME` manifest: CSR
  entity↔site adjacency per (domain, attribute), per-site k-coverage
  tables, demand-vs-reviews lookup tables, and catalog id maps.
- :mod:`repro.serve.server` — a stdlib ``ThreadingHTTPServer`` JSON API
  over those indices (``/v1/entity``, ``/v1/site``, ``/v1/coverage``,
  ``/v1/demand``, ``/v1/setcover``, ``/healthz``, ``/metrics``) with
  per-request deadlines from :class:`repro.resilience.RetryPolicy` and
  fault-injectable handlers (``--inject-faults``).
- :mod:`repro.serve.rcache` — an LRU response cache keyed on
  :func:`repro.perf.fingerprint` digests; responses are byte-identical
  with and without it.
- :mod:`repro.serve.batcher` — a micro-batcher that coalesces
  concurrent identical queries (one greedy set-cover run serves every
  simultaneous requester).
- :mod:`repro.serve.loadgen` — a seeded closed-loop load generator
  (``repro serve-bench``) with Zipf-distributed entity popularity,
  emitting p50/p95/p99 latency and throughput to ``BENCH_PR4.json``.

Layering: ``serve`` sits *above* ``pipeline`` in the DESIGN.md §3 DAG —
the only subsystem allowed to, because it is an online consumer of the
batch pipeline's artifact builders.  Nothing imports ``serve`` except
the CLI.  Serving never mutates indices; every structure is built once
and read concurrently without locks.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.indices import (
    PairIndex,
    ServeIndex,
    build_index,
    load_manifest,
)
from repro.serve.loadgen import (
    LoadPlan,
    LoadResult,
    build_streams,
    run_load,
    stream_digest,
    write_bench_report,
)
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.rcache import ResponseCache
from repro.serve.server import ServeApp, ServeSettings, make_server

__all__ = [
    "LatencyHistogram",
    "LoadPlan",
    "LoadResult",
    "MicroBatcher",
    "PairIndex",
    "ResponseCache",
    "ServeApp",
    "ServeIndex",
    "ServeMetrics",
    "ServeSettings",
    "build_index",
    "build_streams",
    "load_manifest",
    "make_server",
    "run_load",
    "stream_digest",
    "write_bench_report",
]
