"""Micro-batching of concurrent identical queries (single-flight).

Expensive read-only queries (greedy set cover over a whole domain) are
classic thundering-herd targets: when a result falls out of the
response cache, every concurrent requester would recompute it.
``MicroBatcher`` coalesces them — the first requester for a key becomes
the *leader* and schedules the computation on the server's worker pool;
everyone else arriving while it is in flight shares the same
:class:`~concurrent.futures.Future`.  Each caller still applies its own
deadline via ``future.result(timeout=...)``, so coalescing never
extends a request past its budget.

Correctness relies on queries being pure functions of the key (true for
every serve endpoint: indices are immutable), so sharing a result is
indistinguishable from recomputing it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from concurrent.futures import Executor, Future

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent identical computations onto one future."""

    def __init__(self) -> None:
        """Create a batcher with no in-flight work."""
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}  # guarded-by: _lock
        self._launched = 0  # guarded-by: _lock
        self._coalesced = 0  # guarded-by: _lock

    def submit(self, key: str, executor: Executor, fn: Callable[[], object]) -> Future:
        """Return the shared future for ``key``, scheduling ``fn`` if absent.

        If an identical query is already in flight its future is
        returned (the call is *coalesced*); otherwise ``fn`` is
        submitted to ``executor`` and registered until it completes.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
                return existing

            def single_flight() -> object:
                # De-register *before* the future settles: waiters wake
                # the instant the result lands, and a done-callback
                # would race them — callers could observe a finished
                # query still counted as in flight.  No successor entry
                # can exist yet (submits reuse this one until it is
                # removed here), so dropping by key is safe.
                try:
                    return fn()
                finally:
                    self._discard(key)

            future: Future = executor.submit(single_flight)
            self._inflight[key] = future
            self._launched += 1
        return future

    def _discard(self, key: str) -> None:
        """Drop ``key`` from the in-flight table as its query finishes."""
        with self._lock:
            self._inflight.pop(key, None)

    def stats(self) -> dict[str, int]:
        """Return launch/coalesce counters and current in-flight size."""
        with self._lock:
            return {
                "launched": self._launched,
                "coalesced": self._coalesced,
                "inflight": len(self._inflight),
            }
