"""Hot index reload: swap serving indices when the manifest changes.

A long-lived serve worker should not need a restart when ``repro all``
rewrites a run's ``manifest.json`` (a re-run at a new seed, an
incremental batch, a corrected config).  :class:`ManifestWatcher` polls
the manifest with two gates:

1. **mtime** — cheap; unchanged mtime means no further work at all.
2. **config fingerprint** — :func:`repro.serve.indices.manifest_identity`
   of the re-parsed manifest.  A rewrite that produces the same config
   (``touch``, a byte-identical re-run) is recorded and skipped; only a
   genuinely different index identity triggers a rebuild.

Rebuilds go through the cache-aware :func:`~repro.serve.indices.build_index`
(warm artifact cache → pure deserialization) and land via
:meth:`~repro.serve.server.ServeApp.swap_index`, which replaces the
whole epoch (index + caches) in one reference assignment — in-flight
requests finish on the epoch they captured, so a swap never drops or
tears a response.  The chaos suite points ``op=stall`` cache faults at
a rebuild while hammering requests to prove exactly that.

Failures (a half-written manifest read mid-``atomic_publish``, a
rebuild error) are recorded on :attr:`ManifestWatcher.last_error` and
retried on the next poll — the worker keeps serving the old epoch, by
design, because a stale index beats a dead server.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.pipeline.config import MANIFEST_NAME
from repro.serve.indices import build_index, load_manifest, manifest_identity
from repro.serve.server import ServeApp

__all__ = ["ManifestWatcher"]


class ManifestWatcher:
    """Poll a run manifest and hot-swap a :class:`ServeApp`'s index."""

    def __init__(
        self,
        manifest_path: str | Path,
        app: ServeApp,
        poll_seconds: float = 2.0,
        builder=None,
    ) -> None:
        """Watch ``manifest_path`` (file or run directory) for ``app``.

        Args:
            manifest_path: ``manifest.json`` or the directory holding it.
            app: The app whose index generations this watcher manages.
            poll_seconds: Sleep between mtime checks.
            builder: ``manifest -> index`` callable; defaults to
                :func:`~repro.serve.indices.build_index`.  The CLI binds
                the selected ``--backend`` here so a reload rebuilds
                into the same storage tier it serves from.

        Raises:
            ValueError: Non-positive poll interval.
        """
        if poll_seconds <= 0:
            raise ValueError(f"poll_seconds must be positive, got {poll_seconds}")
        location = Path(manifest_path)
        if location.is_dir():
            location = location / MANIFEST_NAME
        self.path = location
        self.app = app
        self.builder = builder if builder is not None else build_index
        self.poll_seconds = float(poll_seconds)
        self.last_error: str | None = None
        self.reloads = 0
        self.checks = 0
        self._known_mtime = self._mtime()
        self._known_identity = app.index.identity
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _mtime(self) -> float:
        """Manifest mtime; -1.0 when it is (momentarily) absent."""
        try:
            return os.stat(self.path).st_mtime
        except OSError:
            return -1.0

    def check_once(self) -> bool:
        """One poll step; returns True when an index swap happened.

        Split out from the thread loop so tests (and the chaos suite)
        can drive reload decisions deterministically.
        """
        self.checks += 1
        mtime = self._mtime()
        if mtime < 0 or mtime == self._known_mtime:
            return False
        try:
            manifest = load_manifest(self.path)
            identity = manifest_identity(manifest)
            if identity == self._known_identity:
                # Rewritten but equivalent: remember the mtime so the
                # next poll is cheap again, and keep the live epoch.
                self._known_mtime = mtime
                self.last_error = None
                return False
            index = self.builder(manifest)
        except Exception as exc:
            # Keep serving the old epoch; a torn read of a mid-publish
            # manifest or a failed rebuild (including an out-of-core
            # store compile whose blobs failed digest verification —
            # e.g. an injected ``op=corrupt`` fault) retries on the
            # next poll.
            self.last_error = f"{type(exc).__name__}: {exc}"
            return False
        self.app.swap_index(index)
        self._known_mtime = mtime
        self._known_identity = identity
        self.reloads += 1
        self.last_error = None
        return True

    def run(self) -> None:
        """Poll until :meth:`stop` (the worker thread body)."""
        while not self._stop.wait(self.poll_seconds):
            self.check_once()

    def start(self) -> "ManifestWatcher":
        """Start the watcher on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.run, daemon=True, name="serve-reload"
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the polling thread (idempotent, joins briefly)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.poll_seconds + 1.0)
            self._thread = None
