"""Multi-process sharding for the serve tier (``repro serve --workers``).

The paper's query workloads are read-only over immutable run artifacts
— an embarrassingly shardable serving problem that a single GIL-bound
process cannot scale.  :class:`ShardedServer` is the supervisor: it
builds the index **once** in the parent, forks ``N`` worker processes
that inherit it copy-on-write, and puts every worker behind one
``host:port`` using whichever kernel facility is available:

- **reuseport** (preferred): each worker binds the same port with
  ``SO_REUSEPORT`` and accepts for itself; the kernel load-balances new
  connections across the listening shards with no userspace hop.  The
  parent holds a bound-but-not-listening ``SO_REUSEPORT`` socket purely
  to reserve the port (it never receives connections — only listeners
  do), which makes ephemeral ``--port 0`` work across processes.
- **router** (fallback, and the deterministic mode): the parent owns
  the only listening socket and passes each accepted connection's file
  descriptor to a worker over a Unix socketpair (``SCM_RIGHTS`` via
  :func:`socket.send_fds`), strictly round-robin in accept order.
  Workers serve the connection through
  :meth:`~repro.serve.fasthttp.FastHTTPServer.process_connection`.
  Round-robin dispatch is what makes per-worker request attribution
  reproducible — the shard-determinism tests run in this mode.

Workers run the pipelined :class:`~repro.serve.fasthttp.FastHTTPServer`
shell over a per-worker :class:`~repro.serve.server.ServeApp` (own
caches, own metrics, shared immutable index pages) and optionally a
:class:`~repro.serve.reload.ManifestWatcher` for hot index reload.

Supervision is fork-based: worker entry points are bound methods, which
only works because ``fork`` inherits state instead of pickling it.  On
platforms without ``fork`` the constructor raises — the portable
single-process shell (:func:`repro.serve.server.make_server`) still
works everywhere.
"""

from __future__ import annotations

import errno
import gc
import multiprocessing
import socket
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.serve.fasthttp import FastHTTPServer
from repro.serve.indices import ServeIndex, build_index, load_manifest
from repro.serve.reload import ManifestWatcher
from repro.serve.server import RunRouter, ServeApp, ServeSettings

__all__ = [
    "ShardPlan",
    "ShardedServer",
    "reuseport_available",
    "resolve_strategy",
]

_STRATEGIES = ("auto", "reuseport", "router")
_READY_TIMEOUT = 60.0


def reuseport_available() -> bool:
    """True when this platform can bind multiple listeners to one port."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    finally:
        probe.close()
    return True


def resolve_strategy(strategy: str) -> str:
    """Map ``auto`` to the best available sharding strategy."""
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
        )
    if strategy == "auto":
        return "reuseport" if reuseport_available() else "router"
    if strategy == "reuseport" and not reuseport_available():
        raise ValueError("SO_REUSEPORT is not available on this platform")
    return strategy


@dataclass(frozen=True)
class ShardPlan:
    """Knobs of the sharded deployment.

    Attributes:
        workers: Worker processes to fork (>= 1).
        strategy: ``auto`` (reuseport when the kernel has it, else
            router), ``reuseport``, or ``router``.
        reload_poll_seconds: Manifest poll interval for hot index
            reload; 0 disables the watcher.
        backlog: Listen backlog (per listener).
    """

    workers: int = 2
    strategy: str = "auto"
    reload_poll_seconds: float = 0.0
    backlog: int = 512

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.reload_poll_seconds < 0:
            raise ValueError("reload_poll_seconds must be >= 0")
        if self.backlog < 1:
            raise ValueError("backlog must be >= 1")


class ShardedServer:
    """Supervisor for ``N`` forked serve workers behind one port."""

    def __init__(
        self,
        index: ServeIndex | None = None,
        manifest_path: str | Path | None = None,
        settings: ServeSettings | None = None,
        plan: ShardPlan | None = None,
        builder=None,
        extra_runs: dict[str, str | Path] | None = None,
        default_run: str = "default",
    ) -> None:
        """Prepare (but do not start) a sharded deployment.

        Args:
            index: Pre-built serving index; workers inherit it through
                fork.  ``None`` builds it here from ``manifest_path``.
            manifest_path: The run directory or ``manifest.json``;
                required when ``index`` is None or hot reload is on.
            settings: Per-worker :class:`ServeSettings` (host/port/...).
            plan: Shard count, strategy, reload cadence.
            builder: ``manifest -> index`` callable for building and
                hot-reloading indices; defaults to
                :func:`~repro.serve.indices.build_index`.  The CLI
                binds the selected ``--backend`` here.
            extra_runs: Additional runs to serve behind a
                :class:`~repro.serve.server.RunRouter` — a
                ``run_id -> manifest path`` map.  Their indices are
                built once here (via ``builder``) and inherited by
                every worker through fork.
            default_run: Registry name of the primary run (the one
                legacy unprefixed routes hit) when ``extra_runs`` is
                non-empty.

        Raises:
            ValueError: Neither an index nor a manifest path was given,
                hot reload was requested without a manifest path, or an
                extra run reuses ``default_run``'s name.
            RuntimeError: The platform has no ``fork`` start method.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "sharded serving requires the fork start method; use "
                "repro.serve.make_server on this platform"
            )
        self.settings = settings or ServeSettings()
        self.plan = plan or ShardPlan()
        self.strategy = resolve_strategy(self.plan.strategy)
        self.manifest_path = (
            None if manifest_path is None else Path(manifest_path)
        )
        self.builder = builder if builder is not None else build_index
        if index is None:
            if self.manifest_path is None:
                raise ValueError("need an index or a manifest_path")
            index = self.builder(load_manifest(self.manifest_path))
        if self.plan.reload_poll_seconds > 0 and self.manifest_path is None:
            raise ValueError("hot reload needs a manifest_path to watch")
        self.default_run = default_run
        self.extra_runs = {
            run_id: Path(path) for run_id, path in (extra_runs or {}).items()
        }
        if default_run in self.extra_runs:
            raise ValueError(
                f"extra run {default_run!r} collides with the default run"
            )
        # Extra-run indices are built once, pre-fork, for the same
        # copy-on-write sharing the primary index gets.
        self.extra_indices: dict[str, ServeIndex] = {
            run_id: self.builder(load_manifest(path))
            for run_id, path in sorted(self.extra_runs.items())
        }
        self.index = index
        self._ctx = multiprocessing.get_context("fork")
        self._processes: list = []
        self._channels: list[socket.socket] = []
        self._reserve: socket.socket | None = None
        self._listener: socket.socket | None = None
        self._router_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self.server_address: tuple[str, int] | None = None

    # -- parent side ----------------------------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (for RSS attribution)."""
        return [
            process.pid
            for process in self._processes
            if process.pid is not None and process.is_alive()
        ]

    def start(self) -> tuple[str, int]:
        """Bind, fork the workers, wait until all accept; returns (host, port)."""
        host, port = self.settings.host, self.settings.port
        if self.strategy == "reuseport":
            # Reserve the port without listening: bound non-listening
            # sockets never receive connections, but they pin an
            # ephemeral port so every worker can bind the same number.
            self._reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._reserve.bind((host, port))
            host, port = self._reserve.getsockname()[:2]
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(self.plan.backlog)
            host, port = self._listener.getsockname()[:2]
        self.server_address = (host, port)

        ready_events = []
        for worker_id in range(self.plan.workers):
            ready = self._ctx.Event()
            ready_events.append(ready)
            if self.strategy == "reuseport":
                process = self._ctx.Process(
                    target=self._worker_reuseport,
                    args=(worker_id, host, port, ready),
                    daemon=True,
                    name=f"serve-shard-{worker_id}",
                )
            else:
                parent_end, child_end = socket.socketpair(
                    socket.AF_UNIX, socket.SOCK_STREAM
                )
                self._channels.append(parent_end)
                process = self._ctx.Process(
                    target=self._worker_router,
                    args=(worker_id, child_end, ready),
                    daemon=True,
                    name=f"serve-shard-{worker_id}",
                )
            process.start()
            self._processes.append(process)
            if self.strategy == "router":
                child_end.close()  # the worker owns its end now

        for worker_id, ready in enumerate(ready_events):
            if not ready.wait(timeout=_READY_TIMEOUT):
                exitcode = self._processes[worker_id].exitcode
                self.stop()
                raise RuntimeError(
                    f"worker {worker_id} never became ready "
                    f"(exitcode {exitcode})"
                )
        if self.strategy == "router":
            self._router_thread = threading.Thread(
                target=self._route_accepts, daemon=True, name="serve-router"
            )
            self._router_thread.start()
        return (host, port)

    def _route_accepts(self) -> None:
        """Accept loop: hand each connection fd to workers round-robin."""
        assert self._listener is not None
        turn = 0
        while not self._stopping.is_set():
            try:
                conn, __ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            channel = self._channels[turn % len(self._channels)]
            turn += 1
            try:
                socket.send_fds(channel, [b"c"], [conn.fileno()])
            except OSError:
                pass  # worker died; supervisor keeps routing to the rest
            conn.close()  # the worker holds its own duplicate now

    def stop(self) -> None:
        """Tear the deployment down (idempotent)."""
        self._stopping.set()
        if self._listener is not None and self.server_address is not None:
            # Wake the router's accept() so it observes the stop flag;
            # close() alone does not interrupt a parked accept.
            try:
                with socket.create_connection(self.server_address, timeout=1.0):
                    pass
            except OSError:
                pass
        for sock in (self._listener, self._reserve):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._listener = None
        self._reserve = None
        if self._router_thread is not None:
            self._router_thread.join(timeout=5.0)
            self._router_thread = None
        for channel in self._channels:
            try:
                channel.close()  # EOF tells the worker loop to exit
            except OSError:
                pass
        self._channels = []
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
        self._processes = []

    # -- worker side (runs after fork) ----------------------------------------

    def _worker_app(
        self, worker_id: int
    ) -> tuple["ServeApp | RunRouter", list[ManifestWatcher]]:
        """Build the per-worker app(s) over the fork-inherited indices.

        One :class:`ServeApp` per registered run (own caches and
        metrics over the shared immutable index pages); a
        :class:`RunRouter` fronts them when extra runs are registered.
        Each run gets its own watcher so runs hot-reload independently.
        """
        app = ServeApp(self.index, self.settings, worker_id=worker_id)
        watchers: list[ManifestWatcher] = []
        if self.plan.reload_poll_seconds > 0 and self.manifest_path is not None:
            watchers.append(
                ManifestWatcher(
                    self.manifest_path,
                    app,
                    self.plan.reload_poll_seconds,
                    builder=self.builder,
                ).start()
            )
        handler: ServeApp | RunRouter = app
        if self.extra_runs:
            apps = {self.default_run: app}
            for run_id, run_index in sorted(self.extra_indices.items()):
                run_app = ServeApp(run_index, self.settings, worker_id=worker_id)
                apps[run_id] = run_app
                if self.plan.reload_poll_seconds > 0:
                    watchers.append(
                        ManifestWatcher(
                            self.extra_runs[run_id],
                            run_app,
                            self.plan.reload_poll_seconds,
                            builder=self.builder,
                        ).start()
                    )
            handler = RunRouter(apps, self.default_run)
        # The worker's heap is an immutable index plus str->bytes LRU
        # caches: reference counting reclaims everything, and cyclic
        # collections over the (large, long-lived) cache dicts cost
        # tens of milliseconds each — a visible p99 stall.  Freeze the
        # inherited heap out of the collector and turn the cycle
        # collector off, as read-mostly servers conventionally do.
        gc.freeze()
        gc.disable()
        return handler, watchers

    def _worker_reuseport(
        self, worker_id: int, host: str, port: int, ready
    ) -> None:
        """Worker body: own SO_REUSEPORT listener, own accept loop."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(self.plan.backlog)
        app, __ = self._worker_app(worker_id)
        server = FastHTTPServer(app, sock)
        ready.set()
        server.serve_forever()

    def _worker_router(self, worker_id: int, channel: socket.socket, ready) -> None:
        """Worker body: serve connections whose fds arrive over ``channel``."""
        # CONC003 suppressed: touching the pre-fork channel sockets here
        # is deliberate fork-fd hygiene — the child closes every
        # inherited parent-side end precisely SO that no fork-unsafe fd
        # outlives the fork; without this, a dead worker's channel never
        # reads EOF and its siblings hang on shutdown.
        for parent_end in self._channels:  # reprolint: disable=CONC003
            # Fork copied every earlier worker's parent-side channel
            # into this child; close them so EOF propagates correctly.
            try:
                parent_end.close()
            except OSError:
                pass
        app, __ = self._worker_app(worker_id)
        server = FastHTTPServer(app, bind=False)
        ready.set()
        while True:
            try:
                msg, fds, __, __addr = socket.recv_fds(channel, 16, 4)
            except OSError as exc:
                if exc.errno == errno.EINTR:
                    continue
                break
            if not msg and not fds:
                break  # supervisor closed the channel: shut down
            for fd in fds:
                server.process_connection(socket.socket(fileno=fd))
