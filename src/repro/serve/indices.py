"""Immutable read-optimized indices over `repro all` artifacts.

The batch pipeline's manifest (``manifest.json``, written by
:func:`repro.pipeline.runall.write_manifest`) records the experiment
config of a completed run.  :func:`build_index` reconstructs every
spread corpus and traffic dataset through the *cache-aware* builders
(:func:`~repro.pipeline.experiments.spread_incidence` /
:func:`~repro.pipeline.experiments.build_traffic_dataset`), so against a
warm artifact cache startup is pure deserialization, and against a cold
one the indices are still byte-for-byte the run's own data — same
fingerprints, same generators.

Read-optimized layout per (domain, attribute) pair:

- the pipeline's CSR-by-site incidence, kept as-is for site→entities;
- its transpose (CSR-by-entity) for entity→sites, built with a stable
  argsort so site indices stay ascending within each entity row;
- a dense per-site k-coverage table (``float64[len(ks), n_sites]``)
  answering ``/v1/coverage?k=&t=`` in O(1);
- host→site and catalog-id→entity hash maps.

This module builds the **ram** tier.  :func:`build_index` also fronts
the out-of-core tiers in :mod:`repro.store` (``backend="mmap"`` /
``"sqlite"``; ``"auto"`` picks by manifest size), which answer the
same queries from memory-mapped CSR blobs or a compiled SQLite file
with byte-identical responses.  The manifest machinery and the shared
:class:`DemandTable` live in ``repro.store`` (below this layer) and
are re-exported here for compatibility.

Everything is built once; queries never mutate, so the HTTP layer
reads without locks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.coverage import k_coverage_curves
from repro.core.incidence import BipartiteIncidence, transpose_csr
from repro.core.valueadd import demand_vs_reviews
from repro.pipeline.config import ExperimentConfig
from repro.store.backend import (
    QueryIndex,
    check_top_t,
    choose_backend,
    coverage_row,
    open_backend,
    run_set_cover,
)
from repro.store.compile import DEMAND_SOURCES, TOP_HOSTS as _TOP_HOSTS
from repro.store.demand import DemandTable
from repro.store.manifest import Manifest, load_manifest, manifest_identity

__all__ = [
    "DemandTable",
    "Manifest",
    "PairIndex",
    "ServeIndex",
    "build_index",
    "load_manifest",
    "manifest_identity",
]

#: All tiers expose the contract of :class:`repro.store.QueryIndex`;
#: the historical name stays for the HTTP layer and its tests.
ServeIndex = QueryIndex


@dataclass(frozen=True)
class PairIndex:
    """Read-optimized structures for one (domain, attribute) corpus."""

    domain: str
    attribute: str
    incidence: BipartiteIncidence = field(repr=False)
    entity_ptr: np.ndarray = field(repr=False)
    entity_sites: np.ndarray = field(repr=False)
    host_to_site: dict[str, int] = field(repr=False)
    id_to_entity: dict[str, int] = field(repr=False)
    coverage_ks: tuple[int, ...]
    coverage: np.ndarray = field(repr=False)
    top_hosts: tuple[str, ...]

    @property
    def n_entities(self) -> int:
        """Entity-database size (coverage denominator)."""
        return self.incidence.n_entities

    @property
    def n_sites(self) -> int:
        """Number of sites in this corpus."""
        return len(self.incidence.site_hosts)

    def resolve_entity(self, entity_id: str) -> int | None:
        """Map a catalog id (or bare index string) to an entity index."""
        found = self.id_to_entity.get(entity_id)
        if found is not None:
            return found
        if entity_id.isdigit():
            index = int(entity_id)
            if 0 <= index < self.n_entities:
                return index
        return None

    def entity_label(self, entity: int) -> str:
        """Catalog id for an entity index (falls back to the index)."""
        ids = self.incidence.entity_ids
        return ids[entity] if ids is not None else str(entity)

    def entity_labels(self, entities) -> list[str]:
        """Labels for an iterable of entity indices, in input order."""
        ids = self.incidence.entity_ids
        if ids is None:
            return [str(int(e)) for e in entities]
        return [ids[int(e)] for e in entities]

    def sites_of_entity(self, entity: int) -> np.ndarray:
        """Site indices mentioning ``entity`` (ascending)."""
        return self.entity_sites[self.entity_ptr[entity] : self.entity_ptr[entity + 1]]

    def entities_on_site(self, site: int) -> np.ndarray:
        """Entity indices mentioned by site ``site``."""
        return self.incidence.site_entities(site)

    def site_page(self, site: int, offset: int, count: int):
        """``(total, page)`` slice of a site's listing (CSR row order)."""
        entities = self.incidence.site_entities(site)
        return len(entities), entities[offset : offset + count]

    def entity_site_hosts(self, entity: int) -> list[str]:
        """Hosts of an entity's sites, in ascending site order."""
        return self.site_hosts(self.sites_of_entity(entity))

    def site_host(self, site: int) -> str:
        """Host name for a site index."""
        return self.incidence.site_hosts[site]

    def site_hosts(self, sites) -> list[str]:
        """Hosts for an iterable of site indices, in input order."""
        hosts = self.incidence.site_hosts
        return [hosts[int(s)] for s in sites]

    def site_of_host(self, host: str) -> int | None:
        """Site index for a host name, or None when unknown."""
        return self.host_to_site.get(host)

    def coverage_at(self, k: int, top_t: int) -> float:
        """k-coverage of the top-``top_t`` sites, from the dense table.

        Raises:
            KeyError: ``k`` was not precomputed (outside the config ks).
            ValueError: ``top_t`` outside ``[1, n_sites]``.
        """
        row = coverage_row(self.coverage_ks, k)
        check_top_t(top_t, self.n_sites)
        return float(self.coverage[row, top_t - 1])

    def set_cover(self, budget: int) -> dict[str, object]:
        """Bounded greedy set cover: the expensive batched query.

        Returns the selected hosts, their marginal gains, and the
        cumulative 1-coverage fraction after the budget is spent.
        """
        return run_set_cover(self.incidence, self.site_host, budget)


def _build_pair(
    domain: str, attribute: str, config: ExperimentConfig
) -> PairIndex:
    """Build one pair's read-optimized structures."""
    # Lazy: repro.pipeline.experiments drags the whole batch stack
    # (~11 MB RSS, ~100 ms) into any importer; serve workers that boot
    # from a compiled store never build a RAM index and must not pay it
    # at import time (IMP001).
    from repro.pipeline.experiments import spread_incidence

    incidence = spread_incidence(domain, attribute, config)
    entity_ptr, entity_sites = transpose_csr(incidence)
    curves = k_coverage_curves(
        incidence,
        ks=config.ks,
        checkpoints=np.arange(1, len(incidence.site_hosts) + 1, dtype=np.int64),
    )
    ranked = incidence.sites_by_size()
    top_hosts = tuple(
        incidence.site_hosts[int(s)] for s in ranked[:_TOP_HOSTS]
    )
    ids = incidence.entity_ids
    id_to_entity = (
        {entity_id: index for index, entity_id in enumerate(ids)}
        if ids is not None
        else {}
    )
    return PairIndex(
        domain=domain,
        attribute=attribute,
        incidence=incidence,
        entity_ptr=entity_ptr,
        entity_sites=entity_sites,
        host_to_site={
            host: site for site, host in enumerate(incidence.site_hosts)
        },
        id_to_entity=id_to_entity,
        coverage_ks=tuple(int(k) for k in curves.ks),
        coverage=curves.coverage,
        top_hosts=top_hosts,
    )


def _build_demand(site: str, config: ExperimentConfig) -> DemandTable:
    """Build one traffic site's demand-vs-reviews lookup table."""
    from repro.pipeline.experiments import build_traffic_dataset  # lazy: see _build_pair

    dataset = build_traffic_dataset(site, config)
    sources = {
        source: demand_vs_reviews(dataset.demand(source), dataset.reviews)
        for source in DEMAND_SOURCES
    }
    return DemandTable(
        site=site,
        sources=sources,
        max_reviews=int(dataset.reviews.max()) if len(dataset.reviews) else 0,
    )


def build_index(manifest: Manifest, backend: str = "auto") -> ServeIndex:
    """Build the serving index for a manifest's run.

    ``backend`` selects the storage tier: ``"ram"`` (the classic
    in-memory CSR), ``"mmap"`` or ``"sqlite"`` (out-of-core, via
    :mod:`repro.store`), or ``"auto"`` to pick by manifest size.  All
    tiers route every corpus through the cache-aware pipeline builders
    and return byte-identical query responses; only residency and
    latency differ.  The returned index is immutable and safe for
    lock-free concurrent reads.
    """
    if backend == "auto":
        backend = choose_backend(manifest)
    if backend != "ram":
        return open_backend(manifest, backend)
    started = time.perf_counter()
    pairs: dict[tuple[str, str], PairIndex] = {}
    default_attribute: dict[str, str] = {}
    for domain, attribute in manifest.spread_pairs:
        pairs[(domain, attribute)] = _build_pair(domain, attribute, manifest.config)
        default_attribute.setdefault(domain, attribute)
    demand = {
        site: _build_demand(site, manifest.config)
        for site in manifest.traffic_sites
    }
    identity = manifest_identity(manifest)
    return ServeIndex(
        config=manifest.config,
        pairs=pairs,
        default_attribute=default_attribute,
        demand=demand,
        identity=identity,
        build_seconds=time.perf_counter() - started,
        backend="ram",
    )
