"""Immutable read-optimized indices over `repro all` artifacts.

The batch pipeline's manifest (``manifest.json``, written by
:func:`repro.pipeline.runall.write_manifest`) records the experiment
config of a completed run.  :func:`build_index` reconstructs every
spread corpus and traffic dataset through the *cache-aware* builders
(:func:`~repro.pipeline.experiments.spread_incidence` /
:func:`~repro.pipeline.experiments.build_traffic_dataset`), so against a
warm artifact cache startup is pure deserialization, and against a cold
one the indices are still byte-for-byte the run's own data — same
fingerprints, same generators.

Read-optimized layout per (domain, attribute) pair:

- the pipeline's CSR-by-site incidence, kept as-is for site→entities;
- its transpose (CSR-by-entity) for entity→sites, built with a stable
  argsort so site indices stay ascending within each entity row;
- a dense per-site k-coverage table (``float64[len(ks), n_sites]``)
  answering ``/v1/coverage?k=&t=`` in O(1);
- host→site and catalog-id→entity hash maps.

Demand tables hold the Figure-7 binned demand-vs-reviews curves per
traffic site for O(bins) lookup.  Everything is built once; queries
never mutate, so the HTTP layer reads without locks.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.coverage import k_coverage_curves
from repro.core.incidence import BipartiteIncidence
from repro.core.setcover import greedy_set_cover
from repro.core.valueadd import demand_vs_reviews, log2_review_bins
from repro.perf import fingerprint
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import build_traffic_dataset, spread_incidence
from repro.pipeline.runall import MANIFEST_FORMAT, MANIFEST_NAME

__all__ = [
    "DemandTable",
    "Manifest",
    "PairIndex",
    "ServeIndex",
    "build_index",
    "load_manifest",
    "manifest_identity",
]

# Hosts advertised to the load generator per pair (head of the
# size-ranked order); bounds the /healthz payload at paper scale.
_TOP_HOSTS = 50


@dataclass(frozen=True)
class Manifest:
    """Parsed ``manifest.json``: the config and shape of a finished run."""

    config: ExperimentConfig
    spread_pairs: tuple[tuple[str, str], ...]
    traffic_sites: tuple[str, ...]
    artifacts: tuple[str, ...]


def load_manifest(path: str | Path) -> Manifest:
    """Load a run manifest from a file or a run output directory.

    Raises:
        FileNotFoundError: No manifest exists (the run never completed).
        ValueError: The file is not a ``repro-manifest-v1`` document.
    """
    location = Path(path)
    if location.is_dir():
        location = location / MANIFEST_NAME
    payload = json.loads(location.read_text())
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{location}: expected format {MANIFEST_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    raw = payload["config"]
    config = ExperimentConfig(
        scale=raw["scale"],
        seed=raw["seed"],
        ks=tuple(raw["ks"]),
        max_bfs=raw["max_bfs"],
        traffic_entities=raw["traffic_entities"],
        traffic_events=raw["traffic_events"],
        traffic_cookies=raw["traffic_cookies"],
    )
    return Manifest(
        config=config,
        spread_pairs=tuple(
            (str(domain), str(attribute))
            for domain, attribute in payload["spread_pairs"]
        ),
        traffic_sites=tuple(payload["traffic_sites"]),
        artifacts=tuple(payload.get("artifacts", ())),
    )


@dataclass(frozen=True)
class PairIndex:
    """Read-optimized structures for one (domain, attribute) corpus."""

    domain: str
    attribute: str
    incidence: BipartiteIncidence = field(repr=False)
    entity_ptr: np.ndarray = field(repr=False)
    entity_sites: np.ndarray = field(repr=False)
    host_to_site: dict[str, int] = field(repr=False)
    id_to_entity: dict[str, int] = field(repr=False)
    coverage_ks: tuple[int, ...]
    coverage: np.ndarray = field(repr=False)
    top_hosts: tuple[str, ...]

    @property
    def n_entities(self) -> int:
        """Entity-database size (coverage denominator)."""
        return self.incidence.n_entities

    @property
    def n_sites(self) -> int:
        """Number of sites in this corpus."""
        return len(self.incidence.site_hosts)

    def resolve_entity(self, entity_id: str) -> int | None:
        """Map a catalog id (or bare index string) to an entity index."""
        found = self.id_to_entity.get(entity_id)
        if found is not None:
            return found
        if entity_id.isdigit():
            index = int(entity_id)
            if 0 <= index < self.n_entities:
                return index
        return None

    def entity_label(self, entity: int) -> str:
        """Catalog id for an entity index (falls back to the index)."""
        ids = self.incidence.entity_ids
        return ids[entity] if ids is not None else str(entity)

    def sites_of_entity(self, entity: int) -> np.ndarray:
        """Site indices mentioning ``entity`` (ascending)."""
        return self.entity_sites[self.entity_ptr[entity] : self.entity_ptr[entity + 1]]

    def entities_on_site(self, site: int) -> np.ndarray:
        """Entity indices mentioned by site ``site``."""
        return self.incidence.site_entities(site)

    def coverage_at(self, k: int, top_t: int) -> float:
        """k-coverage of the top-``top_t`` sites, from the dense table.

        Raises:
            KeyError: ``k`` was not precomputed (outside the config ks).
            ValueError: ``top_t`` outside ``[1, n_sites]``.
        """
        try:
            row = self.coverage_ks.index(int(k))
        except ValueError:
            raise KeyError(
                f"k={k} not precomputed; available: {self.coverage_ks}"
            ) from None
        if not 1 <= top_t <= self.n_sites:
            raise ValueError(f"t must be in [1, {self.n_sites}], got {top_t}")
        return float(self.coverage[row, top_t - 1])

    def set_cover(self, budget: int) -> dict[str, object]:
        """Bounded greedy set cover: the expensive batched query.

        Returns the selected hosts, their marginal gains, and the
        cumulative 1-coverage fraction after the budget is spent.
        """
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        order, gains = greedy_set_cover(self.incidence, max_sites=budget)
        denominator = max(self.n_entities, 1)
        return {
            "budget": int(budget),
            "selected": [self.incidence.site_hosts[int(s)] for s in order],
            "gains": [int(g) for g in gains],
            "coverage": round(float(gains.sum()) / denominator, 6),
        }


@dataclass(frozen=True)
class DemandTable:
    """Figure-7 lookup: normalized demand per log2 review-count bin."""

    site: str
    sources: dict[str, tuple[np.ndarray, np.ndarray]] = field(repr=False)
    max_reviews: int

    def lookup(self, source: str, n_reviews: int) -> dict[str, float]:
        """Demand estimate for an entity with ``n_reviews`` reviews.

        Bins the query with the paper's log2 grouping and returns the
        nearest *occupied* bin's mean demand (z-score normalized).

        Raises:
            KeyError: Unknown demand source.
            ValueError: Negative review count.
        """
        if source not in self.sources:
            raise KeyError(f"unknown source {source!r}; have {sorted(self.sources)}")
        if n_reviews < 0:
            raise ValueError("n_reviews must be non-negative")
        counts, means = self.sources[source]
        bins, centers = log2_review_bins(np.asarray([n_reviews]))
        center = float(centers[bins[0]])
        nearest = int(np.argmin(np.abs(counts - center)))
        return {
            "bin_center": float(counts[nearest]),
            "mean_normalized_demand": round(float(means[nearest]), 6),
        }


@dataclass(frozen=True)
class ServeIndex:
    """Everything the server holds in memory: pairs, demand, identity."""

    config: ExperimentConfig
    pairs: dict[tuple[str, str], PairIndex] = field(repr=False)
    default_attribute: dict[str, str]
    demand: dict[str, DemandTable] = field(repr=False)
    identity: str
    build_seconds: float

    def resolve_pair(self, domain: str, attribute: str | None) -> PairIndex | None:
        """Find the index for a domain, defaulting to its first attribute."""
        if attribute is None:
            attribute = self.default_attribute.get(domain)
            if attribute is None:
                return None
        return self.pairs.get((domain, attribute))

    def summary(self) -> dict[str, object]:
        """The `/healthz` payload: enough shape for a load generator."""
        return {
            "status": "ok",
            "scale": self.config.scale,
            "seed": self.config.seed,
            "index_fingerprint": self.identity,
            "pairs": [
                {
                    "domain": pair.domain,
                    "attribute": pair.attribute,
                    "n_entities": pair.n_entities,
                    "n_sites": pair.n_sites,
                    "ks": list(pair.coverage_ks),
                    "top_hosts": list(pair.top_hosts),
                }
                for pair in (
                    self.pairs[key] for key in sorted(self.pairs)
                )
            ],
            "traffic_sites": sorted(self.demand),
        }


def _transpose_csr(incidence: BipartiteIncidence) -> tuple[np.ndarray, np.ndarray]:
    """CSR-by-entity transpose of a CSR-by-site incidence.

    Stable argsort over the edge entity indices groups edges by entity
    while preserving edge order — and edges are stored site-ascending,
    so each entity's site list comes out ascending.
    """
    n_sites = len(incidence.site_hosts)
    site_per_edge = np.repeat(
        np.arange(n_sites, dtype=np.int64), np.diff(incidence.site_ptr)
    )
    order = np.argsort(incidence.entity_idx, kind="stable")
    entity_sites = site_per_edge[order]
    counts = np.bincount(incidence.entity_idx, minlength=incidence.n_entities)
    entity_ptr = np.zeros(incidence.n_entities + 1, dtype=np.int64)
    np.cumsum(counts, out=entity_ptr[1:])
    return entity_ptr, entity_sites


def _build_pair(
    domain: str, attribute: str, config: ExperimentConfig
) -> PairIndex:
    """Build one pair's read-optimized structures."""
    incidence = spread_incidence(domain, attribute, config)
    entity_ptr, entity_sites = _transpose_csr(incidence)
    curves = k_coverage_curves(
        incidence,
        ks=config.ks,
        checkpoints=np.arange(1, len(incidence.site_hosts) + 1, dtype=np.int64),
    )
    ranked = incidence.sites_by_size()
    top_hosts = tuple(
        incidence.site_hosts[int(s)] for s in ranked[:_TOP_HOSTS]
    )
    ids = incidence.entity_ids
    id_to_entity = (
        {entity_id: index for index, entity_id in enumerate(ids)}
        if ids is not None
        else {}
    )
    return PairIndex(
        domain=domain,
        attribute=attribute,
        incidence=incidence,
        entity_ptr=entity_ptr,
        entity_sites=entity_sites,
        host_to_site={
            host: site for site, host in enumerate(incidence.site_hosts)
        },
        id_to_entity=id_to_entity,
        coverage_ks=tuple(int(k) for k in curves.ks),
        coverage=curves.coverage,
        top_hosts=top_hosts,
    )


def _build_demand(site: str, config: ExperimentConfig) -> DemandTable:
    """Build one traffic site's demand-vs-reviews lookup table."""
    dataset = build_traffic_dataset(site, config)
    sources = {
        source: demand_vs_reviews(dataset.demand(source), dataset.reviews)
        for source in ("search", "browse")
    }
    return DemandTable(
        site=site,
        sources=sources,
        max_reviews=int(dataset.reviews.max()) if len(dataset.reviews) else 0,
    )


def manifest_identity(manifest: Manifest) -> str:
    """The index fingerprint a manifest would build to, without building.

    This is exactly the ``identity`` :func:`build_index` assigns — a
    pure function of the config and corpus inventory — so a hot-reload
    watcher can decide whether a rewritten ``manifest.json`` actually
    changes the serving index before paying for a rebuild.
    """
    return fingerprint(
        "serve-index",
        config=manifest.config,
        pairs=[list(pair) for pair in manifest.spread_pairs],
        traffic_sites=list(manifest.traffic_sites),
    )


def build_index(manifest: Manifest) -> ServeIndex:
    """Build the full in-memory serving index for a manifest's run.

    Routes every corpus through the cache-aware pipeline builders, so a
    warm artifact cache (the run's own) makes this fast while a cold one
    regenerates identical bytes.  The returned index is immutable and
    safe for lock-free concurrent reads.
    """
    started = time.perf_counter()
    pairs: dict[tuple[str, str], PairIndex] = {}
    default_attribute: dict[str, str] = {}
    for domain, attribute in manifest.spread_pairs:
        pairs[(domain, attribute)] = _build_pair(domain, attribute, manifest.config)
        default_attribute.setdefault(domain, attribute)
    demand = {
        site: _build_demand(site, manifest.config)
        for site in manifest.traffic_sites
    }
    identity = manifest_identity(manifest)
    return ServeIndex(
        config=manifest.config,
        pairs=pairs,
        default_attribute=default_attribute,
        demand=demand,
        identity=identity,
        build_seconds=time.perf_counter() - started,
    )
