"""Thread-safe request metrics for the serve subsystem.

``ServeMetrics`` aggregates request counts, status counts, and latency
histograms per endpoint, plus whole-process gauges (index build time).
Latencies go into :class:`LatencyHistogram`, a fixed set of log-spaced
buckets — observation is O(log buckets) under a lock, and quantile
estimates are read straight off the bucket boundaries, so `/metrics`
stays cheap no matter how many requests have been served.

Quantiles are *upper-bound* estimates: ``quantile(0.95)`` returns the
upper edge of the bucket containing the 95th-percentile observation.
That bias is deliberate — for capacity planning an overestimate fails
safe, and it keeps the histogram mergeable and bounded.  Exact
percentiles for benchmarking come from the load generator
(:mod:`repro.serve.loadgen`), which keeps every sample.
"""

from __future__ import annotations

import bisect
import threading

__all__ = ["LatencyHistogram", "ServeMetrics"]

# Bucket upper bounds in seconds: 100 µs .. ~13 s, ×2 per bucket, plus
# a catch-all overflow bucket.  17 buckets cover the realistic range of
# an in-memory query service.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(0.0001 * (2.0**i) for i in range(17))


class LatencyHistogram:
    """Fixed log-spaced latency histogram with upper-bound quantiles."""

    __slots__ = ("_counts", "_overflow", "_total_seconds", "_max_seconds", "_count")

    def __init__(self) -> None:
        """Create an empty histogram."""
        self._counts = [0] * len(_BUCKET_BOUNDS)
        self._overflow = 0
        self._total_seconds = 0.0
        self._max_seconds = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (non-negative, in seconds)."""
        value = max(0.0, float(seconds))
        index = bisect.bisect_left(_BUCKET_BOUNDS, value)
        if index >= len(_BUCKET_BOUNDS):
            self._overflow += 1
        else:
            self._counts[index] += 1
        self._total_seconds += value
        if value > self._max_seconds:
            self._max_seconds = value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def mean_seconds(self) -> float:
        """Mean observed latency in seconds (0.0 when empty)."""
        return self._total_seconds / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile in seconds.

        Returns the upper edge of the bucket holding the ``q``-th
        sample; overflow samples report the observed maximum.
        """
        if self._count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        target = max(1, int(q * self._count + 0.999999))
        running = 0
        for bound, bucket_count in zip(_BUCKET_BOUNDS, self._counts):
            running += bucket_count
            if running >= target:
                return bound
        return self._max_seconds

    def as_dict(self) -> dict[str, float | int]:
        """Summarize as a plain dict (milliseconds for readability)."""
        return {
            "count": self._count,
            "mean_ms": round(self.mean_seconds * 1000.0, 4),
            "p50_ms": round(self.quantile(0.50) * 1000.0, 4),
            "p95_ms": round(self.quantile(0.95) * 1000.0, 4),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 4),
            "max_ms": round(self._max_seconds * 1000.0, 4),
        }


class ServeMetrics:
    """Aggregated counters and latency histograms for the server.

    All mutation happens under one lock; `/metrics` snapshots are a
    consistent copy.  Endpoint names are the logical route names
    (``entity``, ``site``, ``coverage``, ``demand``, ``setcover``,
    ``healthz``, ``metrics``) rather than raw paths, so cardinality is
    bounded.
    """

    def __init__(self) -> None:
        """Create an empty metrics registry."""
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}  # guarded-by: _lock
        self._statuses: dict[str, dict[str, int]] = {}  # guarded-by: _lock
        self._latency: dict[str, LatencyHistogram] = {}  # guarded-by: _lock
        self._index_build_seconds = 0.0  # guarded-by: _lock
        self._index_swaps = 0  # guarded-by: _lock

    def set_index_build_seconds(self, seconds: float) -> None:
        """Record how long the in-memory indices took to build."""
        with self._lock:
            self._index_build_seconds = float(seconds)

    def count_index_swap(self) -> None:
        """Record one hot index reload (manifest-change swap)."""
        with self._lock:
            self._index_swaps += 1

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one completed request for ``endpoint``."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            per_status = self._statuses.setdefault(endpoint, {})
            key = str(int(status))
            per_status[key] = per_status.get(key, 0) + 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(seconds)

    def snapshot(self) -> dict[str, object]:
        """Return a consistent copy of all counters for `/metrics`."""
        with self._lock:
            endpoints = {
                name: {
                    "requests": self._requests.get(name, 0),
                    "statuses": dict(self._statuses.get(name, {})),
                    "latency": self._latency[name].as_dict(),
                }
                for name in sorted(self._latency)
            }
            return {
                "requests_total": sum(self._requests.values()),
                "index_build_seconds": round(self._index_build_seconds, 4),
                "index_swaps": self._index_swaps,
                "endpoints": endpoints,
            }
