"""A lean HTTP/1.1 shell tuned for the serve tier's hot path.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` spend most of a
cached request's budget inside generic request parsing (``readline``
loops, header objects, date formatting).  At the throughput the sharded
serve tier targets, that shell *is* the bottleneck — so workers run
this one instead: a thread-per-connection loop that

- reads into one per-connection buffer and scans for complete request
  heads (requests are GET-only, so a head is the whole request);
- handles **pipelined** requests back-to-back, batching every response
  produced from the same buffered chunk into a single ``sendall`` —
  the write syscall amortizes across the pipeline depth;
- answers through :meth:`repro.serve.server.ServeApp.handle`, so
  routing, caching, deadlines, metrics, and fault injection are the
  same code path the portable shell uses, byte for byte;
- honors keep-alive semantics: HTTP/1.1 persists unless the request
  says ``Connection: close``, HTTP/1.0 closes unless it says
  ``keep-alive``, and non-GET methods get a 501 and a close (a body we
  never parse must not poison the framing).

The worker id travels on the ``X-Repro-Worker`` response header so the
load generator can attribute every response to the shard that produced
it.  The listening socket is injectable, which is how
:mod:`repro.serve.sharding` binds ``SO_REUSEPORT`` sockets or feeds
router-dispatched connections via :meth:`process_connection`.
"""

from __future__ import annotations

import socket
import threading

from repro.serve.server import ServeApp

__all__ = ["FastHTTPServer"]

_RECV_SIZE = 1 << 16
#: A request head larger than this without a terminator is hostile.
_MAX_HEAD = 1 << 16

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    501: "Not Implemented",
    504: "Gateway Timeout",
}

_TERMINATOR = b"\r\n\r\n"


class FastHTTPServer:
    """Thread-per-connection pipelining HTTP shell over a `ServeApp`."""

    def __init__(
        self,
        app: ServeApp,
        sock: socket.socket | None = None,
        backlog: int = 512,
        bind: bool = True,
    ) -> None:
        """Wrap ``app``; bind from its settings unless ``sock`` is given.

        Args:
            app: The request handler (owns routing/caching/metrics).
            sock: An already-bound, already-listening socket to accept
                on (the sharding layer passes ``SO_REUSEPORT`` sockets
                here).  ``None`` binds ``app.settings.host:port``.
            backlog: Listen backlog when this class does the binding.
            bind: ``False`` creates a socketless server fed exclusively
                through :meth:`process_connection` (router workers).
        """
        self.app = app
        if sock is None and bind:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((app.settings.host, app.settings.port))
            sock.listen(backlog)
        self.socket = sock
        self.server_address = (
            sock.getsockname() if sock is not None else (app.settings.host, 0)
        )
        self._shutdown = threading.Event()
        self._connections = 0
        self._lock = threading.Lock()
        # Responses embed the worker id once; precompute the suffix.
        self._worker_suffix = (
            f"X-Repro-Worker: {app.worker_id}\r\n\r\n".encode("ascii")
        )

    # -- lifecycle ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` closes the socket."""
        if self.socket is None:
            raise RuntimeError(
                "socketless server: feed it via process_connection()"
            )
        while not self._shutdown.is_set():
            try:
                conn, __ = self.socket.accept()
            except OSError:
                break  # listener closed by shutdown()
            self.process_connection(conn)

    def shutdown(self) -> None:
        """Stop accepting and close the listener (idempotent)."""
        self._shutdown.set()
        if self.socket is not None:
            # A thread parked in accept() is not woken by close() alone;
            # poke it with a throwaway connection so it re-checks the flag.
            try:
                with socket.create_connection(
                    self.server_address[:2], timeout=1.0
                ):
                    pass
            except OSError:
                pass
            try:
                self.socket.close()
            except OSError:
                pass

    def process_connection(self, conn: socket.socket) -> None:
        """Serve one accepted connection on its own daemon thread.

        The sharding router calls this directly with connections whose
        file descriptors were passed from the supervisor process.
        """
        with self._lock:
            self._connections += 1
        thread = threading.Thread(
            target=self._serve_connection,
            args=(conn,),
            daemon=True,
            name="serve-conn",
        )
        thread.start()

    def stats(self) -> dict[str, int]:
        """Connections accepted so far (monotonic counter)."""
        with self._lock:
            return {"connections": self._connections}

    # -- the connection loop --------------------------------------------------

    def _respond(self, head: bytes, out: bytearray) -> bool:
        """Append the response for one request head; True to keep alive."""
        line_end = head.find(b"\r\n")
        request_line = head if line_end < 0 else head[:line_end]
        parts = request_line.split()
        if len(parts) != 3:
            self._append(out, 400, b'{"error":"malformed request line"}\n')
            return False
        method, target, version = parts
        lowered = head.lower()
        if version == b"HTTP/1.1":
            keep_alive = b"connection: close" not in lowered
        elif version == b"HTTP/1.0":
            keep_alive = b"connection: keep-alive" in lowered
        else:
            self._append(out, 400, b'{"error":"unsupported protocol"}\n')
            return False
        if method != b"GET":
            # A request body would desynchronize the buffer scan; close.
            self._append(out, 501, b'{"error":"GET only"}\n')
            return False
        status, body = self.app.handle(target.decode("latin-1"))
        self._append(out, status, body)
        return keep_alive

    def _append(self, out: bytearray, status: int, body: bytes) -> None:
        """Serialize one response onto the connection's output batch."""
        reason = _REASONS.get(status, "Status")
        out += (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        ).encode("ascii")
        out += self._worker_suffix
        out += body

    def _serve_connection(self, conn: socket.socket) -> None:
        """Buffer-scan loop: parse, handle, batch-write, repeat."""
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        buf = bytearray()
        out = bytearray()
        try:
            while True:
                # Drain every complete pipelined request already buffered.
                keep_alive = True
                while keep_alive:
                    end = buf.find(_TERMINATOR)
                    if end < 0:
                        if len(buf) > _MAX_HEAD:
                            self._append(
                                out, 400, b'{"error":"request head too large"}\n'
                            )
                            keep_alive = False
                        break
                    head = bytes(buf[: end + 2])
                    del buf[: end + 4]
                    keep_alive = self._respond(head, out)
                if out:
                    conn.sendall(out)
                    out = bytearray()
                if not keep_alive:
                    return
                chunk = conn.recv(_RECV_SIZE)
                if not chunk:
                    return
                buf += chunk
        except OSError:
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            try:
                conn.close()
            except OSError:
                pass
