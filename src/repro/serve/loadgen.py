"""Seeded load generators for the serve tier (``repro serve-bench``).

Two measurement models over the same deterministic request streams:

- **Closed loop** (:func:`run_load`, the PR4-compatible default): each
  client waits for a response before sending its next request over an
  ``http.client`` connection.  Latency is request-to-response;
  throughput is self-limiting — the server can never look overloaded
  because the clients slow down with it.
- **Open loop** (:func:`run_open_load`): requests are *scheduled* by a
  seeded Poisson arrival process at a configured offered rate and sent
  when their arrival time comes due, whether or not earlier responses
  are back.  Latency is completion minus **scheduled arrival**, so
  queueing delay (including generator lag — coordinated omission) is
  charged to the server.  :func:`find_knee` sweeps offered rates to
  locate the knee: the highest rate whose p99 stays under budget.

Determinism contract: the request stream is a pure function of
``(healthz summary, LoadPlan)``.  Each client derives its own seed with
the pipeline's CRC stream-derivation formula and draws from an
independent ``numpy`` generator, so streams are reproducible per client
regardless of thread interleaving; ``request_stream_sha256`` in the
report is the proof — two runs with the same seed against the same
index hash identically.  Open-loop arrival schedules extend the same
contract: each connection runs an independent seeded Poisson process
(their superposition is Poisson at the offered rate), so the full
(path, arrival) timeline is reproducible from the plan alone.

Responses carry the shard id in the ``X-Repro-Worker`` header; the
open-loop client records per-worker counts so a report shows exactly
how the kernel (or the round-robin router) spread the connections.

Popularity follows the paper's head/tail framing: entity picks are
Zipf-distributed over the catalog (rank 1 hottest), site picks are Zipf
over the size-ranked host head, and coverage depths are Zipf over
``t`` so shallow top-t queries dominate — the shape a real query
service absorbs.
"""

from __future__ import annotations

import collections
import gc
import hashlib
import http.client
import json
import socket
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.io import atomic_write_text

__all__ = [
    "LoadPlan",
    "LoadResult",
    "OpenLoadPlan",
    "OpenLoadResult",
    "build_open_schedule",
    "build_streams",
    "find_knee",
    "open_rate_summary",
    "run_load",
    "run_open_load",
    "stream_digest",
    "write_bench_report",
    "write_open_bench_report",
]

#: Endpoint mix (weights sum to 100): reads dominate, set cover is the
#: expensive minority that exercises batching and caching.
_ENDPOINT_WEIGHTS = (
    ("entity", 40),
    ("site", 20),
    ("coverage", 15),
    ("demand", 15),
    ("setcover", 10),
)

_SETCOVER_BUDGETS = (5, 10, 20, 50)
_REVIEW_COUNTS = (0, 1, 2, 4, 8, 16, 64, 256, 1024)
_DEMAND_SOURCES = ("search", "browse")

#: Status code recorded for client-side transport failures.
CLIENT_ERROR_STATUS = 599


@dataclass(frozen=True)
class LoadPlan:
    """Knobs of one load-generation run."""

    seed: int = 7
    clients: int = 4
    requests: int = 200
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


def _client_seed(plan: LoadPlan, client: int) -> int:
    """Per-client stream seed (same formula the pipeline uses)."""
    label = f"serve-bench:client:{client}"
    return (plan.seed * 7_368_787 + zlib.crc32(label.encode())) & 0x7FFFFFFF


def _zipf_probs(n: int, exponent: float) -> np.ndarray:
    """Zipf probability vector over ranks ``1..n``."""
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def build_streams(summary: dict, plan: LoadPlan) -> list[list[str]]:
    """Deterministic per-client request paths from a ``/healthz`` summary.

    Args:
        summary: The server's ``/healthz`` payload (``pairs`` with
            ``domain``/``attribute``/``n_entities``/``n_sites``/``ks``/
            ``top_hosts``, plus ``traffic_sites``).
        plan: Seed and sizing.

    Returns:
        ``plan.clients`` path lists whose lengths sum to
        ``plan.requests`` (earlier clients absorb the remainder).
    """
    pairs = summary["pairs"]
    traffic_sites = summary["traffic_sites"]
    if not pairs:
        raise ValueError("healthz summary lists no (domain, attribute) pairs")
    endpoints = [name for name, __ in _ENDPOINT_WEIGHTS]
    mix = np.asarray([w for __, w in _ENDPOINT_WEIGHTS], dtype=np.float64)
    mix /= mix.sum()
    probs_cache: dict[int, np.ndarray] = {}

    def zipf_pick(rng: np.random.Generator, n: int) -> int:
        if n not in probs_cache:
            probs_cache[n] = _zipf_probs(n, plan.zipf_exponent)
        return int(rng.choice(n, p=probs_cache[n]))

    base, remainder = divmod(plan.requests, plan.clients)
    streams: list[list[str]] = []
    for client in range(plan.clients):
        count = base + (1 if client < remainder else 0)
        rng = np.random.default_rng(_client_seed(plan, client))
        paths: list[str] = []
        for __ in range(count):
            endpoint = endpoints[int(rng.choice(len(endpoints), p=mix))]
            pair = pairs[int(rng.integers(len(pairs)))]
            domain, attribute = pair["domain"], pair["attribute"]
            if endpoint == "entity":
                entity = zipf_pick(rng, pair["n_entities"])
                paths.append(
                    f"/v1/entity/{domain}/{entity}/sites?attribute={attribute}"
                )
            elif endpoint == "site":
                hosts = pair["top_hosts"]
                host = hosts[zipf_pick(rng, len(hosts))]
                paths.append(
                    f"/v1/site/{host}/entities"
                    f"?domain={domain}&attribute={attribute}"
                )
            elif endpoint == "coverage":
                k = int(pair["ks"][int(rng.integers(len(pair["ks"])))])
                top_t = zipf_pick(rng, pair["n_sites"]) + 1
                paths.append(
                    f"/v1/coverage/{domain}"
                    f"?attribute={attribute}&k={k}&t={top_t}"
                )
            elif endpoint == "demand":
                site = traffic_sites[int(rng.integers(len(traffic_sites)))]
                reviews = _REVIEW_COUNTS[int(rng.integers(len(_REVIEW_COUNTS)))]
                source = _DEMAND_SOURCES[int(rng.integers(2))]
                paths.append(
                    f"/v1/demand/{site}?n_reviews={reviews}&source={source}"
                )
            else:  # setcover
                budget = _SETCOVER_BUDGETS[
                    int(rng.integers(len(_SETCOVER_BUDGETS)))
                ]
                paths.append(
                    f"/v1/setcover/{domain}"
                    f"?attribute={attribute}&budget={budget}"
                )
        streams.append(paths)
    return streams


def stream_digest(streams: list[list[str]]) -> str:
    """sha256 over the full request stream (client-major order)."""
    hasher = hashlib.sha256()
    for client, paths in enumerate(streams):
        for path in paths:
            hasher.update(f"{client}:{path}\n".encode("utf-8"))
    return hasher.hexdigest()


def _endpoint_of(path: str) -> str:
    """Logical endpoint name of a request path (metrics cardinality)."""
    segments = [s for s in path.split("?", 1)[0].split("/") if s]
    if len(segments) >= 2 and segments[0] == "v1":
        return segments[1]
    return segments[0] if segments else "unknown"


@dataclass
class LoadResult:
    """Measured outcome of one closed-loop run."""

    wall_seconds: float
    stream_sha256: str
    latencies: dict[str, list[float]] = field(repr=False, default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0

    @property
    def total_requests(self) -> int:
        """Requests completed (including error responses)."""
        return sum(len(samples) for samples in self.latencies.values())

    @property
    def throughput_rps(self) -> float:
        """Aggregate requests per second over the wall-clock window."""
        return self.total_requests / self.wall_seconds if self.wall_seconds else 0.0

    def all_latencies(self) -> list[float]:
        """Every latency sample, across endpoints."""
        merged: list[float] = []
        for samples in self.latencies.values():
            merged.extend(samples)
        return merged


def _percentile(samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile of a sample list (0.0 when empty)."""
    if not samples:
        return 0.0
    ranked = sorted(samples)
    rank = max(1, int(np.ceil(q * len(ranked))))
    return ranked[rank - 1]


def _latency_summary(samples: list[float]) -> dict[str, float]:
    """p50/p95/p99/mean/max in milliseconds."""
    if not samples:
        return {name: 0.0 for name in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms")}
    return {
        "p50_ms": round(_percentile(samples, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(samples, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000.0, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1000.0, 3),
        "max_ms": round(max(samples) * 1000.0, 3),
    }


def run_load(
    host: str,
    port: int,
    streams: list[list[str]],
    timeout: float = 30.0,
    keep_alive: bool = True,
) -> LoadResult:
    """Drive the request streams closed-loop; one thread per client.

    Each client owns one pooled keep-alive connection (re-opened after
    a transport failure, with the failure recorded as status 599) and
    issues its stream strictly in order, waiting for each response —
    the classic closed-loop model, so measured latency includes the
    full server-side queueing the concurrency level induces.

    ``keep_alive=False`` reverts to one connection per request
    (``Connection: close``), the PR4 behavior — useful for measuring
    exactly what connection reuse buys.  The request streams (and so
    the printed stream sha256) are identical either way.
    """
    lock = threading.Lock()
    result = LoadResult(wall_seconds=0.0, stream_sha256=stream_digest(streams))

    def record(endpoint: str, status: int, seconds: float) -> None:
        with lock:
            result.latencies.setdefault(endpoint, []).append(seconds)
            key = str(status)
            result.statuses[key] = result.statuses.get(key, 0) + 1
            if status == CLIENT_ERROR_STATUS:
                result.transport_errors += 1

    close_header = {} if keep_alive else {"Connection": "close"}

    def client_loop(paths: list[str]) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            for path in paths:
                started = time.perf_counter()
                try:
                    connection.request("GET", path, headers=close_header)
                    response = connection.getresponse()
                    response.read()
                    status = response.status
                except (OSError, http.client.HTTPException):
                    status = CLIENT_ERROR_STATUS
                if status == CLIENT_ERROR_STATUS or not keep_alive:
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                record(
                    _endpoint_of(path), status, time.perf_counter() - started
                )
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client_loop, args=(paths,), daemon=True)
        for paths in streams
        if paths
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.perf_counter() - started
    return result


def write_bench_report(
    path: str | Path,
    plan: LoadPlan,
    result: LoadResult,
    server_metrics: dict | None = None,
    target: str = "",
    rss_mb: float | None = None,
) -> dict:
    """Write the BENCH_PR4-style JSON report; returns the payload.

    ``rss_mb`` is the server-side peak resident set (max over workers,
    from :func:`repro.perf.peak_rss_mb`) — the storage-tier benchmarks
    compare backends on it.
    """
    payload = {
        "benchmark": "repro serve closed-loop load generator",
        "target": target,
        "plan": {
            "seed": plan.seed,
            "clients": plan.clients,
            "requests": plan.requests,
            "zipf_exponent": plan.zipf_exponent,
        },
        "request_stream_sha256": result.stream_sha256,
        "wall_seconds": round(result.wall_seconds, 3),
        "throughput_rps": round(result.throughput_rps, 2),
        "latency_ms": _latency_summary(result.all_latencies()),
        "per_endpoint": {
            endpoint: {
                "count": len(samples),
                **_latency_summary(samples),
            }
            for endpoint, samples in sorted(result.latencies.items())
        },
        "statuses": dict(sorted(result.statuses.items())),
        "transport_errors": result.transport_errors,
    }
    if server_metrics is not None:
        payload["server_metrics"] = server_metrics
    if rss_mb is not None:
        payload["rss_mb"] = rss_mb
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- open-loop generation ------------------------------------------------------


@dataclass(frozen=True)
class OpenLoadPlan:
    """Knobs of one open-loop run (offered rate, not concurrency)."""

    seed: int = 7
    rate: float = 2000.0
    duration_seconds: float = 2.0
    connections: int = 2
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")

    @property
    def requests(self) -> int:
        """Requests scheduled over the run (``rate × duration``)."""
        return max(1, round(self.rate * self.duration_seconds))

    def closed_plan(self) -> LoadPlan:
        """The equivalent :class:`LoadPlan` (stream generation reuse)."""
        return LoadPlan(
            seed=self.seed,
            clients=self.connections,
            requests=self.requests,
            zipf_exponent=self.zipf_exponent,
        )

    def at_rate(self, rate: float) -> "OpenLoadPlan":
        """This plan with a different offered rate (sweep steps)."""
        return OpenLoadPlan(
            seed=self.seed,
            rate=rate,
            duration_seconds=self.duration_seconds,
            connections=self.connections,
            zipf_exponent=self.zipf_exponent,
        )


def _connection_seed(plan: OpenLoadPlan, connection: int) -> int:
    """Per-connection arrival-stream seed (CRC derivation formula)."""
    label = f"serve-bench:arrivals:{connection}"
    return (plan.seed * 7_368_787 + zlib.crc32(label.encode())) & 0x7FFFFFFF


def build_open_schedule(plan: OpenLoadPlan) -> list[np.ndarray]:
    """Per-connection Poisson arrival times (seconds from run start).

    Each connection draws its own exponential inter-arrivals at
    ``rate / connections`` from an independent seeded generator — the
    superposition of the per-connection processes is Poisson at the
    offered rate, and every connection's timeline is reproducible on
    its own.  Lengths match the per-connection stream lengths produced
    by :func:`build_streams` for :meth:`OpenLoadPlan.closed_plan`.
    """
    closed = plan.closed_plan()
    base, remainder = divmod(closed.requests, closed.clients)
    per_connection_rate = plan.rate / plan.connections
    schedules: list[np.ndarray] = []
    for connection in range(plan.connections):
        count = base + (1 if connection < remainder else 0)
        rng = np.random.default_rng(_connection_seed(plan, connection))
        gaps = rng.exponential(1.0 / per_connection_rate, count)
        schedules.append(np.cumsum(gaps))
    return schedules


@dataclass
class OpenLoadResult:
    """Measured outcome of one open-loop run."""

    offered_rate: float
    wall_seconds: float
    stream_sha256: str
    latencies: dict[str, list[float]] = field(repr=False, default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    worker_requests: dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0

    @property
    def total_requests(self) -> int:
        """Requests completed (including error responses)."""
        return sum(len(samples) for samples in self.latencies.values())

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second over the wall-clock window."""
        return self.total_requests / self.wall_seconds if self.wall_seconds else 0.0

    def all_latencies(self) -> list[float]:
        """Every latency sample (completion − scheduled arrival)."""
        merged: list[float] = []
        for samples in self.latencies.values():
            merged.extend(samples)
        return merged


class _ResponseReader:
    """Minimal HTTP/1.x response scanner over a raw socket."""

    __slots__ = ("sock", "buf")

    def __init__(self, sock: socket.socket) -> None:
        """Wrap ``sock``; responses are read strictly in order."""
        self.sock = sock
        self.buf = bytearray()

    def _fill(self) -> None:
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self.buf += chunk

    def next_response(self) -> tuple[int, str | None]:
        """Read one response; returns ``(status, worker_id_header)``."""
        while True:
            end = self.buf.find(b"\r\n\r\n")
            if end >= 0:
                break
            self._fill()
        head = bytes(self.buf[:end])
        del self.buf[: end + 4]
        lines = head.split(b"\r\n")
        status = int(lines[0].split()[1])
        length = 0
        worker: str | None = None
        for line in lines[1:]:
            lowered = line.lower()
            if lowered.startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
            elif lowered.startswith(b"x-repro-worker:"):
                worker = line.split(b":", 1)[1].strip().decode("ascii")
        while len(self.buf) < length:
            self._fill()
        del self.buf[:length]
        return status, worker


def run_open_load(
    host: str,
    port: int,
    streams: list[list[str]],
    schedules: list[np.ndarray],
    offered_rate: float,
    timeout: float = 30.0,
) -> OpenLoadResult:
    """Drive the streams open-loop against ``host:port``.

    Connections are established sequentially **before** any traffic
    starts (so round-robin routers assign connection ``i`` to worker
    ``i mod W`` deterministically), then each gets a writer thread that
    sends every request the moment its scheduled arrival comes due —
    never waiting for responses — and a reader thread that matches
    responses FIFO (the server answers each connection in order) and
    records latency as completion minus *scheduled* arrival.  A
    generator running behind schedule therefore inflates latency rather
    than silently shedding load: coordinated omission is charged, not
    hidden.

    Args:
        host: Server host.
        port: Server port.
        streams: Per-connection request paths (:func:`build_streams`).
        schedules: Per-connection arrival times
            (:func:`build_open_schedule`); shapes must match ``streams``.
        offered_rate: The offered rate the schedules encode (recorded
            in the result).
        timeout: Socket timeout for connect/read.

    Returns:
        An :class:`OpenLoadResult`; requests left unanswered by a
        transport failure are counted as status 599 without latency
        samples.
    """
    if len(streams) != len(schedules):
        raise ValueError("streams and schedules must align per connection")
    for paths, times in zip(streams, schedules):
        if len(paths) != len(times):
            raise ValueError("per-connection stream/schedule length mismatch")

    lock = threading.Lock()
    result = OpenLoadResult(
        offered_rate=offered_rate,
        wall_seconds=0.0,
        stream_sha256=stream_digest(streams),
    )

    def record(endpoint: str, status: int, seconds: float, worker: str | None) -> None:
        with lock:
            result.latencies.setdefault(endpoint, []).append(seconds)
            key = str(status)
            result.statuses[key] = result.statuses.get(key, 0) + 1
            if worker is not None:
                result.worker_requests[worker] = (
                    result.worker_requests.get(worker, 0) + 1
                )

    def record_failures(count: int) -> None:
        with lock:
            key = str(CLIENT_ERROR_STATUS)
            result.statuses[key] = result.statuses.get(key, 0) + count
            result.transport_errors += count

    sockets: list[socket.socket] = []
    for __ in streams:
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        sockets.append(sock)

    start = time.perf_counter()

    def writer(sock: socket.socket, paths, times, pending) -> None:
        payloads = [
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
            for path in paths
        ]
        i, n = 0, len(paths)
        try:
            while i < n:
                now = time.perf_counter() - start
                if times[i] > now:
                    # Clamp at 0: the clock can advance past times[i]
                    # between the check and the subtraction, and a
                    # negative argument raises ValueError.
                    time.sleep(min(0.002, max(0.0, times[i] - now)))
                    continue
                # Send every request already due as one write — natural
                # pipelining when the generator runs behind schedule.
                batch = bytearray()
                while i < n and times[i] <= now:
                    pending.append((paths[i], float(times[i])))
                    batch += payloads[i]
                    i += 1
                sock.sendall(batch)
        except OSError:
            pass  # the reader observes and accounts for the failure

    def reader(sock: socket.socket, total: int, pending) -> None:
        parser = _ResponseReader(sock)
        completed = 0
        try:
            while completed < total:
                status, worker = parser.next_response()
                finished = time.perf_counter() - start
                path, scheduled = pending.popleft()
                record(_endpoint_of(path), status, finished - scheduled, worker)
                completed += 1
        except (OSError, ConnectionError, ValueError, IndexError):
            record_failures(total - completed)

    threads: list[threading.Thread] = []
    for sock, paths, times in zip(sockets, streams, schedules):
        pending: collections.deque = collections.deque()
        threads.append(
            threading.Thread(
                target=writer, args=(sock, paths, times, pending), daemon=True
            )
        )
        threads.append(
            threading.Thread(
                target=reader, args=(sock, len(paths), pending), daemon=True
            )
        )
    # A cyclic-GC pass over the generator's growing sample lists stalls
    # every writer thread at once — tens of milliseconds charged to
    # whatever requests were in flight.  Nothing here allocates cycles,
    # so pause the collector for the measured window.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        if gc_was_enabled:
            gc.enable()
    result.wall_seconds = time.perf_counter() - start
    for sock in sockets:
        try:
            sock.close()
        except OSError:
            pass
    return result


def open_rate_summary(result: OpenLoadResult) -> dict:
    """One sweep row: rate, achieved throughput, latency, errors."""
    samples = result.all_latencies()
    return {
        "offered_rate_rps": round(result.offered_rate, 2),
        "throughput_rps": round(result.throughput_rps, 2),
        "completed": result.total_requests,
        "transport_errors": result.transport_errors,
        "p50_ms": round(_percentile(samples, 0.50) * 1000.0, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000.0, 3),
    }


def find_knee(
    host: str,
    port: int,
    summary: dict,
    plan: OpenLoadPlan,
    rates: list[float],
    p99_budget_ms: float,
    timeout: float = 30.0,
) -> tuple[dict, OpenLoadResult | None]:
    """Sweep offered rates ascending; find the p99-under-budget knee.

    A rate *passes* when its open-loop p99 (against scheduled arrivals)
    stays within ``p99_budget_ms`` and no transport errors occurred.
    The sweep stops at the first failing rate — beyond saturation the
    latency-vs-rate curve only gets worse — and the knee is the last
    passing rate.

    Returns:
        A ``(sweep, knee_result)`` pair.  ``sweep`` is the JSON-safe
        ``{"p99_budget_ms", "rates": [row...], "knee_rate_rps",
        "knee": row | None}`` record where each row is
        :func:`open_rate_summary` output plus ``"ok"``.
        ``knee_result`` is the full :class:`OpenLoadResult` of the knee
        rung (None when no rate passed) — report *that* run rather than
        re-measuring, so the headline numbers are the very samples that
        established the knee.
    """
    if not rates:
        raise ValueError("need at least one rate to sweep")
    rows: list[dict] = []
    knee: dict | None = None
    knee_result: OpenLoadResult | None = None
    for rate in sorted(rates):
        step = plan.at_rate(rate)
        streams = build_streams(summary, step.closed_plan())
        schedules = build_open_schedule(step)
        result = run_open_load(
            host, port, streams, schedules, rate, timeout=timeout
        )
        row = open_rate_summary(result)
        row["ok"] = (
            row["p99_ms"] <= p99_budget_ms and result.transport_errors == 0
        )
        rows.append(row)
        if row["ok"]:
            knee = row
            knee_result = result
        else:
            break
    sweep = {
        "p99_budget_ms": p99_budget_ms,
        "rates": rows,
        "knee_rate_rps": knee["offered_rate_rps"] if knee else 0.0,
        "knee": knee,
    }
    return sweep, knee_result


def write_open_bench_report(
    path: str | Path,
    plan: OpenLoadPlan,
    result: OpenLoadResult,
    sweep: dict | None = None,
    server_metrics: dict | None = None,
    target: str = "",
    warmup: dict | None = None,
    rss_mb: float | None = None,
) -> dict:
    """Write the BENCH_PR7-style open-loop JSON report; returns it.

    ``rss_mb``: server-side peak resident set in MB (max over workers).
    """
    payload = {
        "benchmark": "repro serve open-loop load generator",
        "mode": "open",
        "target": target,
        "plan": {
            "seed": plan.seed,
            "rate": plan.rate,
            "duration_seconds": plan.duration_seconds,
            "connections": plan.connections,
            "zipf_exponent": plan.zipf_exponent,
        },
        "request_stream_sha256": result.stream_sha256,
        "offered_rate_rps": round(result.offered_rate, 2),
        "wall_seconds": round(result.wall_seconds, 3),
        "throughput_rps": round(result.throughput_rps, 2),
        "latency_ms": _latency_summary(result.all_latencies()),
        "per_endpoint": {
            endpoint: {
                "count": len(samples),
                **_latency_summary(samples),
            }
            for endpoint, samples in sorted(result.latencies.items())
        },
        "per_worker": dict(sorted(result.worker_requests.items())),
        "statuses": dict(sorted(result.statuses.items())),
        "transport_errors": result.transport_errors,
    }
    if sweep is not None:
        payload["sweep"] = sweep
    if server_metrics is not None:
        payload["server_metrics"] = server_metrics
    if warmup is not None:
        payload["warmup"] = warmup
    if rss_mb is not None:
        payload["rss_mb"] = rss_mb
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload
