"""Seeded closed-loop load generator (``repro serve-bench``).

Builds a deterministic request stream from the server's own ``/healthz``
shape summary plus a master seed, then drives it closed-loop (each
client waits for a response before sending its next request) over
``http.client`` connections and reports exact p50/p95/p99 latency and
throughput to ``BENCH_PR4.json``.

Determinism contract: the request stream is a pure function of
``(healthz summary, LoadPlan)``.  Each client derives its own seed with
the pipeline's CRC stream-derivation formula and draws from an
independent ``numpy`` generator, so streams are reproducible per client
regardless of thread interleaving; ``request_stream_sha256`` in the
report is the proof — two runs with the same seed against the same
index hash identically.

Popularity follows the paper's head/tail framing: entity picks are
Zipf-distributed over the catalog (rank 1 hottest), site picks are Zipf
over the size-ranked host head, and coverage depths are Zipf over
``t`` so shallow top-t queries dominate — the shape a real query
service absorbs.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.io import atomic_write_text

__all__ = [
    "LoadPlan",
    "LoadResult",
    "build_streams",
    "run_load",
    "stream_digest",
    "write_bench_report",
]

#: Endpoint mix (weights sum to 100): reads dominate, set cover is the
#: expensive minority that exercises batching and caching.
_ENDPOINT_WEIGHTS = (
    ("entity", 40),
    ("site", 20),
    ("coverage", 15),
    ("demand", 15),
    ("setcover", 10),
)

_SETCOVER_BUDGETS = (5, 10, 20, 50)
_REVIEW_COUNTS = (0, 1, 2, 4, 8, 16, 64, 256, 1024)
_DEMAND_SOURCES = ("search", "browse")

#: Status code recorded for client-side transport failures.
CLIENT_ERROR_STATUS = 599


@dataclass(frozen=True)
class LoadPlan:
    """Knobs of one load-generation run."""

    seed: int = 7
    clients: int = 4
    requests: int = 200
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


def _client_seed(plan: LoadPlan, client: int) -> int:
    """Per-client stream seed (same formula the pipeline uses)."""
    label = f"serve-bench:client:{client}"
    return (plan.seed * 7_368_787 + zlib.crc32(label.encode())) & 0x7FFFFFFF


def _zipf_probs(n: int, exponent: float) -> np.ndarray:
    """Zipf probability vector over ranks ``1..n``."""
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def build_streams(summary: dict, plan: LoadPlan) -> list[list[str]]:
    """Deterministic per-client request paths from a ``/healthz`` summary.

    Args:
        summary: The server's ``/healthz`` payload (``pairs`` with
            ``domain``/``attribute``/``n_entities``/``n_sites``/``ks``/
            ``top_hosts``, plus ``traffic_sites``).
        plan: Seed and sizing.

    Returns:
        ``plan.clients`` path lists whose lengths sum to
        ``plan.requests`` (earlier clients absorb the remainder).
    """
    pairs = summary["pairs"]
    traffic_sites = summary["traffic_sites"]
    if not pairs:
        raise ValueError("healthz summary lists no (domain, attribute) pairs")
    endpoints = [name for name, __ in _ENDPOINT_WEIGHTS]
    mix = np.asarray([w for __, w in _ENDPOINT_WEIGHTS], dtype=np.float64)
    mix /= mix.sum()
    probs_cache: dict[int, np.ndarray] = {}

    def zipf_pick(rng: np.random.Generator, n: int) -> int:
        if n not in probs_cache:
            probs_cache[n] = _zipf_probs(n, plan.zipf_exponent)
        return int(rng.choice(n, p=probs_cache[n]))

    base, remainder = divmod(plan.requests, plan.clients)
    streams: list[list[str]] = []
    for client in range(plan.clients):
        count = base + (1 if client < remainder else 0)
        rng = np.random.default_rng(_client_seed(plan, client))
        paths: list[str] = []
        for __ in range(count):
            endpoint = endpoints[int(rng.choice(len(endpoints), p=mix))]
            pair = pairs[int(rng.integers(len(pairs)))]
            domain, attribute = pair["domain"], pair["attribute"]
            if endpoint == "entity":
                entity = zipf_pick(rng, pair["n_entities"])
                paths.append(
                    f"/v1/entity/{domain}/{entity}/sites?attribute={attribute}"
                )
            elif endpoint == "site":
                hosts = pair["top_hosts"]
                host = hosts[zipf_pick(rng, len(hosts))]
                paths.append(
                    f"/v1/site/{host}/entities"
                    f"?domain={domain}&attribute={attribute}"
                )
            elif endpoint == "coverage":
                k = int(pair["ks"][int(rng.integers(len(pair["ks"])))])
                top_t = zipf_pick(rng, pair["n_sites"]) + 1
                paths.append(
                    f"/v1/coverage/{domain}"
                    f"?attribute={attribute}&k={k}&t={top_t}"
                )
            elif endpoint == "demand":
                site = traffic_sites[int(rng.integers(len(traffic_sites)))]
                reviews = _REVIEW_COUNTS[int(rng.integers(len(_REVIEW_COUNTS)))]
                source = _DEMAND_SOURCES[int(rng.integers(2))]
                paths.append(
                    f"/v1/demand/{site}?n_reviews={reviews}&source={source}"
                )
            else:  # setcover
                budget = _SETCOVER_BUDGETS[
                    int(rng.integers(len(_SETCOVER_BUDGETS)))
                ]
                paths.append(
                    f"/v1/setcover/{domain}"
                    f"?attribute={attribute}&budget={budget}"
                )
        streams.append(paths)
    return streams


def stream_digest(streams: list[list[str]]) -> str:
    """sha256 over the full request stream (client-major order)."""
    hasher = hashlib.sha256()
    for client, paths in enumerate(streams):
        for path in paths:
            hasher.update(f"{client}:{path}\n".encode("utf-8"))
    return hasher.hexdigest()


def _endpoint_of(path: str) -> str:
    """Logical endpoint name of a request path (metrics cardinality)."""
    segments = [s for s in path.split("?", 1)[0].split("/") if s]
    if len(segments) >= 2 and segments[0] == "v1":
        return segments[1]
    return segments[0] if segments else "unknown"


@dataclass
class LoadResult:
    """Measured outcome of one closed-loop run."""

    wall_seconds: float
    stream_sha256: str
    latencies: dict[str, list[float]] = field(repr=False, default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0

    @property
    def total_requests(self) -> int:
        """Requests completed (including error responses)."""
        return sum(len(samples) for samples in self.latencies.values())

    @property
    def throughput_rps(self) -> float:
        """Aggregate requests per second over the wall-clock window."""
        return self.total_requests / self.wall_seconds if self.wall_seconds else 0.0

    def all_latencies(self) -> list[float]:
        """Every latency sample, across endpoints."""
        merged: list[float] = []
        for samples in self.latencies.values():
            merged.extend(samples)
        return merged


def _percentile(samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile of a sample list (0.0 when empty)."""
    if not samples:
        return 0.0
    ranked = sorted(samples)
    rank = max(1, int(np.ceil(q * len(ranked))))
    return ranked[rank - 1]


def _latency_summary(samples: list[float]) -> dict[str, float]:
    """p50/p95/p99/mean/max in milliseconds."""
    if not samples:
        return {name: 0.0 for name in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms")}
    return {
        "p50_ms": round(_percentile(samples, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(samples, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(samples, 0.99) * 1000.0, 3),
        "mean_ms": round(sum(samples) / len(samples) * 1000.0, 3),
        "max_ms": round(max(samples) * 1000.0, 3),
    }


def run_load(
    host: str,
    port: int,
    streams: list[list[str]],
    timeout: float = 30.0,
) -> LoadResult:
    """Drive the request streams closed-loop; one thread per client.

    Each client owns one keep-alive connection (re-opened after a
    transport failure, with the failure recorded as status 599) and
    issues its stream strictly in order, waiting for each response —
    the classic closed-loop model, so measured latency includes the
    full server-side queueing the concurrency level induces.
    """
    lock = threading.Lock()
    result = LoadResult(wall_seconds=0.0, stream_sha256=stream_digest(streams))

    def record(endpoint: str, status: int, seconds: float) -> None:
        with lock:
            result.latencies.setdefault(endpoint, []).append(seconds)
            key = str(status)
            result.statuses[key] = result.statuses.get(key, 0) + 1
            if status == CLIENT_ERROR_STATUS:
                result.transport_errors += 1

    def client_loop(paths: list[str]) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            for path in paths:
                started = time.perf_counter()
                try:
                    connection.request("GET", path)
                    response = connection.getresponse()
                    response.read()
                    status = response.status
                except (OSError, http.client.HTTPException):
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    status = CLIENT_ERROR_STATUS
                record(
                    _endpoint_of(path), status, time.perf_counter() - started
                )
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client_loop, args=(paths,), daemon=True)
        for paths in streams
        if paths
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.wall_seconds = time.perf_counter() - started
    return result


def write_bench_report(
    path: str | Path,
    plan: LoadPlan,
    result: LoadResult,
    server_metrics: dict | None = None,
    target: str = "",
) -> dict:
    """Write the BENCH_PR4-style JSON report; returns the payload."""
    payload = {
        "benchmark": "repro serve closed-loop load generator",
        "target": target,
        "plan": {
            "seed": plan.seed,
            "clients": plan.clients,
            "requests": plan.requests,
            "zipf_exponent": plan.zipf_exponent,
        },
        "request_stream_sha256": result.stream_sha256,
        "wall_seconds": round(result.wall_seconds, 3),
        "throughput_rps": round(result.throughput_rps, 2),
        "latency_ms": _latency_summary(result.all_latencies()),
        "per_endpoint": {
            endpoint: {
                "count": len(samples),
                **_latency_summary(samples),
            }
            for endpoint, samples in sorted(result.latencies.items())
        },
        "statuses": dict(sorted(result.statuses.items())),
        "transport_errors": result.transport_errors,
    }
    if server_metrics is not None:
        payload["server_metrics"] = server_metrics
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload
