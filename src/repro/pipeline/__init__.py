"""Experiment pipeline: one runner per table and figure of the paper.

Each ``run_*`` function reproduces one artifact of the paper's
evaluation on the synthetic substrate, returning a result object that
can render itself as ASCII (terminal) and export CSV series.  The
benchmarks in ``benchmarks/`` and the scripts in ``examples/`` are thin
wrappers over these runners.

The package exports its public names lazily (PEP 562): eagerly pulling
``experiments``/``extensions`` costs ~11 MB of RSS and ~100 ms, and the
serve/store tiers import ``repro.pipeline.config`` for the manifest
contract without needing any of it.  ``from repro.pipeline import
run_spread`` still works exactly as before — the submodule is imported
on first attribute access.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.pipeline.config import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    ExecutionSettings,
    ExperimentConfig,
)

__all__ = [
    "DiscoveryStudy",
    "ExecutionSettings",
    "ExperimentConfig",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "ReviewSpreadResult",
    "StalenessStudy",
    "run_discovery_study",
    "run_redundancy_study",
    "run_staleness_study",
    "run_user_tail_study",
    "SetCoverResult",
    "SpreadResult",
    "TrafficDataset",
    "build_traffic_dataset",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_spread",
    "run_spread_via_extraction",
    "run_table1",
    "run_table2",
    "spread_incidence",
]

# Lazily-exported name -> providing submodule (PEP 562).
_LAZY_EXPORTS = {
    name: "repro.pipeline.extensions"
    for name in (
        "DiscoveryStudy",
        "StalenessStudy",
        "run_discovery_study",
        "run_redundancy_study",
        "run_staleness_study",
        "run_user_tail_study",
    )
}
_LAZY_EXPORTS.update(
    {
        name: "repro.pipeline.experiments"
        for name in (
            "ReviewSpreadResult",
            "SetCoverResult",
            "SpreadResult",
            "TrafficDataset",
            "build_traffic_dataset",
            "run_figure1",
            "run_figure2",
            "run_figure3",
            "run_figure4",
            "run_figure5",
            "run_figure6",
            "run_figure7",
            "run_figure8",
            "run_figure9",
            "run_spread",
            "run_spread_via_extraction",
            "run_table1",
            "run_table2",
            "spread_incidence",
        )
    }
)
_SUBMODULES = frozenset({"config", "experiments", "extensions", "runall"})


def __getattr__(name: str) -> Any:
    if name in _LAZY_EXPORTS:
        value = getattr(importlib.import_module(_LAZY_EXPORTS[name]), name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.pipeline.{name}")
    raise AttributeError(f"module 'repro.pipeline' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS) | set(_SUBMODULES))
