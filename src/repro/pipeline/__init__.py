"""Experiment pipeline: one runner per table and figure of the paper.

Each ``run_*`` function reproduces one artifact of the paper's
evaluation on the synthetic substrate, returning a result object that
can render itself as ASCII (terminal) and export CSV series.  The
benchmarks in ``benchmarks/`` and the scripts in ``examples/`` are thin
wrappers over these runners.
"""

from repro.pipeline.config import ExecutionSettings, ExperimentConfig
from repro.pipeline.extensions import (
    DiscoveryStudy,
    StalenessStudy,
    run_discovery_study,
    run_redundancy_study,
    run_staleness_study,
    run_user_tail_study,
)
from repro.pipeline.experiments import (
    ReviewSpreadResult,
    SetCoverResult,
    SpreadResult,
    TrafficDataset,
    build_traffic_dataset,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_spread,
    run_spread_via_extraction,
    run_table1,
    run_table2,
    spread_incidence,
)

__all__ = [
    "DiscoveryStudy",
    "ExecutionSettings",
    "ExperimentConfig",
    "ReviewSpreadResult",
    "StalenessStudy",
    "run_discovery_study",
    "run_redundancy_study",
    "run_staleness_study",
    "run_user_tail_study",
    "SetCoverResult",
    "SpreadResult",
    "TrafficDataset",
    "build_traffic_dataset",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_spread",
    "run_spread_via_extraction",
    "run_table1",
    "run_table2",
    "spread_incidence",
]
