"""Runners for every table and figure in the paper's evaluation.

The mapping (see DESIGN.md for the full index):

- Table 1  → :func:`run_table1`
- Figure 1 → :func:`run_figure1` (phone k-coverage, 8 domains)
- Figure 2 → :func:`run_figure2` (homepage k-coverage, 8 domains)
- Figure 3 → :func:`run_figure3` (book ISBN coverage)
- Figure 4 → :func:`run_figure4` (restaurant reviews: k-coverage and
  aggregate-review coverage)
- Figure 5 → :func:`run_figure5` (greedy set cover vs. size order)
- Figure 6 → :func:`run_figure6` (demand CDF/PDF, search & browse)
- Figure 7 → :func:`run_figure7` (normalized demand vs. #reviews)
- Figure 8 → :func:`run_figure8` (relative value-add VA(n)/VA(0))
- Table 2  → :func:`run_table2` (graph metrics per domain/attribute)
- Figure 9 → :func:`run_figure9` (robustness after removing top-k)

All runners are deterministic in the :class:`ExperimentConfig` seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.coverage import (
    CoverageCurves,
    aggregate_coverage_curve,
    k_coverage_curves,
)
from repro.core.demand import DemandCurves
from repro.core.graph import GraphMetrics, robustness_curve
from repro.core.incidence import BipartiteIncidence
from repro.core.setcover import greedy_coverage_curve
from repro.core.valueadd import ValueAddCurve, demand_vs_reviews, value_add_curve
from repro.entities.books import BookGenerator
from repro.entities.business import BusinessGenerator
from repro.entities.catalog import EntityDatabase
from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
    LOCAL_BUSINESS_DOMAINS,
    table1_rows,
)
from repro.extract.runner import ExtractionRunner
from repro.perf import active_cache, fingerprint
from repro.pipeline.config import ExperimentConfig
from repro.report.figures import ascii_plot
from repro.report.tables import ascii_table
from repro.traffic.demandmodel import get_site_profile
from repro.traffic.logs import TrafficLogGenerator, unique_cookie_demand
from repro.webgen.corpus import CorpusBuilder
from repro.webgen.profiles import get_profile

__all__ = [
    "ReviewSpreadResult",
    "SetCoverResult",
    "SpreadResult",
    "TrafficDataset",
    "build_traffic_dataset",
    "format_table2",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_spread",
    "run_spread_via_extraction",
    "run_table1",
    "run_table2",
    "spread_incidence",
]

TRAFFIC_SITES = ("imdb", "amazon", "yelp")


def _stream_seed(config: ExperimentConfig, label: str) -> int:
    """Derive a deterministic per-experiment seed from the master seed."""
    return (config.seed * 7_368_787 + zlib.crc32(label.encode())) & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# Cache-aware artifact builders
# ---------------------------------------------------------------------------
#
# Each builder is a pure function of its fingerprinted inputs, so when
# an artifact cache is installed (repro.perf.configure_cache) a hit is
# exactly — byte for byte — what a cold run would regenerate.  With no
# cache installed every builder degrades to the plain computation.


def spread_incidence(
    domain: str, attribute: str, config: ExperimentConfig
) -> BipartiteIncidence:
    """Generate one spread corpus, via the artifact cache when installed.

    The fingerprint covers everything generation consumes: the full
    :class:`~repro.webgen.profiles.SpreadProfile`, the scale preset, and
    the derived stream seed.  Several runners (Figures 1–5 and 9,
    Table 2) share corpora; routing them through this helper makes each
    distinct corpus get generated exactly once per cache lifetime.
    """
    profile = get_profile(domain, attribute)
    seed = _stream_seed(config, f"spread:{domain}:{attribute}")
    cache = active_cache()
    if cache is None:
        return profile.generate(config.scale_preset, seed=seed)
    key = fingerprint(
        "incidence", profile=profile, scale=config.scale_preset, seed=seed
    )
    incidence = cache.get_incidence(key)
    if incidence is None:
        incidence = profile.generate(config.scale_preset, seed=seed)
        cache.put_incidence(key, incidence)
    return incidence


def _graph_metrics_row(
    domain: str, attribute: str, config: ExperimentConfig
) -> GraphMetrics:
    """One Table 2 row, cached as a JSON record when a cache is active."""
    cache = active_cache()
    key = None
    if cache is not None:
        key = fingerprint(
            "table2-row",
            profile=get_profile(domain, attribute),
            scale=config.scale_preset,
            seed=_stream_seed(config, f"spread:{domain}:{attribute}"),
            max_bfs=config.max_bfs,
        )
        rows = cache.get_records(key)
        if rows:
            return GraphMetrics(**rows[0])
    incidence = spread_incidence(domain, attribute, config)
    measured = GraphMetrics.measure(
        incidence, domain, attribute, max_bfs=config.max_bfs
    )
    # Coerce to plain Python scalars so the cold row and the JSON
    # round-tripped warm row are indistinguishable downstream.
    record = {
        "domain": measured.domain,
        "attribute": measured.attribute,
        "avg_sites_per_entity": float(measured.avg_sites_per_entity),
        "diameter": int(measured.diameter),
        "n_components": int(measured.n_components),
        "pct_entities_in_largest": float(measured.pct_entities_in_largest),
    }
    row = GraphMetrics(**record)
    if cache is not None:
        cache.put_records(key, [record])
    return row


def _robustness_panel(
    domain: str, attribute: str, config: ExperimentConfig, max_removed: int
) -> tuple[np.ndarray, np.ndarray]:
    """One Figure 9 curve, cached as an array bundle when active."""
    cache = active_cache()
    key = None
    if cache is not None:
        key = fingerprint(
            "robustness",
            profile=get_profile(domain, attribute),
            scale=config.scale_preset,
            seed=_stream_seed(config, f"spread:{domain}:{attribute}"),
            max_removed=max_removed,
        )
        arrays = cache.get_arrays(key)
        if arrays is not None:
            return arrays["ks"], arrays["fractions"]
    incidence = spread_incidence(domain, attribute, config)
    ks, fractions = robustness_curve(incidence, max_removed=max_removed)
    if cache is not None:
        cache.put_arrays(key, {"ks": ks, "fractions": fractions})
    return ks, fractions


# ---------------------------------------------------------------------------
# Spread of data (Figures 1-5)
# ---------------------------------------------------------------------------


@dataclass
class SpreadResult:
    """k-coverage curves for one (domain, attribute) panel."""

    domain: str
    attribute: str
    incidence: BipartiteIncidence = field(repr=False)
    curves: CoverageCurves

    def series(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Figure-ready series: one per k."""
        return {
            f"k={k}": (self.curves.checkpoints, self.curves.curve(k))
            for k in self.curves.ks
        }

    def render(self) -> str:
        """ASCII panel in the paper's style (log-x, coverage on y)."""
        return ascii_plot(
            self.series(),
            log_x=True,
            title=f"{self.domain} {self.attribute}s (k-coverage of top-t sites)",
            x_label="top-t sites",
            y_label="coverage",
        )


def run_spread(
    domain: str, attribute: str, config: ExperimentConfig
) -> SpreadResult:
    """One spread panel: generate the incidence, compute k-coverage."""
    incidence = spread_incidence(domain, attribute, config)
    curves = k_coverage_curves(incidence, ks=config.ks)
    return SpreadResult(
        domain=domain, attribute=attribute, incidence=incidence, curves=curves
    )


def run_figure1(config: ExperimentConfig) -> dict[str, SpreadResult]:
    """Figure 1: phone k-coverage for the 8 local-business domains."""
    return {
        domain: run_spread(domain, ATTRIBUTE_PHONE, config)
        for domain in LOCAL_BUSINESS_DOMAINS
    }


def run_figure2(config: ExperimentConfig) -> dict[str, SpreadResult]:
    """Figure 2: homepage k-coverage for the 8 local-business domains."""
    return {
        domain: run_spread(domain, ATTRIBUTE_HOMEPAGE, config)
        for domain in LOCAL_BUSINESS_DOMAINS
    }


def run_figure3(config: ExperimentConfig) -> SpreadResult:
    """Figure 3: book ISBN k-coverage."""
    return run_spread("books", ATTRIBUTE_ISBN, config)


@dataclass
class ReviewSpreadResult:
    """Figure 4: review k-coverage plus the aggregate-review curve."""

    spread: SpreadResult
    aggregate_checkpoints: np.ndarray
    aggregate_fractions: np.ndarray

    def aggregate_series(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Figure 4(b) series."""
        return {
            "aggregate reviews": (
                self.aggregate_checkpoints,
                self.aggregate_fractions,
            )
        }

    def render(self) -> str:
        """Both panels, ASCII."""
        panel_a = self.spread.render()
        panel_b = ascii_plot(
            self.aggregate_series(),
            log_x=True,
            title="Aggregate reviews (fraction of all review pages in top-n sites)",
            x_label="top-n sites",
            y_label="fraction of review pages",
        )
        return panel_a + "\n\n" + panel_b


def run_figure4(config: ExperimentConfig) -> ReviewSpreadResult:
    """Figure 4: spread of the restaurant review attribute."""
    spread = run_spread("restaurants", ATTRIBUTE_REVIEWS, config)
    checkpoints, fractions = aggregate_coverage_curve(spread.incidence)
    return ReviewSpreadResult(
        spread=spread,
        aggregate_checkpoints=checkpoints,
        aggregate_fractions=fractions,
    )


@dataclass
class SetCoverResult:
    """Figure 5: 1-coverage under size order vs. greedy set cover."""

    domain: str
    attribute: str
    checkpoints: np.ndarray
    by_size: np.ndarray
    by_greedy: np.ndarray

    def series(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Both orderings as plot series."""
        return {
            "order by size": (self.checkpoints, self.by_size),
            "greedy set cover": (self.checkpoints, self.by_greedy),
        }

    def max_improvement(self) -> float:
        """Largest coverage gain of greedy over size order at any t."""
        return float(np.max(self.by_greedy - self.by_size))

    def render(self) -> str:
        """ASCII panel."""
        return ascii_plot(
            self.series(),
            log_x=True,
            title=f"Greedy covering for {self.domain} {self.attribute}s",
            x_label="top-t sites",
            y_label="1-coverage",
        )


def run_figure5(
    config: ExperimentConfig,
    domain: str = "restaurants",
    attribute: str = ATTRIBUTE_HOMEPAGE,
) -> SetCoverResult:
    """Figure 5: does careful (greedy) site selection beat size order?"""
    incidence = spread_incidence(domain, attribute, config)
    curves = k_coverage_curves(incidence, ks=(1,))
    checkpoints = curves.checkpoints
    __, greedy = greedy_coverage_curve(incidence, checkpoints=checkpoints)
    return SetCoverResult(
        domain=domain,
        attribute=attribute,
        checkpoints=checkpoints,
        by_size=curves.curve(1),
        by_greedy=greedy,
    )


# ---------------------------------------------------------------------------
# Value of tail extraction (Figures 6-8)
# ---------------------------------------------------------------------------


@dataclass
class TrafficDataset:
    """One site's sampled inventory plus measured demand vectors."""

    site: str
    reviews: np.ndarray
    search_demand: np.ndarray
    browse_demand: np.ndarray

    def demand(self, source: str) -> np.ndarray:
        """Demand vector for ``search`` or ``browse``."""
        if source == "search":
            return self.search_demand
        if source == "browse":
            return self.browse_demand
        raise ValueError(f"unknown source {source!r}")


def build_traffic_dataset(site: str, config: ExperimentConfig) -> TrafficDataset:
    """Simulate a year of traffic for one site and aggregate demand.

    Cached as an array bundle when an artifact cache is installed: the
    three Figure 6–8 runners each need all three sites, so one cold
    simulation per site serves all of them.
    """
    seed = _stream_seed(config, f"traffic:{site}")
    profile = get_site_profile(site)
    cache = active_cache()
    key = None
    if cache is not None:
        key = fingerprint(
            "traffic",
            profile=profile,
            n_entities=config.traffic_entities,
            n_cookies=config.traffic_cookies,
            n_events=config.traffic_events,
            cookie_activity_exponent=0.5,
            seed=seed,
        )
        arrays = cache.get_arrays(key)
        if arrays is not None:
            return TrafficDataset(
                site=site,
                reviews=arrays["reviews"],
                search_demand=arrays["search_demand"],
                browse_demand=arrays["browse_demand"],
            )
    generator = TrafficLogGenerator(
        profile,
        n_entities=config.traffic_entities,
        n_cookies=config.traffic_cookies,
        cookie_activity_exponent=0.5,
        seed=seed,
    )
    search = unique_cookie_demand(generator.search_log(config.traffic_events))
    browse = unique_cookie_demand(generator.browse_log(config.traffic_events))
    dataset = TrafficDataset(
        site=site,
        reviews=generator.population.reviews,
        search_demand=search,
        browse_demand=browse,
    )
    if cache is not None:
        cache.put_arrays(
            key,
            {
                "reviews": dataset.reviews,
                "search_demand": dataset.search_demand,
                "browse_demand": dataset.browse_demand,
            },
        )
    return dataset


def run_figure6(
    config: ExperimentConfig,
) -> dict[str, dict[str, DemandCurves]]:
    """Figure 6: demand CDF and rank-PDF per site, search and browse.

    Returns ``{source: {site: DemandCurves}}``.
    """
    datasets = {site: build_traffic_dataset(site, config) for site in TRAFFIC_SITES}
    result: dict[str, dict[str, DemandCurves]] = {}
    for source in ("search", "browse"):
        result[source] = {
            site: DemandCurves.from_demand(site, datasets[site].demand(source))
            for site in TRAFFIC_SITES
        }
    return result


def run_figure7(
    config: ExperimentConfig,
) -> dict[str, dict[str, tuple[np.ndarray, np.ndarray]]]:
    """Figure 7: mean z-scored demand per review-count group.

    Returns ``{site: {source: (review_counts, mean_demand)}}``.
    """
    result: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]] = {}
    for site in TRAFFIC_SITES:
        dataset = build_traffic_dataset(site, config)
        result[site] = {
            source: demand_vs_reviews(dataset.demand(source), dataset.reviews)
            for source in ("search", "browse")
        }
    return result


def run_figure8(
    config: ExperimentConfig,
) -> dict[str, dict[str, ValueAddCurve]]:
    """Figure 8: relative value-add VA(n)/VA(0) per review-count group.

    Returns ``{site: {source: ValueAddCurve}}``.
    """
    result: dict[str, dict[str, ValueAddCurve]] = {}
    for site in TRAFFIC_SITES:
        dataset = build_traffic_dataset(site, config)
        result[site] = {
            source: value_add_curve(
                dataset.demand(source),
                dataset.reviews,
                label=f"{site}/{source}",
            )
            for source in ("search", "browse")
        }
    return result


# ---------------------------------------------------------------------------
# Connectivity (Table 2, Figure 9)
# ---------------------------------------------------------------------------

#: The 17 (domain, attribute) rows of Table 2, in the paper's order.
TABLE2_ROWS: tuple[tuple[str, str], ...] = (
    ("books", ATTRIBUTE_ISBN),
    ("automotive", ATTRIBUTE_PHONE),
    ("banks", ATTRIBUTE_PHONE),
    ("home", ATTRIBUTE_PHONE),
    ("hotels", ATTRIBUTE_PHONE),
    ("libraries", ATTRIBUTE_PHONE),
    ("restaurants", ATTRIBUTE_PHONE),
    ("retail", ATTRIBUTE_PHONE),
    ("schools", ATTRIBUTE_PHONE),
    ("automotive", ATTRIBUTE_HOMEPAGE),
    ("banks", ATTRIBUTE_HOMEPAGE),
    ("home", ATTRIBUTE_HOMEPAGE),
    ("hotels", ATTRIBUTE_HOMEPAGE),
    ("libraries", ATTRIBUTE_HOMEPAGE),
    ("restaurants", ATTRIBUTE_HOMEPAGE),
    ("retail", ATTRIBUTE_HOMEPAGE),
    ("schools", ATTRIBUTE_HOMEPAGE),
)


def run_table1() -> str:
    """Table 1: the domain/attribute inventory."""
    return ascii_table(
        ["Domains", "Attributes"], table1_rows(), title="Table 1: List of Domains"
    )


def run_table2(
    config: ExperimentConfig,
    rows: tuple[tuple[str, str], ...] = TABLE2_ROWS,
) -> list[GraphMetrics]:
    """Table 2: entity–site graph metrics for every (domain, attribute)."""
    return [
        _graph_metrics_row(domain, attribute, config)
        for domain, attribute in rows
    ]


def format_table2(metrics: list[GraphMetrics]) -> str:
    """Render Table 2 in the paper's column layout."""
    rows = [
        (
            m.domain,
            m.attribute,
            round(m.avg_sites_per_entity, 1),
            m.diameter,
            m.n_components,
            round(m.pct_entities_in_largest, 2),
        )
        for m in metrics
    ]
    return ascii_table(
        [
            "Domain",
            "Attr",
            "Avg #sites/entity",
            "diameter",
            "# conn. comp.",
            "% entities in largest",
        ],
        rows,
        title="Table 2: Entity-Site Graphs and Metrics",
    )


def run_figure9(
    config: ExperimentConfig,
    max_removed: int = 10,
) -> dict[str, dict[str, tuple[np.ndarray, np.ndarray]]]:
    """Figure 9: largest-component fraction after removing top-k sites.

    Returns ``{panel: {domain: (ks, fractions)}}`` with panels
    ``phone``, ``homepage``, and ``isbn``, mirroring 9(a)-9(c).
    """
    panels: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]] = {
        ATTRIBUTE_PHONE: {},
        ATTRIBUTE_HOMEPAGE: {},
        ATTRIBUTE_ISBN: {},
    }
    for domain in LOCAL_BUSINESS_DOMAINS:
        for attribute in (ATTRIBUTE_PHONE, ATTRIBUTE_HOMEPAGE):
            panels[attribute][domain] = _robustness_panel(
                domain, attribute, config, max_removed
            )
    panels[ATTRIBUTE_ISBN]["books"] = _robustness_panel(
        "books", ATTRIBUTE_ISBN, config, max_removed
    )
    return panels


# ---------------------------------------------------------------------------
# Full-pipeline (HTML) variant
# ---------------------------------------------------------------------------


def _build_database(domain: str, attribute: str, n_entities: int, seed: int):
    if domain == "books":
        return EntityDatabase.from_books(
            BookGenerator(seed=seed).generate(n_entities)
        )
    homepage_fraction = 1.0 if attribute == ATTRIBUTE_HOMEPAGE else 0.85
    return EntityDatabase.from_listings(
        BusinessGenerator(
            domain, seed=seed, homepage_fraction=homepage_fraction
        ).generate(n_entities)
    )


def run_spread_via_extraction(
    domain: str,
    attribute: str,
    config: ExperimentConfig,
) -> tuple[SpreadResult, BipartiteIncidence]:
    """The spread experiment via the full HTML pipeline.

    Renders the sampled incidence into actual HTML pages, stores them in
    a crawl cache, re-extracts with the Section 3.2 matchers, and runs
    the same coverage analysis on the *extracted* incidence.  Used to
    check that extraction noise does not change the curve shapes.

    Returns:
        ``(result_on_extracted, truth_incidence)``.
    """
    seed = _stream_seed(config, f"pipeline:{domain}:{attribute}")
    scale = config.scale_preset
    database = _build_database(domain, attribute, scale.n_entities, seed)
    profile = get_profile(domain, attribute)
    incidence = profile.generate(scale, seed=seed)
    corpus = CorpusBuilder(database, attribute, seed=seed + 1).build(incidence)
    runner = ExtractionRunner(database, attribute)
    extracted = runner.run(
        corpus.cache, with_multiplicity=attribute == ATTRIBUTE_REVIEWS
    )
    curves = k_coverage_curves(extracted, ks=config.ks)
    result = SpreadResult(
        domain=domain, attribute=attribute, incidence=extracted, curves=curves
    )
    return result, corpus.truth
