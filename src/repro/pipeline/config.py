"""Experiment configuration shared by all runners.

Also home to the run-manifest constants: the manifest is the contract
between the batch pipeline (which writes it) and the serve/store tiers
(which consume it), and this module is the lightest pipeline module
those consumers can import — pulling them from ``runall`` would drag
the whole experiment stack into every serve worker (IMP001).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.webgen.profiles import SCALES, ScalePreset

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "ExecutionSettings",
    "ExperimentConfig",
]

# The run manifest (written next to artifacts by `repro all`) names the
# output contract version consumed by repro.store and repro.serve.
MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-manifest-v1"


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    Attributes:
        scale: Corpus scale preset name (``tiny``/``small``/``medium``/
            ``paper``/``ladder``) for the spread and connectivity
            experiments.
        seed: Master seed; every runner derives per-experiment streams.
        ks: Redundancy levels for the k-coverage curves (paper: 1..10).
        max_bfs: BFS budget for exact-diameter computation.
        traffic_entities: Inventory size per site for Figures 6–8.
        traffic_events: Events per (site, source) log.
        traffic_cookies: Cookie population size.
    """

    scale: str = "small"
    seed: int = 0
    ks: tuple[int, ...] = field(default=tuple(range(1, 11)))
    max_bfs: int | None = 64
    traffic_entities: int = 20000
    traffic_events: int = 400000
    traffic_cookies: int = 100000

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            known = ", ".join(sorted(SCALES))
            raise ValueError(f"unknown scale {self.scale!r}; known: {known}")
        if not self.ks or any(k < 1 for k in self.ks):
            raise ValueError("ks must be positive integers")
        if self.traffic_entities < 1 or self.traffic_events < 1:
            raise ValueError("traffic sizes must be positive")

    @property
    def scale_preset(self) -> ScalePreset:
        """The resolved scale preset."""
        return SCALES[self.scale]

    def scaled_down(self, factor: int) -> "ExperimentConfig":
        """A copy with traffic sizes divided by ``factor`` (for tests)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return ExperimentConfig(
            scale=self.scale,
            seed=self.seed,
            ks=self.ks,
            max_bfs=self.max_bfs,
            traffic_entities=max(1, self.traffic_entities // factor),
            traffic_events=max(1, self.traffic_events // factor),
            traffic_cookies=max(1, self.traffic_cookies // factor),
        )


@dataclass(frozen=True)
class ExecutionSettings:
    """How to *run* the pipeline, as opposed to *what* it computes.

    None of these knobs may influence artifact bytes: any combination of
    workers, caching, retries, and resuming must produce byte-identical
    outputs for a fixed :class:`ExperimentConfig`.  They are therefore
    never part of cache fingerprints.

    Attributes:
        workers: Worker processes for the staged executor (1 = run
            everything inline in the calling process).
        use_cache: Install a fresh content-addressed artifact cache for
            the run.  When False the run leaves whatever cache the
            caller configured (usually none) untouched.
        cache_dir: Cache location; None defers to ``REPRO_CACHE_DIR``
            and then the ``~/.cache/repro-artifacts`` default.
        cache_budget_bytes: Optional LRU byte budget for the cache.
        retries: Extra attempts per task after the first (0 = never
            retry); backoff between attempts is seeded and bounded.
        task_timeout: Optional per-attempt wall-clock budget in seconds
            (pooled execution only); expiry rebuilds the worker pool
            and charges a failed attempt.
        failure_mode: ``"raise"`` (the library default: first terminal
            task failure raises, as before the resilience layer) or
            ``"continue"`` (partial-failure semantics: independent DAG
            branches complete, failures come back in the report).
        keep_journal: Checkpoint completed tasks to a run journal so
            the run can be resumed.  Implied by ``resume``/``run_id``/
            ``journal_dir``.
        run_id: Explicit journal id; None derives one from the config
            and output directory (so re-running the same command finds
            the same journal).
        resume: Skip every task an existing journal records as done;
            requires that journal to exist and to match this config.
        journal_dir: Journal location; None defers to
            ``REPRO_JOURNAL_DIR`` and then ``~/.cache/repro-journals``.
    """

    workers: int = 1
    use_cache: bool = False
    cache_dir: str | None = None
    cache_budget_bytes: int | None = None
    retries: int = 2
    task_timeout: float | None = None
    failure_mode: str = "raise"
    keep_journal: bool = False
    run_id: str | None = None
    resume: bool = False
    journal_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.cache_budget_bytes is not None and self.cache_budget_bytes <= 0:
            raise ValueError("cache_budget_bytes must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.failure_mode not in ("raise", "continue"):
            raise ValueError("failure_mode must be 'raise' or 'continue'")

    @property
    def journaling(self) -> bool:
        """Whether this run writes (or reads) a checkpoint journal."""
        return (
            self.keep_journal
            or self.resume
            or self.run_id is not None
            or self.journal_dir is not None
        )
