"""Regenerate every artifact of the paper in one call.

:func:`run_everything` writes, into one output directory, the ASCII
rendering and CSV series of every table and figure: the deliverable a
downstream user runs once to see the whole reproduction.
"""

from __future__ import annotations

from pathlib import Path

from repro.pipeline import experiments
from repro.pipeline.config import ExperimentConfig
from repro.report.figures import ascii_plot, write_csv

__all__ = ["run_everything"]


def _write(directory: Path, name: str, text: str) -> None:
    (directory / f"{name}.txt").write_text(text + "\n")


def run_everything(
    output_dir: str | Path,
    config: ExperimentConfig | None = None,
    verbose: bool = True,
) -> list[str]:
    """Run every table/figure; write artifacts; return their names.

    Args:
        output_dir: Directory for ``.txt`` (ASCII) and ``.csv`` files.
        config: Experiment configuration (default: small scale, seed 0).
        verbose: Print a progress line per artifact.
    """
    config = config or ExperimentConfig()
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[str] = []

    def done(name: str) -> None:
        written.append(name)
        if verbose:
            print(f"  wrote {name}")

    _write(directory, "table1", experiments.run_table1())
    done("table1")

    for number, runner in ((1, experiments.run_figure1), (2, experiments.run_figure2)):
        for domain, result in runner(config).items():
            name = f"figure{number}_{domain}"
            _write(directory, name, result.render())
            write_csv(directory / f"{name}.csv", result.series())
            done(name)

    figure3 = experiments.run_figure3(config)
    _write(directory, "figure3", figure3.render())
    write_csv(directory / "figure3.csv", figure3.series())
    done("figure3")

    figure4 = experiments.run_figure4(config)
    _write(directory, "figure4", figure4.render())
    write_csv(directory / "figure4a.csv", figure4.spread.series())
    write_csv(directory / "figure4b.csv", figure4.aggregate_series())
    done("figure4")

    figure5 = experiments.run_figure5(config)
    _write(
        directory,
        "figure5",
        figure5.render()
        + f"\n\nmax greedy improvement: {figure5.max_improvement():.3f}",
    )
    write_csv(directory / "figure5.csv", figure5.series())
    done("figure5")

    figure6 = experiments.run_figure6(config)
    for source in ("search", "browse"):
        cdf = {
            site: (c.inventory, c.cumulative_share)
            for site, c in figure6[source].items()
        }
        _write(
            directory,
            f"figure6_{source}",
            ascii_plot(
                cdf,
                title=f"Figure 6 ({source}): cumulative demand",
                x_label="normalized inventory",
                y_label="cumulative demand",
            ),
        )
        write_csv(directory / f"figure6_{source}.csv", cdf)
        done(f"figure6_{source}")

    figure7 = experiments.run_figure7(config)
    for site, sources in figure7.items():
        name = f"figure7_{site}"
        _write(
            directory,
            name,
            ascii_plot(
                sources,
                title=f"Figure 7 ({site}): demand vs #reviews",
                x_label="# of reviews",
                y_label="avg normalized demand",
            ),
        )
        write_csv(directory / f"{name}.csv", sources)
        done(name)

    figure8 = experiments.run_figure8(config)
    for site, sources in figure8.items():
        series = {
            source: (curve.review_counts, curve.relative_value_add)
            for source, curve in sources.items()
        }
        name = f"figure8_{site}"
        _write(
            directory,
            name,
            ascii_plot(
                series,
                log_x=True,
                title=f"Figure 8 ({site}): VA(n)/VA(0)",
                x_label="# of reviews",
                y_label="relative value-add",
            ),
        )
        write_csv(directory / f"{name}.csv", series)
        done(name)

    table2 = experiments.run_table2(config)
    _write(directory, "table2", experiments.format_table2(table2))
    done("table2")

    figure9 = experiments.run_figure9(config)
    for attribute, by_domain in figure9.items():
        name = f"figure9_{attribute}"
        _write(
            directory,
            name,
            ascii_plot(
                by_domain,
                title=f"Figure 9 ({attribute}): robustness to top-k removal",
                x_label="top-k sites removed",
                y_label="fraction in largest component",
            ),
        )
        write_csv(directory / f"{name}.csv", by_domain)
        done(name)

    return written
