"""Regenerate every artifact of the paper in one call.

:func:`run_everything` writes, into one output directory, the ASCII
rendering and CSV series of every table and figure: the deliverable a
downstream user runs once to see the whole reproduction.

The run is decomposed into schedulable tasks (one per table/figure,
plus cache-prewarm tasks for the shared corpora and traffic datasets)
and handed to :mod:`repro.perf`'s staged executor.  With the default
:class:`~repro.pipeline.config.ExecutionSettings` everything runs
inline and uncached, exactly as the pre-perf pipeline did; with a cache
and/or workers enabled, prewarm tasks generate each shared artifact
once and the figure tasks read it back.  Artifact bytes are identical
across every combination of settings.

The run is fault tolerant (see ``docs/robustness.md``): tasks retry
under the run's :class:`~repro.resilience.RetryPolicy`; with
``failure_mode="continue"`` a terminal failure marks only its
dependents skipped while independent branches complete, and the
failure report lands in the :class:`~repro.perf.PerfReport`; with
journaling on, every completion is checkpointed so ``--resume``
re-runs only what is missing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
    LOCAL_BUSINESS_DOMAINS,
)
from repro.perf import (
    ArtifactCache,
    ExperimentTask,
    PerfReport,
    active_cache,
    configure_cache,
    execute_tasks,
    fingerprint,
    resolve_cache_dir,
)
from repro.io import atomic_write_text
from repro.pipeline import experiments
from repro.pipeline.config import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    ExecutionSettings,
    ExperimentConfig,
)
from repro.report.figures import ascii_plot, write_csv
from repro.resilience import (
    JournalEntry,
    RetryPolicy,
    RunJournal,
    derive_run_id,
    resolve_journal_dir,
)

# MANIFEST_FORMAT / MANIFEST_NAME now live in repro.pipeline.config so
# the serve/store tiers can import them without the experiment stack;
# they stay re-exported here for compatibility.
__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "manifest_payload",
    "run_everything",
    "run_everything_with_report",
    "write_manifest",
]


def manifest_payload(
    config: ExperimentConfig, artifacts: list[str]
) -> dict[str, Any]:
    """The run manifest: what a completed ``repro all`` produced.

    Everything here is a pure function of the experiment config plus the
    canonical artifact list, so manifests are byte-identical across
    execution modes (workers/cache/resume) — the same invariant the
    artifacts themselves obey.  :mod:`repro.serve` reads this file to
    reconstruct the config and rebuild its indices through the
    cache-aware builders.
    """
    return {
        "format": MANIFEST_FORMAT,
        "config": {
            "scale": config.scale,
            "seed": config.seed,
            "ks": list(config.ks),
            "max_bfs": config.max_bfs,
            "traffic_entities": config.traffic_entities,
            "traffic_events": config.traffic_events,
            "traffic_cookies": config.traffic_cookies,
        },
        "spread_pairs": [list(pair) for pair in _spread_pairs()],
        "traffic_sites": list(experiments.TRAFFIC_SITES),
        "artifacts": sorted(artifacts),
    }


def write_manifest(
    directory: str | Path, config: ExperimentConfig, artifacts: list[str]
) -> Path:
    """Atomically write ``manifest.json`` into a run's output directory."""
    payload = manifest_payload(config, artifacts)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return atomic_write_text(Path(directory) / MANIFEST_NAME, text)


def _write(directory: Path, name: str, text: str) -> None:
    (directory / f"{name}.txt").write_text(text + "\n")


# ---------------------------------------------------------------------------
# Task bodies (module-level so worker processes can import them)
# ---------------------------------------------------------------------------
#
# Every task receives one picklable payload dict carrying the output
# directory, the experiment config, and the cache settings; it returns
# the artifact names it wrote, in their canonical order.


def _apply_cache_settings(payload: dict[str, Any]) -> None:
    """Install the run's cache in this process, if the run wants one.

    ``payload["cache"]`` is ``(directory, max_bytes)`` or None; None
    leaves whatever cache the calling process already has, so library
    callers who configured their own cache keep it.
    """
    spec = payload["cache"]
    if spec is not None:
        directory, max_bytes = spec
        configure_cache(ArtifactCache(directory, max_bytes=max_bytes))


def _prewarm_spread(payload: dict[str, Any]) -> list[str]:
    """Generate (and cache) one shared spread corpus."""
    _apply_cache_settings(payload)
    experiments.spread_incidence(
        payload["domain"], payload["attribute"], payload["config"]
    )
    return []


def _prewarm_traffic(payload: dict[str, Any]) -> list[str]:
    """Simulate (and cache) one shared traffic dataset."""
    _apply_cache_settings(payload)
    experiments.build_traffic_dataset(payload["site"], payload["config"])
    return []


def _task_table1(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    _write(Path(payload["out"]), "table1", experiments.run_table1())
    return ["table1"]


def _task_spread_figure(payload: dict[str, Any]) -> list[str]:
    """Figures 1 and 2: one k-coverage panel per local-business domain."""
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    number = payload["number"]
    runner = experiments.run_figure1 if number == 1 else experiments.run_figure2
    names = []
    for domain, result in runner(payload["config"]).items():
        name = f"figure{number}_{domain}"
        _write(directory, name, result.render())
        write_csv(directory / f"{name}.csv", result.series())
        names.append(name)
    return names


def _task_figure3(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    figure3 = experiments.run_figure3(payload["config"])
    _write(directory, "figure3", figure3.render())
    write_csv(directory / "figure3.csv", figure3.series())
    return ["figure3"]


def _task_figure4(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    figure4 = experiments.run_figure4(payload["config"])
    _write(directory, "figure4", figure4.render())
    write_csv(directory / "figure4a.csv", figure4.spread.series())
    write_csv(directory / "figure4b.csv", figure4.aggregate_series())
    return ["figure4"]


def _task_figure5(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    figure5 = experiments.run_figure5(payload["config"])
    _write(
        directory,
        "figure5",
        figure5.render()
        + f"\n\nmax greedy improvement: {figure5.max_improvement():.3f}",
    )
    write_csv(directory / "figure5.csv", figure5.series())
    return ["figure5"]


def _task_figure6(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    figure6 = experiments.run_figure6(payload["config"])
    names = []
    for source in ("search", "browse"):
        cdf = {
            site: (c.inventory, c.cumulative_share)
            for site, c in figure6[source].items()
        }
        name = f"figure6_{source}"
        _write(
            directory,
            name,
            ascii_plot(
                cdf,
                title=f"Figure 6 ({source}): cumulative demand",
                x_label="normalized inventory",
                y_label="cumulative demand",
            ),
        )
        write_csv(directory / f"{name}.csv", cdf)
        names.append(name)
    return names


def _task_figure7(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    names = []
    for site, sources in experiments.run_figure7(payload["config"]).items():
        name = f"figure7_{site}"
        _write(
            directory,
            name,
            ascii_plot(
                sources,
                title=f"Figure 7 ({site}): demand vs #reviews",
                x_label="# of reviews",
                y_label="avg normalized demand",
            ),
        )
        write_csv(directory / f"{name}.csv", sources)
        names.append(name)
    return names


def _task_figure8(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    names = []
    for site, sources in experiments.run_figure8(payload["config"]).items():
        series = {
            source: (curve.review_counts, curve.relative_value_add)
            for source, curve in sources.items()
        }
        name = f"figure8_{site}"
        _write(
            directory,
            name,
            ascii_plot(
                series,
                log_x=True,
                title=f"Figure 8 ({site}): VA(n)/VA(0)",
                x_label="# of reviews",
                y_label="relative value-add",
            ),
        )
        write_csv(directory / f"{name}.csv", series)
        names.append(name)
    return names


def _task_table2(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    table2 = experiments.run_table2(payload["config"])
    _write(Path(payload["out"]), "table2", experiments.format_table2(table2))
    return ["table2"]


def _task_figure9(payload: dict[str, Any]) -> list[str]:
    _apply_cache_settings(payload)
    directory = Path(payload["out"])
    names = []
    for attribute, by_domain in experiments.run_figure9(payload["config"]).items():
        name = f"figure9_{attribute}"
        _write(
            directory,
            name,
            ascii_plot(
                by_domain,
                title=f"Figure 9 ({attribute}): robustness to top-k removal",
                x_label="top-k sites removed",
                y_label="fraction in largest component",
            ),
        )
        write_csv(directory / f"{name}.csv", by_domain)
        names.append(name)
    return names


# ---------------------------------------------------------------------------
# Task graph
# ---------------------------------------------------------------------------


def _spread_pairs() -> list[tuple[str, str]]:
    """Every distinct (domain, attribute) corpus the full run touches."""
    pairs = [(domain, ATTRIBUTE_PHONE) for domain in LOCAL_BUSINESS_DOMAINS]
    pairs += [(domain, ATTRIBUTE_HOMEPAGE) for domain in LOCAL_BUSINESS_DOMAINS]
    pairs += [("books", ATTRIBUTE_ISBN), ("restaurants", ATTRIBUTE_REVIEWS)]
    return pairs


def _build_tasks(
    directory: Path,
    config: ExperimentConfig,
    cache_spec: tuple[str, int | None] | None,
    prewarm: bool,
) -> list[ExperimentTask]:
    """The full task graph, in the canonical artifact order.

    With ``prewarm`` (i.e. a cache is in play), every shared corpus and
    traffic dataset gets a producer task; the figure tasks declare those
    artifacts as requirements, so the executor stages producers first
    and consumers become cache readers.  Without a cache the artifact
    labels are unprovided and everything lands in a single stage.
    """
    base = {"out": str(directory), "config": config, "cache": cache_spec}

    def payload(**extra: Any) -> dict[str, Any]:
        return {**base, **extra}

    def incidence_labels(*pairs: tuple[str, str]) -> tuple[str, ...]:
        return tuple(f"incidence:{d}:{a}" for d, a in pairs)

    tasks: list[ExperimentTask] = []
    if prewarm:
        for domain, attribute in _spread_pairs():
            tasks.append(
                ExperimentTask(
                    name=f"warm:incidence:{domain}:{attribute}",
                    fn=_prewarm_spread,
                    payload=payload(domain=domain, attribute=attribute),
                    provides=incidence_labels((domain, attribute)),
                )
            )
        for site in experiments.TRAFFIC_SITES:
            tasks.append(
                ExperimentTask(
                    name=f"warm:traffic:{site}",
                    fn=_prewarm_traffic,
                    payload=payload(site=site),
                    provides=(f"traffic:{site}",),
                )
            )

    phone = [(domain, ATTRIBUTE_PHONE) for domain in LOCAL_BUSINESS_DOMAINS]
    homepage = [(domain, ATTRIBUTE_HOMEPAGE) for domain in LOCAL_BUSINESS_DOMAINS]
    table2_pairs = phone + homepage + [("books", ATTRIBUTE_ISBN)]
    traffic = tuple(f"traffic:{site}" for site in experiments.TRAFFIC_SITES)
    tasks += [
        ExperimentTask(name="table1", fn=_task_table1, payload=payload()),
        ExperimentTask(
            name="figure1",
            fn=_task_spread_figure,
            payload=payload(number=1),
            requires=incidence_labels(*phone),
        ),
        ExperimentTask(
            name="figure2",
            fn=_task_spread_figure,
            payload=payload(number=2),
            requires=incidence_labels(*homepage),
        ),
        ExperimentTask(
            name="figure3",
            fn=_task_figure3,
            payload=payload(),
            requires=incidence_labels(("books", ATTRIBUTE_ISBN)),
        ),
        ExperimentTask(
            name="figure4",
            fn=_task_figure4,
            payload=payload(),
            requires=incidence_labels(("restaurants", ATTRIBUTE_REVIEWS)),
        ),
        ExperimentTask(
            name="figure5",
            fn=_task_figure5,
            payload=payload(),
            requires=incidence_labels(("restaurants", ATTRIBUTE_HOMEPAGE)),
        ),
        ExperimentTask(
            name="figure6", fn=_task_figure6, payload=payload(), requires=traffic
        ),
        ExperimentTask(
            name="figure7", fn=_task_figure7, payload=payload(), requires=traffic
        ),
        ExperimentTask(
            name="figure8", fn=_task_figure8, payload=payload(), requires=traffic
        ),
        ExperimentTask(
            name="table2",
            fn=_task_table2,
            payload=payload(),
            requires=incidence_labels(*table2_pairs),
        ),
        ExperimentTask(
            name="figure9",
            fn=_task_figure9,
            payload=payload(),
            requires=incidence_labels(*table2_pairs),
        ),
    ]
    return tasks


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def run_everything_with_report(
    output_dir: str | Path,
    config: ExperimentConfig | None = None,
    verbose: bool = True,
    settings: ExecutionSettings | None = None,
) -> tuple[list[str], PerfReport]:
    """Run every table/figure; return (artifact names, perf report).

    Args:
        output_dir: Directory for ``.txt`` (ASCII) and ``.csv`` files.
        config: Experiment configuration (default: small scale, seed 0).
        verbose: Print a progress line per artifact.
        settings: Scheduling/caching/resilience knobs (default: serial,
            uncached, journaling off, raise on first terminal failure).

    Raises:
        repro.perf.TaskExecutionError: A task exhausted its retries and
            ``settings.failure_mode`` is ``"raise"``.
        repro.resilience.JournalMismatchError: ``settings.resume`` named
            a journal that is missing or belongs to a different run.
    """
    config = config or ExperimentConfig()
    settings = settings or ExecutionSettings()
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)

    # The run key fingerprints everything that determines artifact
    # bytes (config) plus where they land (output dir); execution knobs
    # stay out so the same reproduction resumes under the same id
    # regardless of workers/cache/retries.
    run_key = fingerprint("run", config=config, output=str(directory.resolve()))
    run_id = settings.run_id or derive_run_id(run_key)
    journal: RunJournal | None = None
    completed_entries: dict[str, JournalEntry] = {}
    if settings.journaling:
        journal_dir = resolve_journal_dir(settings.journal_dir)
        if settings.resume:
            journal = RunJournal.open(
                journal_dir, run_id, run_key, require_existing=True
            )
            completed_entries = dict(journal.entries)
        else:
            journal = RunJournal(journal_dir, run_id, run_key)
            journal.discard()  # a from-scratch run invalidates stale state

    cache_spec: tuple[str, int | None] | None = None
    previous = active_cache()
    if settings.use_cache:
        cache_dir = resolve_cache_dir(settings.cache_dir)
        cache_spec = (str(cache_dir), settings.cache_budget_bytes)
    cache_for_report = (
        cache_spec[0]
        if cache_spec is not None
        else (str(previous.directory) if previous is not None else "")
    )

    # Scheduling policy, not mechanism: worker processes above the CPU
    # count only add contention for this CPU-bound work (measured ~25%
    # slower on a single core), so requests are clamped here while
    # `execute_tasks` itself honours whatever it is given (tests drive
    # the pooled path explicitly).  Clamping cannot affect artifact
    # bytes — worker count never does.
    workers = max(1, min(settings.workers, os.cpu_count() or 1))
    if verbose and workers != settings.workers:
        print(
            f"  workers: {settings.workers} requested, {workers} used "
            f"({os.cpu_count()} CPU(s) available)"
        )

    tasks = _build_tasks(
        directory,
        config,
        cache_spec,
        prewarm=settings.use_cache or previous is not None,
    )
    # Resume: drop tasks the journal records as done.  `stage_tasks`
    # treats artifact labels no pending task provides as externally
    # satisfied, so consumers of a completed prewarm schedule normally
    # (and regenerate via their builders on a cache miss — resuming
    # never changes bytes, only what gets re-run).
    pending = [task for task in tasks if task.name not in completed_entries]
    if verbose and completed_entries:
        done = len(tasks) - len(pending)
        print(f"  resume {run_id}: {done} task(s) already completed")

    policy = RetryPolicy(
        max_attempts=settings.retries + 1,
        timeout_seconds=settings.task_timeout,
        seed=config.seed,
    )

    def _checkpoint(outcome) -> None:
        if journal is not None:
            journal.record(outcome.name, tuple(outcome.value), outcome.seconds)

    try:
        result = execute_tasks(
            pending,
            workers=workers,
            policy=policy,
            raise_on_failure=settings.failure_mode == "raise",
            on_complete=_checkpoint,
        )
    finally:
        # Serial tasks install the run's cache in *this* process; put
        # back whatever the caller had.
        configure_cache(previous)

    report = PerfReport(
        workers=workers,
        cache_enabled=bool(cache_for_report),
        cache_dir=cache_for_report,
        total_seconds=result.total_seconds,
        run_id=run_id if journal is not None else "",
        resumed=bool(completed_entries),
        pool_rebuilds=result.pool_rebuilds,
        degraded=result.degraded,
    )
    written: list[str] = []
    for task in tasks:
        entry = completed_entries.get(task.name)
        if entry is not None:
            written.extend(entry.artifacts)  # finished in a previous run
            continue
        outcome = result.outcomes.get(task.name)
        if outcome is None:
            continue  # failed or skipped; reported below
        report.add_timing(task.name, outcome.seconds)
        report.merge_cache_stats(outcome.cache_stats)
        for name in outcome.value:
            written.append(name)
            if verbose:
                print(f"  wrote {name}")
    for name in sorted(result.failures):
        failure = result.failures[name]
        report.add_failure(failure.as_dict())
        if verbose:
            print(
                f"  FAILED {failure.name} after {failure.attempts} "
                f"attempt(s): {failure.message}"
            )
    for name in sorted(result.skipped):
        report.add_skip(name, result.skipped[name])
        if verbose:
            print(f"  skipped {name}: {result.skipped[name]}")
    if report.ok:
        # Only a complete run earns a manifest: serving from a partial
        # run would answer queries from indices that silently miss
        # domains.  Resumed completions finish with report.ok too.
        write_manifest(directory, config, written)
        if verbose:
            print(f"  wrote {MANIFEST_NAME}")
    return written, report


def run_everything(
    output_dir: str | Path,
    config: ExperimentConfig | None = None,
    verbose: bool = True,
    settings: ExecutionSettings | None = None,
) -> list[str]:
    """Run every table/figure; write artifacts; return their names.

    Thin wrapper over :func:`run_everything_with_report` for callers who
    do not care about timings.
    """
    written, __ = run_everything_with_report(
        output_dir, config, verbose=verbose, settings=settings
    )
    return written
