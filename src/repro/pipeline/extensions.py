"""Runners for the extension studies (beyond the paper's own figures).

The tables/figures runners live in :mod:`repro.pipeline.experiments`;
this module gives the extension analyses the same one-call shape, each
returning a small result object with a ``render()`` method:

- :func:`run_discovery_study` — perfect vs. budgeted bootstrapping
  against the d/2 bound.
- :func:`run_redundancy_study` — content-redundancy reports per
  (domain, attribute).
- :func:`run_user_tail_study` — per-user tail exposure per site.
- :func:`run_staleness_study` — snapshot decay and re-crawl policies.

The discovery/redundancy/staleness runners cache their *derived panels*
through :func:`repro.perf.active_cache` (the studies already shared the
spread incidences; now warm runs skip the expansions, report scans, and
corpus evolution too).  Every cached row is coerced to plain Python
scalars before storage, so a JSON round-tripped warm result is
indistinguishable from a cold one — same byte-identity contract as the
pipeline artifacts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.graph import EntitySiteGraph
from repro.core.redundancy import RedundancyReport, redundancy_report
from repro.discovery.bootstrap import BootstrapExpansion
from repro.discovery.noisy import NoisyExpansion
from repro.perf import active_cache, fingerprint
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import spread_incidence
from repro.report.tables import ascii_table
from repro.traffic.demandmodel import get_site_profile
from repro.traffic.logs import TrafficLogGenerator
from repro.traffic.users import UserTailReport, user_tail_analysis
from repro.webgen.evolution import CorpusEvolver, recrawl_comparison, staleness_curve
from repro.webgen.profiles import get_profile

__all__ = [
    "DiscoveryStudy",
    "StalenessStudy",
    "format_user_tail",
    "run_discovery_study",
    "run_redundancy_study",
    "run_staleness_study",
    "run_user_tail_study",
]


def _seed(config: ExperimentConfig, label: str) -> int:
    return (config.seed * 7_368_787 + zlib.crc32(label.encode())) & 0x7FFFFFFF


@dataclass(frozen=True)
class DiscoveryStudy:
    """Perfect vs. budgeted bootstrapping on one corpus."""

    domain: str
    attribute: str
    diameter: int
    perfect_iterations: int
    perfect_coverage: float
    budgeted_iterations: int
    budgeted_coverage: float
    budgeted_queries: int

    def render(self) -> str:
        """Human-readable summary."""
        return "\n".join(
            [
                f"Bootstrapping discovery ({self.domain}/{self.attribute}):",
                f"  diameter d = {self.diameter} (bound d/2 = {self.diameter // 2})",
                f"  perfect:  {self.perfect_iterations} iterations, "
                f"{self.perfect_coverage:.1%} coverage",
                f"  budgeted: {self.budgeted_iterations} iterations, "
                f"{self.budgeted_coverage:.1%} coverage, "
                f"{self.budgeted_queries} queries",
            ]
        )


def run_discovery_study(
    config: ExperimentConfig,
    domain: str = "restaurants",
    attribute: str = "phone",
    seed_size: int = 5,
    retrieval_budget: int = 10,
    extraction_recall: float = 0.9,
) -> DiscoveryStudy:
    """Run both expansion variants on a freshly generated corpus.

    Cached as a JSON record when an artifact cache is installed; the
    fingerprint covers the corpus identity (profile/scale/stream seed),
    the master seed both expansions draw from, and every study knob.
    """
    cache = active_cache()
    key = None
    if cache is not None:
        key = fingerprint(
            "discovery-study",
            profile=get_profile(domain, attribute),
            scale=config.scale_preset,
            stream_seed=_seed(config, f"spread:{domain}:{attribute}"),
            master_seed=config.seed,
            max_bfs=config.max_bfs,
            seed_size=seed_size,
            retrieval_budget=retrieval_budget,
            extraction_recall=extraction_recall,
        )
        rows = cache.get_records(key)
        if rows:
            return DiscoveryStudy(**rows[0])
    incidence = spread_incidence(domain, attribute, config)
    graph = EntitySiteGraph(incidence)
    diameter = graph.diameter(max_bfs=config.max_bfs)
    perfect = BootstrapExpansion(incidence).random_seed_trial(
        seed_size, rng=config.seed
    )
    budgeted = NoisyExpansion(
        incidence,
        retrieval_budget=retrieval_budget,
        extraction_recall=extraction_recall,
        seed=config.seed,
    ).run(perfect.entities[:seed_size].tolist())
    n = incidence.n_entities
    # Plain-scalar record so the cold result and the JSON round-tripped
    # warm result are indistinguishable downstream.
    record = {
        "domain": domain,
        "attribute": attribute,
        "diameter": int(diameter),
        "perfect_iterations": int(perfect.iterations),
        "perfect_coverage": float(perfect.entity_fraction(n)),
        "budgeted_iterations": int(budgeted.iterations),
        "budgeted_coverage": float(budgeted.entity_fraction(n)),
        "budgeted_queries": int(budgeted.queries_issued),
    }
    if cache is not None:
        cache.put_records(key, [record])
    return DiscoveryStudy(**record)


def run_redundancy_study(
    config: ExperimentConfig,
    pairs: tuple[tuple[str, str], ...] = (
        ("restaurants", "phone"),
        ("restaurants", "homepage"),
        ("books", "isbn"),
    ),
) -> dict[tuple[str, str], RedundancyReport]:
    """Redundancy reports for several (domain, attribute) corpora.

    Each pair's report is cached as one JSON record keyed on the corpus
    identity, so warm runs skip both generation and the report scans.
    """
    cache = active_cache()
    reports = {}
    for domain, attribute in pairs:
        key = None
        if cache is not None:
            key = fingerprint(
                "redundancy-report",
                profile=get_profile(domain, attribute),
                scale=config.scale_preset,
                stream_seed=_seed(config, f"spread:{domain}:{attribute}"),
            )
            rows = cache.get_records(key)
            if rows:
                reports[(domain, attribute)] = RedundancyReport(**rows[0])
                continue
        incidence = spread_incidence(domain, attribute, config)
        measured = redundancy_report(incidence)
        record = {
            "redundancy_coefficient": float(measured.redundancy_coefficient),
            "singleton_fraction": float(measured.singleton_fraction),
            "median_replication": float(measured.median_replication),
            "head_overlap_mean": float(measured.head_overlap_mean),
            "novelty_decay_rank": int(measured.novelty_decay_rank),
        }
        if cache is not None:
            cache.put_records(key, [record])
        reports[(domain, attribute)] = RedundancyReport(**record)
    return reports


def run_user_tail_study(
    config: ExperimentConfig,
    source: str = "browse",
    tail_fraction: float = 0.8,
) -> dict[str, UserTailReport]:
    """User-level tail exposure per traffic site."""
    reports = {}
    for site in ("imdb", "amazon", "yelp"):
        generator = TrafficLogGenerator(
            get_site_profile(site),
            n_entities=config.traffic_entities,
            n_cookies=config.traffic_cookies,
            seed=_seed(config, f"traffic:{site}"),
        )
        log = (
            generator.browse_log(config.traffic_events)
            if source == "browse"
            else generator.search_log(config.traffic_events)
        )
        reports[site] = user_tail_analysis(log, tail_fraction=tail_fraction)
    return reports


def format_user_tail(reports: dict[str, UserTailReport]) -> str:
    """Render the user-tail study as a table."""
    rows = [
        (
            site,
            round(report.tail_demand_share, 3),
            round(report.users_touching_tail, 3),
            round(report.users_regular_tail, 3),
        )
        for site, report in reports.items()
    ]
    return ascii_table(
        ["site", "tail demand share", "users touching tail", "users regular"],
        rows,
        title="User-level tail exposure",
    )


@dataclass(frozen=True)
class StalenessStudy:
    """Snapshot decay + re-crawl policy outcomes for one corpus."""

    domain: str
    attribute: str
    epochs: int
    decay: np.ndarray
    policies: dict[str, float]

    def render(self) -> str:
        """Human-readable summary."""
        decay_text = ", ".join(f"{value:.3f}" for value in self.decay)
        lines = [
            f"Staleness study ({self.domain}/{self.attribute}, "
            f"{self.epochs} epochs):",
            f"  still-true fraction per epoch: {decay_text}",
            "  final accuracy by re-crawl policy:",
        ]
        lines.extend(
            f"    {policy:<14} {value:.3f}"
            for policy, value in self.policies.items()
        )
        return "\n".join(lines)


def run_staleness_study(
    config: ExperimentConfig,
    domain: str = "banks",
    attribute: str = "phone",
    epochs: int = 5,
    churn: float = 0.08,
    budget_per_epoch: int = 30,
) -> StalenessStudy:
    """Evolve a corpus and compare re-crawl policies.

    Cached as one JSON record (decay series + policy map) when an
    artifact cache is installed; the fingerprint covers the corpus
    identity, the evolution seed, and every churn/budget knob.
    """
    cache = active_cache()
    key = None
    if cache is not None:
        key = fingerprint(
            "staleness-study",
            profile=get_profile(domain, attribute),
            scale=config.scale_preset,
            stream_seed=_seed(config, f"spread:{domain}:{attribute}"),
            master_seed=config.seed,
            epochs=epochs,
            churn=churn,
            budget_per_epoch=budget_per_epoch,
        )
        rows = cache.get_records(key)
        if rows:
            row = rows[0]
            return StalenessStudy(
                domain=domain,
                attribute=attribute,
                epochs=epochs,
                decay=np.asarray(row["decay"], dtype=np.float64),
                policies={name: float(v) for name, v in row["policies"].items()},
            )
    incidence = spread_incidence(domain, attribute, config)
    evolver = CorpusEvolver(edge_drop_rate=churn, edge_add_rate=churn)
    snapshots = evolver.evolve(incidence, epochs=epochs, rng=config.seed)
    decay = staleness_curve(snapshots, incidence)
    policies = recrawl_comparison(
        incidence,
        evolver,
        epochs=epochs,
        budget_per_epoch=budget_per_epoch,
        rng=config.seed,
    )
    record = {
        "decay": [float(value) for value in decay],
        "policies": {name: float(value) for name, value in policies.items()},
    }
    if cache is not None:
        cache.put_records(key, [record])
    return StalenessStudy(
        domain=domain,
        attribute=attribute,
        epochs=epochs,
        decay=np.asarray(record["decay"], dtype=np.float64),
        policies=record["policies"],
    )
