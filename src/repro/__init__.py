"""repro — a reproduction of "An Analysis of Structured Data on the Web".

Dalvi, Machanavajjhala, Pang (Yahoo! Research), PVLDB 5(7), VLDB 2012.

The paper measures how structured data (entities and their identifying
attributes) is spread across websites, what tail extraction is worth,
and how connected the entity-site graph is.  Its substrates -- Yahoo!'s
web crawl, business-listing and book databases, and search/browse
traffic logs -- are proprietary; this library rebuilds faithful
synthetic equivalents and reruns every table and figure on them.

Quickstart::

    from repro.pipeline import ExperimentConfig, run_spread

    config = ExperimentConfig(scale="small", seed=0)
    result = run_spread("restaurants", "phone", config)
    print(result.render())

Subpackages:

- :mod:`repro.entities` -- entity databases and identifier algebra.
- :mod:`repro.webgen` -- the generative web model and HTML renderer.
- :mod:`repro.crawl` -- page stores and the host-grouped crawl cache.
- :mod:`repro.extract` -- phone/ISBN/homepage extractors, Naive Bayes,
  review detection, and the cache-scanning runner.
- :mod:`repro.traffic` -- search/browse log simulation and demand
  aggregation.
- :mod:`repro.core` -- the analyses: k-coverage, set cover, demand
  curves, value-add, graph connectivity.
- :mod:`repro.discovery` -- bootstrapping set-expansion.
- :mod:`repro.pipeline` -- one runner per table/figure.
- :mod:`repro.report` -- ASCII tables/plots and CSV output.
"""

from repro.core.incidence import BipartiteIncidence
from repro.entities.catalog import Entity, EntityDatabase
from repro.pipeline.config import ExperimentConfig

__version__ = "1.0.0"

__all__ = [
    "BipartiteIncidence",
    "Entity",
    "EntityDatabase",
    "ExperimentConfig",
    "__version__",
]
