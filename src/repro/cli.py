"""Command-line interface: ``python -m repro <command>``.

Exposes every experiment runner so the paper's tables and figures can
be regenerated without writing Python:

- ``python -m repro table1`` / ``table2``
- ``python -m repro figure 1`` … ``figure 9``
- ``python -m repro spread restaurants phone``
- ``python -m repro discover`` (bootstrapping, perfect vs budgeted)
- ``python -m repro crawl`` (focused-crawl policy comparison)
- ``python -m repro resolve`` (entity-resolution demo)
- ``python -m repro serve`` / ``serve-bench`` (the online query
  service over a finished ``repro all`` run, and its load generator)
- ``python -m repro journal-gc`` (reap old run journals)
- ``python -m repro bench --history`` (cross-PR benchmark trajectory)

``--csv DIR`` writes each figure's series as long-format CSV next to
the ASCII rendering.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.pipeline.config import ExperimentConfig

__all__ = ["build_parser", "main"]


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        traffic_entities=args.traffic_entities,
        traffic_events=args.traffic_events,
        traffic_cookies=args.traffic_cookies,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "paper", "ladder"),
        help="corpus scale preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--csv", type=Path, default=None, metavar="DIR",
                        help="also write series as CSV into DIR")
    parser.add_argument("--traffic-entities", type=int, default=20000)
    parser.add_argument("--traffic-events", type=int, default=200000)
    parser.add_argument("--traffic-cookies", type=int, default=50000)


def _maybe_csv(args: argparse.Namespace, name: str, series: dict) -> None:
    if args.csv is None:
        return
    from repro.report.figures import write_csv

    path = write_csv(args.csv / f"{name}.csv", series)
    print(f"(series written to {path})")


# -- command handlers --------------------------------------------------------


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.pipeline.experiments import run_table1

    print(run_table1())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.pipeline.experiments import format_table2, run_table2

    print(format_table2(run_table2(_config_from(args))))
    return 0


def _cmd_spread(args: argparse.Namespace) -> int:
    from repro.core.coverage import sites_needed_for_coverage
    from repro.pipeline.experiments import run_spread

    result = run_spread(args.domain, args.attribute, _config_from(args))
    print(result.render())
    needed = sites_needed_for_coverage(result.incidence, args.target, k=args.k)
    print(
        f"\nsites needed for {args.target:.0%} coverage at k={args.k}: {needed}"
    )
    _maybe_csv(args, f"spread_{args.domain}_{args.attribute}", result.series())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro import pipeline
    from repro.report.figures import ascii_plot

    config = _config_from(args)
    number = args.number
    if number == 1 or number == 2:
        runner = pipeline.run_figure1 if number == 1 else pipeline.run_figure2
        for domain, result in runner(config).items():
            print(result.render())
            print()
            _maybe_csv(args, f"figure{number}_{domain}", result.series())
    elif number == 3:
        result = pipeline.run_figure3(config)
        print(result.render())
        _maybe_csv(args, "figure3", result.series())
    elif number == 4:
        result = pipeline.run_figure4(config)
        print(result.render())
        _maybe_csv(args, "figure4a", result.spread.series())
        _maybe_csv(args, "figure4b", result.aggregate_series())
    elif number == 5:
        result = pipeline.run_figure5(config)
        print(result.render())
        print(f"\nmax greedy improvement: {result.max_improvement():.3f}")
        _maybe_csv(args, "figure5", result.series())
    elif number == 6:
        curves = pipeline.run_figure6(config)
        for source in ("search", "browse"):
            series = {
                site: (c.inventory, c.cumulative_share)
                for site, c in curves[source].items()
            }
            print(
                ascii_plot(
                    series,
                    title=f"Figure 6: demand CDF ({source})",
                    x_label="normalized inventory",
                    y_label="cumulative demand",
                )
            )
            print()
            _maybe_csv(args, f"figure6_cdf_{source}", series)
    elif number == 7:
        panels = pipeline.run_figure7(config)
        for site, sources in panels.items():
            print(
                ascii_plot(
                    sources,
                    title=f"Figure 7: demand vs #reviews ({site})",
                    x_label="# of reviews",
                    y_label="avg normalized demand",
                )
            )
            print()
            _maybe_csv(args, f"figure7_{site}", sources)
    elif number == 8:
        panels = pipeline.run_figure8(config)
        for site, sources in panels.items():
            series = {
                source: (curve.review_counts, curve.relative_value_add)
                for source, curve in sources.items()
            }
            print(
                ascii_plot(
                    series,
                    log_x=True,
                    title=f"Figure 8: VA(n)/VA(0) ({site})",
                    x_label="# of reviews",
                    y_label="relative value-add",
                )
            )
            print()
            _maybe_csv(args, f"figure8_{site}", series)
    elif number == 9:
        panels = pipeline.run_figure9(config)
        for attribute, by_domain in panels.items():
            print(
                ascii_plot(
                    by_domain,
                    title=f"Figure 9: robustness ({attribute})",
                    x_label="top-k sites removed",
                    y_label="fraction in largest component",
                )
            )
            print()
            _maybe_csv(args, f"figure9_{attribute}", by_domain)
    else:
        print(f"unknown figure {number}; the paper has figures 1-9",
              file=sys.stderr)
        return 2
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    from repro.core.graph import EntitySiteGraph
    from repro.discovery.bootstrap import BootstrapExpansion
    from repro.discovery.noisy import NoisyExpansion
    from repro.webgen.profiles import get_profile

    config = _config_from(args)
    incidence = get_profile(args.domain, args.attribute).generate(
        config.scale_preset, seed=config.seed
    )
    graph = EntitySiteGraph(incidence)
    diameter = graph.diameter()
    print(f"corpus: {incidence}, diameter {diameter} (bound: d/2 = {diameter // 2})")

    perfect = BootstrapExpansion(incidence).random_seed_trial(
        seed_size=args.seeds, rng=config.seed
    )
    print(
        f"perfect expansion:  {perfect.iterations} iterations, "
        f"{perfect.entity_fraction(incidence.n_entities):.1%} of database, "
        f"entity trajectory {perfect.entity_counts}"
    )
    noisy = NoisyExpansion(
        incidence,
        retrieval_budget=args.budget,
        extraction_recall=args.recall,
        seed=config.seed,
    ).run(perfect.entities[: args.seeds].tolist())
    print(
        f"budgeted expansion: {noisy.iterations} iterations, "
        f"{noisy.entity_fraction(incidence.n_entities):.1%} of database, "
        f"{noisy.queries_issued} queries "
        f"(budget={args.budget}, recall={args.recall})"
    )
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.discovery.crawler import FocusedCrawler
    from repro.webgen.profiles import get_profile

    config = _config_from(args)
    incidence = get_profile(args.domain, args.attribute).generate(
        config.scale_preset, seed=config.seed
    )
    crawler = FocusedCrawler(incidence)
    results = crawler.compare_policies(args.pages, rng=config.seed)
    print(f"corpus: {incidence}; page budget {args.pages}")
    for policy, result in results.items():
        final = float(result.coverage[-1]) if len(result.coverage) else 0.0
        print(
            f"  {policy:<14} sites={result.sites_crawled:<6} "
            f"pages={result.total_pages:<8} coverage={final:.1%}"
        )
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.pipeline.config import ExecutionSettings
    from repro.pipeline.runall import run_everything_with_report
    from repro.resilience import JournalMismatchError

    status = _install_fault_plan(args.inject_faults)
    if status:
        return status
    if args.compile_store and args.no_cache:
        print(
            "--compile-store emits cache-addressed store blobs and needs "
            "the artifact cache; drop --no-cache",
            file=sys.stderr,
        )
        return 2

    resume = args.resume is not None
    run_id = args.run_id
    if resume and args.resume:  # `--resume RUN_ID` names the journal directly
        run_id = args.resume
    settings = ExecutionSettings(
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=None if args.cache_dir is None else str(args.cache_dir),
        cache_budget_bytes=(
            None
            if args.cache_budget_mb is None
            else args.cache_budget_mb * 1024 * 1024
        ),
        retries=args.retries,
        task_timeout=args.task_timeout,
        failure_mode="raise" if args.fail_fast else "continue",
        keep_journal=True,
        run_id=run_id,
        resume=resume,
        journal_dir=None if args.journal_dir is None else str(args.journal_dir),
    )
    try:
        written, report = run_everything_with_report(
            args.output, _config_from(args), settings=settings
        )
    except JournalMismatchError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    print(f"\n{len(written)} artifacts in {args.output}")
    stats = report.cache
    if report.cache_enabled:
        quarantine = (
            f", {stats.quarantined} quarantined" if stats.quarantined else ""
        )
        print(
            f"cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {stats.hit_rate:.0%}{quarantine}) at {report.cache_dir}"
        )
    print(f"total: {report.total_seconds:.1f}s with {report.workers} worker(s)")
    if args.perf_report is not None:
        path = report.write(args.perf_report)
        print(f"perf report written to {path}")
    if not report.ok:
        print(
            f"\n{len(report.failures)} task(s) failed, "
            f"{len(report.skipped)} skipped; rerun just the missing work "
            f"with: repro all {args.output} --resume {report.run_id}",
            file=sys.stderr,
        )
        return 3
    if args.compile_store:
        from repro.perf import ArtifactCache, configure_cache
        from repro.store import build_store, load_manifest

        configure_cache(
            ArtifactCache(
                directory=args.cache_dir,
                max_bytes=(
                    None
                    if args.cache_budget_mb is None
                    else args.cache_budget_mb * 1024 * 1024
                ),
            )
        )
        store = build_store(load_manifest(args.output))
        print(
            f"store compiled [{store.identity[:12]}]: "
            f"{len(store.pair_blobs)} pair blob sets, "
            f"sqlite at {store.sqlite_path}"
        )
    return 0


def _install_fault_plan(plan_text: str | None) -> int:
    """Validate and install an ``--inject-faults`` plan; 0 on success."""
    import os

    from repro.resilience import ENV_FAULTS, FaultPlan, FaultPlanError, clear_plan_cache

    if plan_text is None:
        return 0
    try:
        FaultPlan.parse(plan_text)
    except FaultPlanError as exc:
        print(f"bad --inject-faults plan: {exc}", file=sys.stderr)
        return 2
    # Through the environment so forked worker processes inherit it.
    os.environ[ENV_FAULTS] = plan_text
    clear_plan_cache()
    return 0


def _resolve_backend(args: argparse.Namespace) -> str:
    """Validate the ``--backend`` / ``--no-cache`` combination.

    The out-of-core tiers compile cache-addressed store blobs, so they
    need the artifact cache; ``auto`` quietly degrades to ``ram`` when
    the cache is off, while an explicit out-of-core choice is an error.
    """
    backend = getattr(args, "backend", "auto")
    if args.no_cache and backend in ("mmap", "sqlite"):
        raise ValueError(
            f"--backend {backend} compiles cache-addressed store blobs "
            "and needs the artifact cache; drop --no-cache"
        )
    if args.no_cache and backend == "auto":
        return "ram"
    return backend


def _build_serve_index(args: argparse.Namespace, manifest_path=None):
    """Load a run manifest and build the serving index (cache-aware)."""
    from repro.perf import ArtifactCache, configure_cache
    from repro.serve import build_index, load_manifest

    backend = _resolve_backend(args)
    if not args.no_cache:
        configure_cache(
            ArtifactCache(
                directory=args.cache_dir,
                max_bytes=(
                    None
                    if args.cache_budget_mb is None
                    else args.cache_budget_mb * 1024 * 1024
                ),
            )
        )
    if manifest_path is None:
        manifest_path = args.artifacts
    manifest = load_manifest(manifest_path)
    index = build_index(manifest, backend=backend)
    print(
        f"index built in {index.build_seconds:.2f}s: "
        f"{len(index.pairs)} (domain, attribute) pairs, "
        f"{len(index.demand)} traffic sites "
        f"[{index.backend} backend, fingerprint {index.identity[:12]}]"
    )
    return index


def _serve_settings(args: argparse.Namespace, port: int):
    """ServeSettings from the shared serve/serve-bench flag set."""
    from repro.serve import ServeSettings

    return ServeSettings(
        host=args.host,
        port=port,
        deadline_seconds=args.deadline,
        query_threads=args.query_threads,
        response_cache_entries=(
            0 if args.no_response_cache else args.response_cache_entries
        ),
    )


def _expand_run_paths(paths: list[Path]) -> list[Path]:
    """Expand a single registry directory into its run directories.

    A lone path that is a directory *without* its own ``manifest.json``
    but whose children have one is a registry: every child run is
    served.  Anything else passes through unchanged.
    """
    from repro.pipeline.config import MANIFEST_NAME

    if len(paths) == 1:
        root = paths[0]
        if root.is_dir() and not (root / MANIFEST_NAME).exists():
            children = sorted(
                child
                for child in root.iterdir()
                if child.is_dir() and (child / MANIFEST_NAME).exists()
            )
            if children:
                return children
    return paths


def _run_id_of(path: Path) -> str:
    """Registry name of a run: its directory name."""
    from repro.pipeline.config import MANIFEST_NAME

    resolved = Path(path)
    if resolved.name == MANIFEST_NAME:
        resolved = resolved.parent
    return resolved.name


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.serve import (
        ManifestWatcher,
        RunRouter,
        ServeApp,
        ShardPlan,
        ShardedServer,
        build_index,
        load_manifest,
        make_server,
    )

    status = _install_fault_plan(args.inject_faults)
    if status:
        return status
    run_paths = _expand_run_paths([Path(p) for p in args.artifacts])
    run_ids = [_run_id_of(path) for path in run_paths]
    duplicates = sorted({rid for rid in run_ids if run_ids.count(rid) > 1})
    if duplicates:
        print(
            f"duplicate run id(s) {duplicates}: run directories must "
            "have distinct names",
            file=sys.stderr,
        )
        return 2
    primary_path, extra_paths = run_paths[0], run_paths[1:]
    extra_runs = dict(zip(run_ids[1:], extra_paths))
    try:
        backend = _resolve_backend(args)
        index = _build_serve_index(args, manifest_path=primary_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"no manifest: {exc}", file=sys.stderr)
        return 2
    # Reloads (and extra-run builds) rebuild into the same tier.
    builder = lambda manifest: build_index(manifest, backend=backend)  # noqa: E731

    if args.workers > 1:
        sharded = ShardedServer(
            index=index,
            manifest_path=primary_path,
            settings=_serve_settings(args, args.port),
            plan=ShardPlan(
                workers=args.workers,
                strategy=args.strategy,
                reload_poll_seconds=args.reload_poll,
            ),
            builder=builder,
            extra_runs=extra_runs,
            default_run=run_ids[0],
        )
        host, port = sharded.start()
        print(
            f"serving on http://{host}:{port} with {args.workers} workers "
            f"({sharded.strategy}) (Ctrl-C to stop)"
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            sharded.stop()
        return 0

    app = ServeApp(index, _serve_settings(args, args.port))
    watchers = []
    if args.reload_poll > 0:
        watchers.append(
            ManifestWatcher(
                primary_path, app, args.reload_poll, builder=builder
            ).start()
        )
    handler = app
    if extra_runs:
        apps = {run_ids[0]: app}
        for run_id, path in extra_runs.items():
            run_app = ServeApp(
                builder(load_manifest(path)), _serve_settings(args, args.port)
            )
            apps[run_id] = run_app
            if args.reload_poll > 0:
                watchers.append(
                    ManifestWatcher(
                        path, run_app, args.reload_poll, builder=builder
                    ).start()
                )
        handler = RunRouter(apps, run_ids[0])
        print(f"multi-run registry: {sorted(apps)} (default: {run_ids[0]})")
    server = make_server(handler)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for watcher in watchers:
            watcher.stop()
        server.shutdown()
        server.server_close()
        handler.close()
    return 0


def _parse_sweep(text: str | None) -> list[float] | None:
    """Parse a ``--sweep`` rate ladder ('a,b,c' of positive req/s)."""
    if text is None:
        return None
    try:
        rates = [float(piece) for piece in text.split(",") if piece.strip()]
    except ValueError:
        raise ValueError(f"unparseable sweep rates: {text!r}") from None
    if not rates or any(rate <= 0 for rate in rates):
        raise ValueError(f"sweep rates must be positive: {text!r}")
    return rates


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json
    import threading

    from repro.perf import peak_rss_mb, rss_high_water_mb
    from repro.serve import (
        LoadPlan,
        OpenLoadPlan,
        ServeApp,
        ShardPlan,
        ShardedServer,
        build_open_schedule,
        build_streams,
        find_knee,
        make_server,
        run_load,
        run_open_load,
        stream_digest,
        write_bench_report,
        write_open_bench_report,
    )

    status = _install_fault_plan(args.inject_faults)
    if status:
        return status
    try:
        sweep_rates = _parse_sweep(args.sweep)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        index = _build_serve_index(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"no manifest: {exc}", file=sys.stderr)
        return 2

    open_mode = args.mode == "open"
    if open_mode:
        open_plan = OpenLoadPlan(
            seed=args.seed,
            rate=args.rate,
            duration_seconds=args.duration,
            connections=args.connections,
            zipf_exponent=args.zipf_exponent,
        )
        plan = open_plan.closed_plan()
    else:
        plan = LoadPlan(
            seed=args.seed,
            clients=args.clients,
            requests=args.requests,
            zipf_exponent=args.zipf_exponent,
        )
    summary = index.summary()
    streams = build_streams(summary, plan)
    print(f"request stream sha256: {stream_digest(streams)}")
    if args.dry_run:
        return 0

    # Self-hosted target: ephemeral port, torn down after the run.
    # Open mode needs the pipelining keep-alive shell, so anything but
    # the plain closed-loop single process goes through the sharded
    # supervisor (which runs FastHTTPServer workers even at workers=1).
    app = None
    sharded = None
    settings = _serve_settings(args, 0)
    if open_mode or args.workers > 1:
        sharded = ShardedServer(
            index=index,
            settings=settings,
            plan=ShardPlan(workers=args.workers, strategy=args.strategy),
        )
        host, port = sharded.start()
    else:
        app = ServeApp(index, settings)
        server = make_server(app)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()

    sweep = None
    warmup = None
    try:
        if open_mode:
            if args.warmup == "on":
                # Replay the largest rung once, unmeasured, so the sweep
                # reports warm steady-state latency.  Connections are
                # established sequentially, so worker i is warmed with
                # the same stream it will serve in the measured runs.
                warm_rate = max(sweep_rates or [], default=open_plan.rate)
                warm_plan = open_plan.at_rate(max(warm_rate, open_plan.rate))
                warm_streams = build_streams(summary, warm_plan.closed_plan())
                print(
                    f"warmup: replaying {warm_plan.requests} requests at "
                    f"{warm_plan.rate:g} req/s (unmeasured)"
                )
                warm_result = run_open_load(
                    host,
                    port,
                    warm_streams,
                    build_open_schedule(warm_plan),
                    warm_plan.rate,
                )
                warmup = {
                    "rate_rps": warm_plan.rate,
                    "requests": warm_plan.requests,
                    "transport_errors": warm_result.transport_errors,
                }
            knee_result = None
            if sweep_rates is not None:
                sweep, knee_result = find_knee(
                    host,
                    port,
                    summary,
                    open_plan,
                    sweep_rates,
                    p99_budget_ms=args.p99_budget_ms,
                )
                for row in sweep["rates"]:
                    print(
                        f"  rate {row['offered_rate_rps']:>10} req/s -> "
                        f"{row['throughput_rps']:>10} achieved, "
                        f"p99 {row['p99_ms']}ms "
                        f"{'ok' if row['ok'] else 'OVER BUDGET'}"
                    )
                if knee_result is not None:
                    open_plan = open_plan.at_rate(sweep["knee_rate_rps"])
            if knee_result is not None:
                # Report the very run that established the knee instead
                # of re-measuring it (a second run has its own noise).
                result = knee_result
            else:
                result = run_open_load(
                    host,
                    port,
                    streams,
                    build_open_schedule(open_plan),
                    open_plan.rate,
                )
        else:
            result = run_load(host, port, streams, keep_alive=args.keep_alive == "on")
    finally:
        # Peak RSS must be read while the serving processes are alive:
        # /proc/<pid>/status vanishes with the worker.
        if sharded is not None:
            rss_mb = peak_rss_mb(sharded.worker_pids())
            sharded.stop()
        else:
            rss_mb = rss_high_water_mb()
            server.shutdown()
            server.server_close()
            thread.join()

    metrics = None
    if app is not None:
        __, metrics_body = app.handle("/metrics")
        metrics = json.loads(metrics_body)
        app.close()
    target = (
        f"self-hosted {host}:{port} "
        f"({args.workers} worker(s), {args.mode} loop)"
    )
    if open_mode:
        payload = write_open_bench_report(
            args.report,
            open_plan,
            result,
            sweep=sweep,
            server_metrics=metrics,
            target=target,
            warmup=warmup,
            rss_mb=rss_mb,
        )
        print(
            f"offered {payload['offered_rate_rps']} req/s for "
            f"{open_plan.duration_seconds}s over "
            f"{open_plan.connections} connection(s): "
            f"{result.total_requests} completed "
            f"({payload['throughput_rps']} req/s achieved)"
        )
        if sweep is not None:
            print(
                f"knee: {sweep['knee_rate_rps']} req/s offered with p99 "
                f"under {sweep['p99_budget_ms']}ms"
            )
        if payload["per_worker"]:
            print(f"per-worker requests: {payload['per_worker']}")
    else:
        payload = write_bench_report(
            args.report,
            plan,
            result,
            server_metrics=metrics,
            target=target,
            rss_mb=rss_mb,
        )
        print(
            f"{result.total_requests} requests in {result.wall_seconds:.2f}s "
            f"({payload['throughput_rps']} req/s) with {plan.clients} client(s)"
        )
    latency = payload["latency_ms"]
    print(
        f"latency p50={latency['p50_ms']}ms p95={latency['p95_ms']}ms "
        f"p99={latency['p99_ms']}ms"
    )
    print(f"statuses: {payload['statuses']}")
    if rss_mb is not None:
        print(f"server peak rss: {rss_mb} MB")
    print(f"report written to {args.report}")
    return 1 if result.transport_errors else 0


def _cmd_journal_gc(args: argparse.Namespace) -> int:
    from repro.resilience import gc_journals

    try:
        result = gc_journals(
            directory=args.journal_dir,
            keep=args.keep,
            max_age_days=args.max_age_days,
            protect=tuple(args.protect),
            grace_seconds=args.grace_seconds,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(result.summary())
    for run_id in result.removed:
        print(f"  removed {run_id}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import collect_bench_rows, format_history, update_performance_doc

    if not args.history:
        print("nothing to do; pass --history", file=sys.stderr)
        return 2
    rows = collect_bench_rows(args.root)
    if not args.no_doc:
        update_performance_doc(args.doc, rows)
        print(f"(history table written to {args.doc})\n")
    print(format_history(rows))
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.report.figures import ascii_plot
    from repro.webgen.evolution import (
        CorpusEvolver,
        recrawl_comparison,
        staleness_curve,
    )
    from repro.webgen.profiles import get_profile

    config = _config_from(args)
    incidence = get_profile(args.domain, args.attribute).generate(
        config.scale_preset, seed=config.seed
    )
    evolver = CorpusEvolver(
        edge_drop_rate=args.churn, edge_add_rate=args.churn
    )
    snapshots = evolver.evolve(incidence, epochs=args.epochs, rng=config.seed)
    decay = staleness_curve(snapshots, incidence)
    print(
        ascii_plot(
            {"still-true fraction": (range(1, len(decay) + 1), decay)},
            title=f"Snapshot staleness ({args.churn:.0%} churn per epoch)",
            x_label="epochs since crawl",
            y_label="fraction of facts still true",
        )
    )
    policies = recrawl_comparison(
        incidence,
        evolver,
        epochs=args.epochs,
        budget_per_epoch=args.budget,
        rng=config.seed,
    )
    print(f"\nfinal accuracy with {args.budget} re-crawled sites/epoch:")
    for policy, value in policies.items():
        print(f"  {policy:<14} {value:.3f}")
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.crawl.deepweb import DeepWebProber, DeepWebSite
    from repro.entities.business import generate_listings

    hidden = generate_listings(args.domain, args.entities, seed=args.seed)
    site = DeepWebSite("forms.example.com", hidden, page_size=args.page_size)
    prober = DeepWebProber(hidden[: args.seeds], max_queries=args.queries)
    result = prober.probe(site)
    print(f"hidden records: {site.n_hidden} (page size {site.page_size})")
    print(f"seeds: {args.seeds} known entities; budget {args.queries} queries")
    print(f"harvested: {len(result.harvested)} ({result.coverage:.1%})")
    print(f"queries issued: {result.queries_issued} "
          f"({result.queries_per_record:.2f} per record)")
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    from repro.entities.business import generate_listings
    from repro.linking.mentions import MentionGenerator
    from repro.linking.resolution import EntityResolver

    listings = generate_listings(args.domain, args.entities, seed=args.seed)
    mentions = MentionGenerator(seed=args.seed + 1).corpus(
        listings, mentions_per_listing=args.mentions
    )
    resolver = EntityResolver(listings, threshold=args.threshold)
    report = resolver.evaluate(mentions)
    print(f"listings: {len(listings)}, mentions: {report.n_mentions}")
    print(f"linked: {report.n_linked}")
    print(f"precision: {report.precision:.3f}")
    print(f"recall:    {report.recall:.3f}")
    print(f"F1:        {report.f1:.3f}")
    print(f"mean blocking candidates per mention: {report.mean_candidates:.1f} "
          f"(vs {len(listings)} for a full scan)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'An Analysis of Structured Data on the Web' "
            "(VLDB 2012) on a synthetic substrate."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="domain inventory (Table 1)")
    table1.set_defaults(handler=_cmd_table1)
    _add_common(table1)

    table2 = commands.add_parser("table2", help="graph metrics (Table 2)")
    table2.set_defaults(handler=_cmd_table2)
    _add_common(table2)

    figure = commands.add_parser("figure", help="reproduce figure 1-9")
    figure.add_argument("number", type=int, help="figure number (1-9)")
    figure.set_defaults(handler=_cmd_figure)
    _add_common(figure)

    spread = commands.add_parser("spread", help="k-coverage for one panel")
    spread.add_argument("domain")
    spread.add_argument("attribute")
    spread.add_argument("--target", type=float, default=0.9)
    spread.add_argument("-k", type=int, default=1)
    spread.set_defaults(handler=_cmd_spread)
    _add_common(spread)

    discover = commands.add_parser(
        "discover", help="bootstrapping discovery, perfect vs budgeted"
    )
    discover.add_argument("--domain", default="restaurants")
    discover.add_argument("--attribute", default="phone")
    discover.add_argument("--seeds", type=int, default=5)
    discover.add_argument("--budget", type=int, default=10)
    discover.add_argument("--recall", type=float, default=0.9)
    discover.set_defaults(handler=_cmd_discover)
    _add_common(discover)

    crawl = commands.add_parser("crawl", help="focused-crawl policy comparison")
    crawl.add_argument("--domain", default="restaurants")
    crawl.add_argument("--attribute", default="phone")
    crawl.add_argument("--pages", type=int, default=2000)
    crawl.set_defaults(handler=_cmd_crawl)
    _add_common(crawl)

    run_all = commands.add_parser(
        "all", help="regenerate every table and figure into a directory"
    )
    run_all.add_argument("output", type=Path, help="output directory")
    run_all.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the staged executor (default: 1)",
    )
    run_all.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed artifact cache",
    )
    run_all.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-artifacts)",
    )
    run_all.add_argument(
        "--cache-budget-mb",
        type=int,
        default=None,
        metavar="MB",
        help="LRU byte budget for the cache (default: unlimited)",
    )
    run_all.add_argument(
        "--perf-report",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a JSON performance report (timings, cache stats, "
        "failure report)",
    )
    run_all.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts per task after the first (default: 2)",
    )
    run_all.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget (pooled execution only)",
    )
    run_all.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first terminal task failure instead of "
        "completing independent branches (exit code 1 instead of 3)",
    )
    run_all.add_argument(
        "--resume",
        nargs="?",
        const="",
        default=None,
        metavar="RUN_ID",
        help="skip tasks an existing journal records as done; with no "
        "RUN_ID the id is re-derived from the config and output dir",
    )
    run_all.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal id to checkpoint under (default: derived)",
    )
    run_all.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="journal location (default: $REPRO_JOURNAL_DIR or "
        "~/.cache/repro-journals)",
    )
    run_all.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan for chaos testing, "
        "e.g. 'op=error,task=figure3,times=1; op=corrupt,key=*' "
        "(see docs/robustness.md)",
    )
    run_all.add_argument(
        "--compile-store",
        action="store_true",
        help="after the run, compile the out-of-core store (mmap CSR "
        "blobs + SQLite) so `repro serve --backend mmap|sqlite` starts "
        "against warm artifacts (needs the cache)",
    )
    run_all.set_defaults(handler=_cmd_all)
    _add_common(run_all)

    def add_serve_common(
        sub: argparse.ArgumentParser, multi: bool = False
    ) -> None:
        if multi:
            sub.add_argument(
                "artifacts",
                type=Path,
                nargs="+",
                help="output directories of finished `repro all` runs "
                "(or their manifest.json files); several runs (or one "
                "registry directory of runs) serve behind "
                "/v1/run/{run_id}/ prefixes, first run is the default",
            )
        else:
            sub.add_argument(
                "artifacts",
                type=Path,
                help="output directory of a finished `repro all` run "
                "(or its manifest.json)",
            )
        sub.add_argument(
            "--backend",
            choices=("auto", "ram", "mmap", "sqlite"),
            default="auto",
            help="storage tier for the serving index: in-RAM CSR, "
            "memory-mapped CSR blobs, or compiled SQLite; auto picks "
            "by manifest size (see docs/storage.md)",
        )
        sub.add_argument("--host", default="127.0.0.1", help="bind address")
        sub.add_argument(
            "--deadline",
            type=float,
            default=5.0,
            metavar="SECONDS",
            help="per-request wall-clock budget (default: 5.0)",
        )
        sub.add_argument(
            "--query-threads",
            type=int,
            default=8,
            help="worker threads executing query bodies (default: 8)",
        )
        sub.add_argument(
            "--response-cache-entries",
            type=int,
            default=1024,
            metavar="N",
            help="LRU response-cache capacity (default: 1024)",
        )
        sub.add_argument(
            "--no-response-cache",
            action="store_true",
            help="disable the response cache (byte-identity checks)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="build the index without the artifact cache",
        )
        sub.add_argument(
            "--cache-dir",
            type=Path,
            default=None,
            metavar="DIR",
            help="artifact cache location (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-artifacts)",
        )
        sub.add_argument(
            "--cache-budget-mb",
            type=int,
            default=None,
            metavar="MB",
            help="LRU byte budget for the artifact cache",
        )
        sub.add_argument(
            "--inject-faults",
            default=None,
            metavar="PLAN",
            help="fault plan targeting serve handlers, e.g. "
            "'op=hang,task=serve:setcover,seconds=30'",
        )

    def add_shard_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker processes sharing the port (default: 1)",
        )
        sub.add_argument(
            "--strategy",
            choices=("auto", "reuseport", "router"),
            default="auto",
            help="sharding strategy: SO_REUSEPORT kernel balancing or the "
            "deterministic round-robin fd router (default: auto)",
        )

    serve = commands.add_parser(
        "serve", help="HTTP query service over a finished run's artifacts"
    )
    serve.add_argument(
        "--port", type=int, default=8123, help="bind port (0 = ephemeral)"
    )
    add_shard_flags(serve)
    serve.add_argument(
        "--reload-poll",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="poll the manifest and hot-swap the index on change "
        "(default: 0 = off)",
    )
    add_serve_common(serve, multi=True)
    serve.set_defaults(handler=_cmd_serve)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="seeded load generator (closed or open loop) against a "
        "self-hosted server",
    )
    serve_bench.add_argument("--seed", type=int, default=7, help="stream seed")
    serve_bench.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed: clients wait for responses (PR4-compatible); "
        "open: seeded Poisson arrivals at --rate (default: closed)",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=4, help="concurrent closed-loop clients"
    )
    serve_bench.add_argument(
        "--requests", type=int, default=200, help="total requests across clients"
    )
    serve_bench.add_argument(
        "--keep-alive",
        choices=("on", "off"),
        default="on",
        help="closed loop: reuse one connection per client, or open a "
        "fresh connection per request (default: on)",
    )
    serve_bench.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        metavar="RPS",
        help="open loop: offered request rate (default: 2000)",
    )
    serve_bench.add_argument(
        "--duration",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="open loop: run length per measurement (default: 2.0)",
    )
    serve_bench.add_argument(
        "--connections",
        type=int,
        default=2,
        metavar="N",
        help="open loop: pipelined keep-alive connections (default: 2)",
    )
    serve_bench.add_argument(
        "--sweep",
        default=None,
        metavar="R1,R2,...",
        help="open loop: sweep these offered rates ascending and report "
        "the knee (highest rate with p99 under --p99-budget-ms)",
    )
    serve_bench.add_argument(
        "--p99-budget-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="open loop: p99 latency budget the knee must meet "
        "(default: 50)",
    )
    serve_bench.add_argument(
        "--warmup",
        choices=("on", "off"),
        default="off",
        help="open loop: replay the largest rung once before measuring "
        "so rates report warm steady state (default: off)",
    )
    add_shard_flags(serve_bench)
    serve_bench.add_argument(
        "--zipf-exponent",
        type=float,
        default=1.1,
        help="popularity skew of entity/site/depth picks (default: 1.1)",
    )
    serve_bench.add_argument(
        "--report",
        type=Path,
        default=Path("BENCH_PR7.json"),
        metavar="FILE",
        help="latency/throughput report path (default: BENCH_PR7.json)",
    )
    serve_bench.add_argument(
        "--dry-run",
        action="store_true",
        help="print the request-stream digest without issuing requests",
    )
    add_serve_common(serve_bench)
    serve_bench.set_defaults(handler=_cmd_serve_bench)

    journal_gc = commands.add_parser(
        "journal-gc", help="reap old run journals (keep/max-age retention)"
    )
    journal_gc.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="journal location (default: $REPRO_JOURNAL_DIR or "
        "~/.cache/repro-journals)",
    )
    journal_gc.add_argument(
        "--keep",
        type=int,
        default=10,
        metavar="N",
        help="keep the N most recent unprotected journals (default: 10)",
    )
    journal_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="additionally remove journals older than D days",
    )
    journal_gc.add_argument(
        "--protect",
        action="append",
        default=[],
        metavar="RUN_ID",
        help="run id that must survive (repeatable); e.g. one about to "
        "be --resume'd",
    )
    journal_gc.add_argument(
        "--grace-seconds",
        type=float,
        default=3600.0,
        metavar="S",
        help="journals touched within S seconds are treated as in "
        "flight and kept (default: 3600)",
    )
    journal_gc.set_defaults(handler=_cmd_journal_gc)

    bench = commands.add_parser(
        "bench", help="benchmark tooling (currently: --history)"
    )
    bench.add_argument(
        "--history",
        action="store_true",
        help="aggregate BENCH_PR*.json into the cross-PR trajectory table",
    )
    bench.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        metavar="DIR",
        help="directory holding BENCH_PR*.json (default: .)",
    )
    bench.add_argument(
        "--doc",
        type=Path,
        default=Path("docs/performance.md"),
        metavar="FILE",
        help="performance doc whose data section to refresh "
        "(default: docs/performance.md)",
    )
    bench.add_argument(
        "--no-doc",
        action="store_true",
        help="print the table without touching the doc",
    )
    bench.set_defaults(handler=_cmd_bench)

    evolve = commands.add_parser(
        "evolve", help="corpus churn, staleness, re-crawl policies"
    )
    evolve.add_argument("--domain", default="banks")
    evolve.add_argument("--attribute", default="phone")
    evolve.add_argument("--epochs", type=int, default=6)
    evolve.add_argument("--churn", type=float, default=0.08)
    evolve.add_argument("--budget", type=int, default=30)
    evolve.set_defaults(handler=_cmd_evolve)
    _add_common(evolve)

    probe = commands.add_parser("probe", help="deep-web harvesting demo")
    probe.add_argument("--domain", default="restaurants")
    probe.add_argument("--entities", type=int, default=500)
    probe.add_argument("--seeds", type=int, default=10)
    probe.add_argument("--queries", type=int, default=3000)
    probe.add_argument("--page-size", type=int, default=15)
    probe.add_argument("--seed", type=int, default=0)
    probe.set_defaults(handler=_cmd_probe)

    resolve = commands.add_parser("resolve", help="entity-resolution demo")
    resolve.add_argument("--domain", default="restaurants")
    resolve.add_argument("--entities", type=int, default=300)
    resolve.add_argument("--mentions", type=int, default=3)
    resolve.add_argument("--threshold", type=float, default=0.7)
    resolve.add_argument("--seed", type=int, default=0)
    resolve.set_defaults(handler=_cmd_resolve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.handler(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
