"""Traffic substrate: search and browse logs over entity pages.

The paper approximates user demand from "one year of user search
traffic on Yahoo! Search (search) and one year of user browsing
activities recorded by Yahoo! Toolbar (browse)", extracting clicks on
URLs that map to unique structured entities on Amazon, Yelp, and IMDb
(Section 4.1).  This package is the substitute:

- :mod:`repro.traffic.urls` — the paper's URL patterns
  (``amazon.com/gp/product/[ID]``, ``amazon.com/*/dp/[ID]``,
  ``yelp.com/biz/[ID]``, ``imdb.com/title/tt[ID]``) with builders and
  parsers.
- :mod:`repro.traffic.demandmodel` — per-site demand distributions
  (IMDb sharpest, Yelp flattest) and the review-availability coupling
  that makes content decay faster than demand toward the tail.
- :mod:`repro.traffic.logs` — cookie-level event log generation and the
  unique-cookie demand aggregation.
"""

from repro.traffic.conversion import ConversionModel
from repro.traffic.demandmodel import (
    EntityPopulation,
    SITE_PROFILES,
    SiteDemandProfile,
    get_site_profile,
)
from repro.traffic.logs import TrafficLog, TrafficLogGenerator, unique_cookie_demand
from repro.traffic.users import UserTailReport, user_tail_analysis
from repro.traffic.urls import (
    build_entity_url,
    parse_entity_url,
    amazon_product_url,
    imdb_title_url,
    yelp_biz_url,
)

__all__ = [
    "ConversionModel",
    "EntityPopulation",
    "SITE_PROFILES",
    "SiteDemandProfile",
    "TrafficLog",
    "TrafficLogGenerator",
    "UserTailReport",
    "user_tail_analysis",
    "amazon_product_url",
    "build_entity_url",
    "get_site_profile",
    "imdb_title_url",
    "parse_entity_url",
    "unique_cookie_demand",
    "yelp_biz_url",
]
