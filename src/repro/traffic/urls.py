"""Entity URL patterns for Amazon, Yelp, and IMDb.

Section 4.1 of the paper defines how entity pages are recognized in the
traffic logs:

- Amazon: ``amazon.com/gp/product/[ID]`` or ``amazon.com/*/dp/[ID]``,
  keyed by the 10-character product ID.
- Yelp: ``yelp.com/biz/[ID]``.
- IMDb: ``imdb.com/title/tt[ID]``.

This module provides both directions: building a URL from an entity
index (used by the log generator) and parsing an observed URL back to
``(site, key)`` (used by the aggregation — the real code path the paper
ran over its logs).
"""

from __future__ import annotations

import re

__all__ = [
    "amazon_product_url",
    "build_entity_url",
    "imdb_title_url",
    "parse_entity_url",
    "yelp_biz_url",
]

_AMAZON_ALPHABET = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"

_AMAZON_GP = re.compile(r"amazon\.com/gp/product/([0-9A-Z]{10})(?:[/?]|$)")
_AMAZON_DP = re.compile(r"amazon\.com/(?:[^/]+/)?dp/([0-9A-Z]{10})(?:[/?]|$)")
_YELP_BIZ = re.compile(r"yelp\.com/biz/([a-z0-9-]+)(?:[/?]|$)")
_IMDB_TITLE = re.compile(r"imdb\.com/title/(tt\d{7,8})(?:[/?]|$)")


def _amazon_id(index: int) -> str:
    """Deterministic 10-character product id for entity ``index``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    chars = []
    value = index
    for _ in range(9):
        chars.append(_AMAZON_ALPHABET[value % 36])
        value //= 36
    return "B" + "".join(reversed(chars))


def amazon_product_url(index: int, style: int = 0) -> str:
    """An Amazon product URL in one of the paper's two patterns."""
    product_id = _amazon_id(index)
    if style % 2 == 0:
        return f"http://www.amazon.com/gp/product/{product_id}"
    return f"http://www.amazon.com/some-product-title/dp/{product_id}"


def yelp_biz_url(index: int) -> str:
    """A Yelp business URL."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return f"http://www.yelp.com/biz/business-{index:08d}"


def imdb_title_url(index: int) -> str:
    """An IMDb title URL."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return f"http://www.imdb.com/title/tt{index:07d}/"


def build_entity_url(site: str, index: int, style: int = 0) -> str:
    """Entity URL for ``site`` ∈ {amazon, yelp, imdb}."""
    if site == "amazon":
        return amazon_product_url(index, style=style)
    if site == "yelp":
        return yelp_biz_url(index)
    if site == "imdb":
        return imdb_title_url(index)
    raise ValueError(f"unknown site {site!r}")


def parse_entity_url(url: str) -> tuple[str, str] | None:
    """Parse a URL to ``(site, entity_key)``; None when not an entity page.

    The keys are the raw IDs from the URL (product id, biz slug,
    ttXXXXXXX), matching how the paper keys its demand counters.
    """
    for pattern, site in (
        (_AMAZON_GP, "amazon"),
        (_AMAZON_DP, "amazon"),
        (_YELP_BIZ, "yelp"),
        (_IMDB_TITLE, "imdb"),
    ):
        match = pattern.search(url)
        if match:
            return site, match.group(1)
    return None
