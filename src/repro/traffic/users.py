"""User-level tail analysis (the Goel et al. argument in Section 4.2).

The paper distinguishes "satisfying a significant portion of the
*demand*" from "satisfying a significant portion of the *users*",
citing Goel, Broder, Gabrilovich, Pang (WSDM 2010): tail entities
account for a small share of consumption, yet "nearly every user had
some niche interests represented in the tail" — 90% of Netflix users
touched the tail at least once, 35% regularly.

This module runs that analysis on the simulated logs: classify
entities into head/tail by inventory rank, then measure per-cookie tail
exposure — the share of users who ever touch the tail, and the share
who do so regularly.  The punchline the paper draws ("satisfying 90% of
the users 90% of the time requires a better coverage over tail
entities") becomes a measured number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.logs import TrafficLog

__all__ = ["UserTailReport", "user_tail_analysis"]


@dataclass(frozen=True)
class UserTailReport:
    """Per-user tail-exposure summary for one log.

    Attributes:
        tail_fraction: Inventory share classified as tail (by demand
            rank; e.g. 0.8 = everything below the top 20%).
        tail_demand_share: Share of total *visits* going to the tail —
            small, by definition of the long tail.
        users_touching_tail: Fraction of cookies with >= 1 tail visit.
        users_regular_tail: Fraction of cookies whose tail share of
            visits is at least ``regular_threshold``.
        regular_threshold: The "regularly" cut-off used.
        n_users: Distinct cookies observed.
    """

    tail_fraction: float
    tail_demand_share: float
    users_touching_tail: float
    users_regular_tail: float
    regular_threshold: float
    n_users: int


def user_tail_analysis(
    log: TrafficLog,
    tail_fraction: float = 0.8,
    regular_threshold: float = 0.2,
) -> UserTailReport:
    """Measure per-user tail exposure in a traffic log.

    Args:
        log: The simulated log (search or browse).
        tail_fraction: Inventory share counted as tail, ranked by
            observed visit counts (the paper's "percentage of the
            overall inventory" definition).
        regular_threshold: A user is a *regular* tail consumer when at
            least this share of their visits hit tail entities.

    Returns:
        The report.  Raises on an empty log.
    """
    if not 0.0 < tail_fraction < 1.0:
        raise ValueError("tail_fraction must be in (0, 1)")
    if not 0.0 < regular_threshold <= 1.0:
        raise ValueError("regular_threshold must be in (0, 1]")
    if log.n_events == 0:
        raise ValueError("log has no events")

    visits = np.bincount(log.entity, minlength=log.n_entities)
    ranked = np.argsort(visits)[::-1]  # head first
    n_head = max(1, int(round((1.0 - tail_fraction) * log.n_entities)))
    is_tail = np.ones(log.n_entities, dtype=bool)
    is_tail[ranked[:n_head]] = False

    event_is_tail = is_tail[log.entity]
    tail_demand_share = float(event_is_tail.mean())

    cookies, inverse = np.unique(log.cookie, return_inverse=True)
    total_per_user = np.bincount(inverse, minlength=len(cookies))
    tail_per_user = np.bincount(
        inverse, weights=event_is_tail.astype(np.float64), minlength=len(cookies)
    )
    touching = tail_per_user > 0
    regular = (tail_per_user / total_per_user) >= regular_threshold
    return UserTailReport(
        tail_fraction=tail_fraction,
        tail_demand_share=tail_demand_share,
        users_touching_tail=float(touching.mean()),
        users_regular_tail=float(regular.mean()),
        regular_threshold=regular_threshold,
        n_users=len(cookies),
    )
