"""Researching vs. transactional demand (Section 4.3.2's explanation).

The paper's value-add curves "may appear counter-intuitive: one might
assume that demand of a product is proportional to the number of users
who buy it, which, in turn, is proportional to the number of people who
write reviews".  Its first proposed resolution: what the logs measure
is *researching* demand (views/searches), and "it could be that a
higher percentage of users who are viewing / searching for a popular
item end up purchasing" — a popularity-increasing conversion rate.

This module implements that mechanism so the explanation can be tested:
apply a conversion model to researching demand to obtain transactional
demand, and compare the VA(n)/VA(0) curves under each.  If reviews
track *transactions*, the transactional curve should hug y = 1 (the
naive proportionality) even while the researching curve declines — the
paper's observed shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConversionModel"]


@dataclass(frozen=True)
class ConversionModel:
    """Popularity-dependent conversion from views to transactions.

    Attributes:
        base_rate: Conversion rate of the least-viewed entity.
        max_rate: Conversion rate approached by the most-viewed entity.
        popularity_exponent: Shape of the interpolation: conversion is
            ``base + (max - base) * (d / d_max)**exponent`` with d the
            researching demand.  Smaller exponents saturate sooner.
    """

    base_rate: float = 0.01
    max_rate: float = 0.10
    popularity_exponent: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.base_rate <= self.max_rate <= 1.0:
            raise ValueError("need 0 < base_rate <= max_rate <= 1")
        if self.popularity_exponent <= 0:
            raise ValueError("popularity_exponent must be positive")

    def rates(self, researching_demand: np.ndarray) -> np.ndarray:
        """Per-entity conversion rates given researching demand."""
        demand = np.asarray(researching_demand, dtype=np.float64)
        if np.any(demand < 0):
            raise ValueError("demand must be non-negative")
        peak = demand.max()
        if peak == 0:
            return np.full(demand.shape, self.base_rate)
        normalized = (demand / peak) ** self.popularity_exponent
        return self.base_rate + (self.max_rate - self.base_rate) * normalized

    def expected_transactions(self, researching_demand: np.ndarray) -> np.ndarray:
        """Expected transactional demand (views × conversion)."""
        demand = np.asarray(researching_demand, dtype=np.float64)
        return demand * self.rates(demand)

    def sample_transactions(
        self,
        researching_demand: np.ndarray,
        rng: np.random.Generator | int = 0,
    ) -> np.ndarray:
        """Binomial draws of transactions from integer view counts."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        demand = np.asarray(researching_demand)
        if np.any(demand < 0):
            raise ValueError("demand must be non-negative")
        views = np.floor(demand).astype(np.int64)
        return rng.binomial(views, self.rates(demand)).astype(np.float64)
