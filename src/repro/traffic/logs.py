"""Cookie-level traffic logs and unique-cookie demand aggregation.

The paper "use[s] unique (anonymized) cookies as a proxy for unique
users, and define[s] the demand for a URL (and hence the entity it
mentions) as the number of visits from unique cookies", counting unique
cookies *per month* in the search data and *per year* in the browse
data (Section 4.1, footnote 2).

:class:`TrafficLogGenerator` simulates a year of events: each event is
(cookie, entity URL, month), with entities drawn from the site's demand
weights and cookies from a heavy-tailed activity distribution (a few
power users, many occasional ones).  :func:`unique_cookie_demand`
aggregates a log back into per-entity demand, either directly from the
arrays or by parsing the URL strings — the latter exercising the same
pattern-matching path the paper ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.traffic.demandmodel import SiteDemandProfile
from repro.traffic.urls import build_entity_url, parse_entity_url

__all__ = ["TrafficLog", "TrafficLogGenerator", "unique_cookie_demand"]


@dataclass
class TrafficLog:
    """One year of visits to entity pages of one site.

    Attributes:
        site: Site key (``amazon``, ``yelp``, ``imdb``).
        source: ``search`` or ``browse``.
        n_entities: Inventory size (entity indices are < this).
        entity: ``int64[n_events]`` entity index per event.
        cookie: ``int64[n_events]`` anonymized cookie id per event.
        month: ``int64[n_events]`` month (0..11) per event.
    """

    site: str
    source: str
    n_entities: int
    entity: np.ndarray
    cookie: np.ndarray
    month: np.ndarray

    @property
    def n_events(self) -> int:
        """Total number of visit events."""
        return len(self.entity)

    def iter_urls(self) -> Iterator[tuple[str, int, int]]:
        """Yield ``(url, cookie, month)`` with materialized URL strings.

        This is the log as the paper saw it — raw URLs — and feeds the
        parse-based aggregation path.
        """
        for entity, cookie, month in zip(
            self.entity.tolist(), self.cookie.tolist(), self.month.tolist()
        ):
            url = build_entity_url(self.site, entity, style=cookie % 2)
            yield url, cookie, month


class TrafficLogGenerator:
    """Simulates search and browse logs for one site profile.

    On construction, samples the site's entity population (review
    counts + demand weights) once; both logs then draw events from that
    shared population, exactly as one year of real traffic hits one
    fixed inventory.

    Args:
        profile: The site's demand model.
        n_entities: Inventory size.
        n_cookies: Size of the user (cookie) population.
        cookie_activity_exponent: Power-law exponent of per-cookie
            activity (a small core of heavy users).
        seed: RNG seed (population and events).
    """

    def __init__(
        self,
        profile: SiteDemandProfile,
        n_entities: int,
        n_cookies: int | None = None,
        cookie_activity_exponent: float = 0.7,
        seed: int = 0,
    ) -> None:
        if n_entities < 1:
            raise ValueError("n_entities must be positive")
        self.profile = profile
        self.n_entities = n_entities
        self.n_cookies = n_cookies if n_cookies is not None else max(n_entities, 100)
        if self.n_cookies < 1:
            raise ValueError("n_cookies must be positive")
        self.cookie_activity_exponent = cookie_activity_exponent
        self._rng = np.random.default_rng(seed)
        self.population = profile.sample_population(n_entities, self._rng)
        cookie_weights = (
            np.arange(1, self.n_cookies + 1, dtype=np.float64)
            ** -cookie_activity_exponent
        )
        self._cookie_cdf = np.cumsum(cookie_weights)
        self._cookie_cdf /= self._cookie_cdf[-1]

    def _generate(self, source: str, weights: np.ndarray, n_events: int) -> TrafficLog:
        if n_events < 1:
            raise ValueError("n_events must be positive")
        rng = self._rng
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        entity = np.searchsorted(cdf, rng.random(n_events), side="right")
        cookie = np.searchsorted(
            self._cookie_cdf, rng.random(n_events), side="right"
        )
        month = rng.integers(12, size=n_events)
        return TrafficLog(
            site=self.profile.name,
            source=source,
            n_entities=self.n_entities,
            entity=entity.astype(np.int64),
            cookie=cookie.astype(np.int64),
            month=month.astype(np.int64),
        )

    def search_log(self, n_events: int) -> TrafficLog:
        """A year of search-click events."""
        return self._generate("search", self.population.search_weights, n_events)

    def browse_log(self, n_events: int) -> TrafficLog:
        """A year of toolbar browse events (more head-biased)."""
        return self._generate("browse", self.population.browse_weights, n_events)


def unique_cookie_demand(
    log: TrafficLog,
    parse_urls: bool = False,
    key_to_index: dict[str, int] | None = None,
) -> np.ndarray:
    """Per-entity demand as the paper defines it.

    Search logs count unique cookies per month, summed over the year;
    browse logs count unique cookies over the whole year (footnote 2 of
    the paper).

    Args:
        log: The traffic log.
        parse_urls: Re-derive entity indices by materializing URL
            strings and pattern-matching them (the paper's actual code
            path) instead of using the log's arrays directly.  Slower;
            used by integration tests and one benchmark arm.
        key_to_index: Required with ``parse_urls``: maps URL entity keys
            to entity indices.

    Returns:
        ``float64[n_entities]`` demand vector.
    """
    if parse_urls:
        if key_to_index is None:
            raise ValueError("key_to_index is required when parse_urls=True")
        entities = np.empty(log.n_events, dtype=np.int64)
        cookies = np.empty(log.n_events, dtype=np.int64)
        months = np.empty(log.n_events, dtype=np.int64)
        n = 0
        for url, cookie, month in log.iter_urls():
            parsed = parse_entity_url(url)
            if parsed is None or parsed[0] != log.site:
                continue
            index = key_to_index.get(parsed[1])
            if index is None:
                continue
            entities[n], cookies[n], months[n] = index, cookie, month
            n += 1
        entities, cookies, months = entities[:n], cookies[:n], months[:n]
    else:
        entities, cookies, months = log.entity, log.cookie, log.month

    demand = np.zeros(log.n_entities, dtype=np.float64)
    if len(entities) == 0:
        return demand
    cookie_space = np.int64(cookies.max()) + 1
    if log.source == "search":
        # Unique (entity, month, cookie) triples: one count per cookie
        # per month, summed over the year.
        pair = (entities * 12 + months) * cookie_space + cookies
        entity_of_pair = np.unique(pair) // cookie_space // 12
    else:
        # Unique (entity, cookie) pairs over the whole year.
        pair = entities * cookie_space + cookies
        entity_of_pair = np.unique(pair) // cookie_space
    np.add.at(demand, entity_of_pair, 1.0)
    return demand
