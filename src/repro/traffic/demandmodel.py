"""Joint model of review availability and user demand per site.

Sections 4.2–4.3 of the paper are statements about the *joint
distribution* of two per-entity quantities: the number of existing
reviews n (availability of content) and the demand k (unique visitors).
The paper's findings, which this model encodes directly:

- Demand is heavy-tailed, with concentration ordered IMDb > Amazon >
  Yelp ("the demand curve for Yelp is the flattest while that for IMDb
  is the sharpest").
- Demand increases with review count (Figure 7) but *sublinearly* on
  Yelp and Amazon: ``E[k | n] ∝ (1+n)**elasticity`` with elasticity
  < 1, which is precisely "the decay in content availability is faster
  than the decay in demand" and makes VA(n)/VA(0) decrease (Figure 8).
- On IMDb the elasticity is > 1 below a knee and < 1 above it: tail
  titles lose audience faster than they lose reviews ("a more drastic
  decay in user interest for tail entities"), producing the
  mid-popularity value-add peak.

Generatively, each entity draws a review count from a Pareto-tailed
law (plus extra mass at zero), then a demand weight
``(1+n)**elasticity`` with lognormal noise, mixed with a uniform
demand floor (base interest in every entity).  Browse traffic sharpens
the search weights (the paper finds browse more head-concentrated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EntityPopulation",
    "SITE_PROFILES",
    "SiteDemandProfile",
    "get_site_profile",
]


@dataclass(frozen=True)
class EntityPopulation:
    """Sampled per-entity state for one site.

    Attributes:
        reviews: ``int64[M]`` existing review counts.
        search_weights: ``float64[M]`` search-demand weights (sum 1).
        browse_weights: ``float64[M]`` browse-demand weights (sum 1).
    """

    reviews: np.ndarray
    search_weights: np.ndarray
    browse_weights: np.ndarray

    @property
    def n_entities(self) -> int:
        """Inventory size."""
        return len(self.reviews)


@dataclass(frozen=True)
class SiteDemandProfile:
    """Joint (reviews, demand) distribution for one site.

    Attributes:
        name: Site key (``amazon``, ``yelp``, ``imdb``).
        review_tail_exponent: Pareto tail index a of review counts,
            ``P(n >= x) ~ x**-a``; smaller ⇒ heavier tail.
        review_scale: Scale of the review distribution (roughly the
            transition from "a few" to "many" reviews).
        zero_review_fraction: Extra point mass forced to zero reviews
            (brand-new / never-reviewed inventory).
        max_reviews: Cap on review counts (UI/sample truncation; the
            paper's final bin is "1023 or more").
        elasticity_tail: d log E[k] / d log (1+n) below the knee.
        elasticity_head: Same above the knee.
        elasticity_knee: Review count at which elasticity switches.
        demand_noise: Lognormal sigma of per-entity demand around the
            elasticity curve.
        demand_floor: Fraction of total demand spread uniformly over
            the inventory — base interest that keeps tail demand alive
            while tail content runs out.
        browse_sharpen: Exponent applied to search weights to obtain
            browse weights (> 1 ⇒ browse more head-biased).
    """

    name: str
    review_tail_exponent: float
    review_scale: float
    zero_review_fraction: float
    max_reviews: int
    elasticity_tail: float
    elasticity_head: float
    elasticity_knee: float
    demand_noise: float
    demand_floor: float
    browse_sharpen: float

    def __post_init__(self) -> None:
        if self.review_tail_exponent <= 0:
            raise ValueError("review_tail_exponent must be positive")
        if self.review_scale <= 0:
            raise ValueError("review_scale must be positive")
        if not 0.0 <= self.zero_review_fraction < 1.0:
            raise ValueError("zero_review_fraction must be in [0, 1)")
        if self.max_reviews < 1:
            raise ValueError("max_reviews must be >= 1")
        if not 0.0 <= self.demand_floor < 1.0:
            raise ValueError("demand_floor must be in [0, 1)")

    # -- sampling ---------------------------------------------------------------

    def sample_reviews(
        self, n_entities: int, rng: np.random.Generator | int
    ) -> np.ndarray:
        """Sample per-entity review counts.

        A shifted Pareto: ``n = floor(scale * (U**(-1/a) - 1))``, so
        zero is the modal value and the tail follows ``x**-a``; an extra
        ``zero_review_fraction`` of entities is forced to zero.
        """
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        if n_entities < 1:
            raise ValueError("n_entities must be positive")
        uniforms = rng.random(n_entities)
        counts = np.floor(
            self.review_scale
            * (uniforms ** (-1.0 / self.review_tail_exponent) - 1.0)
        ).astype(np.int64)
        counts = np.minimum(counts, self.max_reviews)
        forced_zero = rng.random(n_entities) < self.zero_review_fraction
        counts[forced_zero] = 0
        return counts

    def expected_demand(self, reviews: np.ndarray) -> np.ndarray:
        """The elasticity curve E[k | n] (up to normalization).

        Piecewise power law in (1+n), continuous at the knee.
        """
        n = np.asarray(reviews, dtype=np.float64)
        if np.any(n < 0):
            raise ValueError("review counts must be non-negative")
        knee = 1.0 + self.elasticity_knee
        base = (1.0 + n) ** self.elasticity_tail
        above = knee**self.elasticity_tail * ((1.0 + n) / knee) ** (
            self.elasticity_head
        )
        return np.where(1.0 + n <= knee, base, above)

    def demand_weights(
        self, reviews: np.ndarray, rng: np.random.Generator | int
    ) -> np.ndarray:
        """Per-entity search-demand weights given review counts (sum 1)."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        n_entities = len(reviews)
        noise = np.exp(
            self.demand_noise * rng.standard_normal(n_entities)
            - self.demand_noise**2 / 2.0
        )
        weights = self.expected_demand(reviews) * noise
        weights = weights / weights.sum()
        if self.demand_floor > 0:
            weights = (1.0 - self.demand_floor) * weights + (
                self.demand_floor / n_entities
            )
        return weights

    def sample_population(
        self, n_entities: int, rng: np.random.Generator | int
    ) -> EntityPopulation:
        """Sample the full per-entity state (reviews + demand weights)."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        reviews = self.sample_reviews(n_entities, rng)
        search = self.demand_weights(reviews, rng)
        browse = search**self.browse_sharpen
        browse = browse / browse.sum()
        return EntityPopulation(
            reviews=reviews, search_weights=search, browse_weights=browse
        )


SITE_PROFILES: dict[str, SiteDemandProfile] = {
    "imdb": SiteDemandProfile(
        name="imdb",
        review_tail_exponent=0.75,
        review_scale=2.0,
        zero_review_fraction=0.30,
        max_reviews=20000,
        elasticity_tail=1.35,
        elasticity_head=0.35,
        elasticity_knee=40.0,
        demand_noise=0.8,
        demand_floor=0.01,
        browse_sharpen=1.15,
    ),
    "amazon": SiteDemandProfile(
        name="amazon",
        review_tail_exponent=0.85,
        review_scale=3.0,
        zero_review_fraction=0.25,
        max_reviews=8000,
        elasticity_tail=0.80,
        elasticity_head=0.80,
        elasticity_knee=50.0,
        demand_noise=0.9,
        demand_floor=0.05,
        browse_sharpen=1.12,
    ),
    "yelp": SiteDemandProfile(
        name="yelp",
        review_tail_exponent=1.05,
        review_scale=4.0,
        zero_review_fraction=0.20,
        max_reviews=4000,
        elasticity_tail=0.60,
        elasticity_head=0.60,
        elasticity_knee=50.0,
        demand_noise=0.7,
        demand_floor=0.10,
        browse_sharpen=1.10,
    ),
}


def get_site_profile(name: str) -> SiteDemandProfile:
    """Fetch a site profile, with a helpful error for typos."""
    try:
        return SITE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SITE_PROFILES))
        raise KeyError(f"unknown site {name!r}; known sites: {known}") from None
