"""Demand distribution analyses (Section 4.2, Figure 6).

The paper measures per-entity *demand* — the number of unique cookies
visiting an entity's page — from two traffic sources (search clicks and
toolbar browsing), for three sites (Amazon, Yelp, IMDb).  Figure 6
summarizes each (site, source) dataset twice:

- a **CDF**: cumulative share of demand vs. normalized inventory rank
  (what fraction of total demand do the top x% of entities account
  for?), and
- a **rank PDF** on log-log axes: each rank's share of total demand.

Both are pure order statistics of the demand vector, implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DemandCurves",
    "demand_cdf",
    "demand_rank_pdf",
    "demand_share_of_top_fraction",
]


def _as_demand(demand: np.ndarray) -> np.ndarray:
    arr = np.asarray(demand, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("demand must be a 1-D array")
    if len(arr) == 0:
        raise ValueError("demand must be non-empty")
    if np.any(arr < 0):
        raise ValueError("demand values must be non-negative")
    return arr


def demand_cdf(demand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative demand vs. normalized inventory (Figure 6(a)/(c)).

    Entities are sorted by decreasing demand; position i (1-based) maps
    to x = i / M and y = (sum of top-i demand) / (total demand).

    Returns:
        ``(normalized_inventory, cumulative_share)`` arrays of length M.
    """
    arr = _as_demand(demand)
    ordered = np.sort(arr)[::-1]
    total = ordered.sum()
    if total == 0:
        cumulative = np.zeros(len(ordered))
    else:
        cumulative = np.cumsum(ordered) / total
    inventory = np.arange(1, len(ordered) + 1) / len(ordered)
    return inventory, cumulative


def demand_rank_pdf(demand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-rank demand share (Figure 6(b)/(d), log-log).

    Returns:
        ``(ranks, shares)``; ranks start at 1, shares sum to 1 (when
        total demand is positive).  Zero-demand tail entries keep share
        0 — the paper's log-scale plots simply do not render them.
    """
    arr = _as_demand(demand)
    ordered = np.sort(arr)[::-1]
    total = ordered.sum()
    shares = ordered / total if total > 0 else np.zeros(len(ordered))
    ranks = np.arange(1, len(ordered) + 1, dtype=np.float64)
    return ranks, shares


def demand_share_of_top_fraction(demand: np.ndarray, fraction: float) -> float:
    """Share of total demand captured by the top ``fraction`` of entities.

    The paper's headline numbers are instances of this: "top 20% of
    movie titles account for more than 90% of the overall demand on
    IMDb, top 20% of business entities account for only 60% ... on
    Yelp".
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    arr = _as_demand(demand)
    if fraction == 0.0:
        return 0.0
    k = max(1, int(round(fraction * len(arr))))
    ordered = np.sort(arr)[::-1]
    total = ordered.sum()
    if total == 0:
        return 0.0
    return float(ordered[:k].sum() / total)


@dataclass(frozen=True)
class DemandCurves:
    """Both Figure 6 views of one (site, traffic source) demand vector."""

    label: str
    inventory: np.ndarray
    cumulative_share: np.ndarray
    ranks: np.ndarray
    rank_share: np.ndarray

    @classmethod
    def from_demand(cls, label: str, demand: np.ndarray) -> "DemandCurves":
        """Compute both curves for a demand vector."""
        inventory, cumulative = demand_cdf(demand)
        ranks, shares = demand_rank_pdf(demand)
        return cls(
            label=label,
            inventory=inventory,
            cumulative_share=cumulative,
            ranks=ranks,
            rank_share=shares,
        )

    def share_of_top(self, fraction: float) -> float:
        """Share of demand captured by the top ``fraction`` of inventory."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if fraction == 0.0:
            return 0.0
        k = max(1, int(round(fraction * len(self.inventory)))) - 1
        return float(self.cumulative_share[k])
