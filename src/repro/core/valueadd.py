"""Value of tail extraction (Section 4.3, Figures 7–8).

The paper quantifies the value of extracting one more review for an
entity that already has n reviews as ``VA(n) = k · I∆(n)`` where k is
the entity's demand and ``I∆(n) = 1/(1+n)`` bounds the influence of the
(n+1)-th review on an aggregate presentation.  Averaging over entities
with the same (log-binned) review count and normalizing by the
zero-review group gives Figure 8's ``VA(n)/VA(0)`` curves; a decreasing
curve means content availability decays *faster* than demand toward the
tail — the paper's second headline finding.

Figure 7 is the precursor view: average (z-score normalized) demand as
a function of review count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "ValueAddCurve",
    "demand_vs_reviews",
    "inverse_information_gain",
    "log2_review_bins",
    "step_information_gain",
    "value_add_curve",
]


def inverse_information_gain(n_reviews: np.ndarray) -> np.ndarray:
    """The paper's I∆(n) = 1/(1+n).

    Motivated by aggregation: in an average over n+1 independent
    sources, the newest one moves the summary by at most 1/(1+n).
    """
    n = np.asarray(n_reviews, dtype=np.float64)
    if np.any(n < 0):
        raise ValueError("review counts must be non-negative")
    return 1.0 / (1.0 + n)


def step_information_gain(
    n_reviews: np.ndarray, cutoff: int = 10
) -> np.ndarray:
    """Step-function alternative: full value below ``cutoff``, zero after.

    Section 4.3.1 argues this models "a user reads no more than c
    reviews" and decays *faster* than 1/(1+n) for head items, so it only
    strengthens the tail-value conclusion.  Used by the I∆ ablation
    benchmark.
    """
    if cutoff < 1:
        raise ValueError("cutoff must be >= 1")
    n = np.asarray(n_reviews, dtype=np.float64)
    if np.any(n < 0):
        raise ValueError("review counts must be non-negative")
    return (n < cutoff).astype(np.float64)


def log2_review_bins(
    n_reviews: np.ndarray, max_bin: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's log-grouping of review counts (footnote 4).

    "Entities with 0 reviews form the first group, entities with 1-2
    reviews form the second, and so on.  Entities with 1023 or more
    reviews form the final group."  That is bin = floor(log2(n+1)),
    clamped to ``max_bin``.

    Returns:
        ``(bin_index_per_entity, representative_count_per_bin)`` where
        the representative is the geometric-ish center used as the x
        coordinate (0, 1.5, 4.5, ..., and 1023 for the last bin).
    """
    n = np.asarray(n_reviews, dtype=np.int64)
    if np.any(n < 0):
        raise ValueError("review counts must be non-negative")
    bins = np.floor(np.log2(n + 1)).astype(np.int64)
    bins = np.minimum(bins, max_bin)
    centers = np.empty(max_bin + 1, dtype=np.float64)
    centers[0] = 0.0
    for b in range(1, max_bin + 1):
        lo, hi = 2**b - 1, 2 ** (b + 1) - 2
        centers[b] = (lo + hi) / 2.0
    centers[max_bin] = 2**max_bin - 1  # "1023 or more"
    return bins, centers


def demand_vs_reviews(
    demand: np.ndarray,
    n_reviews: np.ndarray,
    normalize: bool = True,
    max_bin: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Average (normalized) demand per review-count group (Figure 7).

    Args:
        demand: Per-entity demand (unique visitors).
        n_reviews: Per-entity existing review counts.
        normalize: Z-score the demand within the dataset first, as the
            paper does to overlay browse and search on one plot.
        max_bin: Last (open-ended) log2 group.

    Returns:
        ``(representative_counts, mean_demand)`` per non-empty bin.
    """
    demand = np.asarray(demand, dtype=np.float64)
    n_reviews = np.asarray(n_reviews)
    if demand.shape != n_reviews.shape:
        raise ValueError("demand and n_reviews must be aligned")
    if normalize:
        std = demand.std()
        if std == 0:
            raise ValueError("cannot z-score a constant demand vector")
        demand = (demand - demand.mean()) / std
    bins, centers = log2_review_bins(n_reviews, max_bin=max_bin)
    counts = np.bincount(bins, minlength=max_bin + 1)
    sums = np.bincount(bins, weights=demand, minlength=max_bin + 1)
    occupied = counts > 0
    return centers[occupied], sums[occupied] / counts[occupied]


@dataclass(frozen=True)
class ValueAddCurve:
    """Figure 8 series: relative value-add per review-count group."""

    label: str
    review_counts: np.ndarray
    relative_value_add: np.ndarray
    group_sizes: np.ndarray

    def is_decreasing_overall(self) -> bool:
        """Whether the tail (first group) beats the head (last group).

        This is the paper's Yelp/Amazon finding: one more review is
        worth more for a zero-review entity than for a thousand-review
        one.
        """
        return bool(
            self.relative_value_add[0] > self.relative_value_add[-1]
        )


def value_add_curve(
    demand: np.ndarray,
    n_reviews: np.ndarray,
    information_gain: Callable[[np.ndarray], np.ndarray] | None = None,
    label: str = "",
    max_bin: int = 10,
) -> ValueAddCurve:
    """Compute VA(n)/VA(0) per log2 review group (Figure 8).

    Args:
        demand: Per-entity demand (raw counts — the normalization is by
            the zero-review group, not a z-score).
        n_reviews: Per-entity review counts.
        information_gain: I∆ function; defaults to the paper's 1/(1+n).
        label: Series label for reporting.
        max_bin: Last (open-ended) log2 group.

    Returns:
        The relative value-add curve.  Raises if no entity has zero
        reviews (the normalizing group must exist).
    """
    demand = np.asarray(demand, dtype=np.float64)
    n_arr = np.asarray(n_reviews)
    if demand.shape != n_arr.shape:
        raise ValueError("demand and n_reviews must be aligned")
    if information_gain is None:
        information_gain = inverse_information_gain
    value = demand * information_gain(n_arr)
    bins, centers = log2_review_bins(n_arr, max_bin=max_bin)
    counts = np.bincount(bins, minlength=max_bin + 1)
    sums = np.bincount(bins, weights=value, minlength=max_bin + 1)
    if counts[0] == 0:
        raise ValueError("no zero-review entities: VA(0) is undefined")
    va0 = sums[0] / counts[0]
    if va0 == 0:
        raise ValueError("zero-review entities have zero demand: VA(0) = 0")
    occupied = counts > 0
    averages = sums[occupied] / counts[occupied]
    return ValueAddCurve(
        label=label,
        review_counts=centers[occupied],
        relative_value_add=averages / va0,
        group_sizes=counts[occupied],
    )
