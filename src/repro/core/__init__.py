"""Core analyses: the paper's primary contribution.

The paper's contribution is a set of *measurements* over the entity–site
incidence structure of the Web:

- :mod:`repro.core.incidence` — the bipartite entity–site incidence
  matrix both the synthetic generator and the extraction pipeline
  produce, and every analysis consumes.
- :mod:`repro.core.coverage` — k-coverage curves (Figures 1–4).
- :mod:`repro.core.setcover` — greedy set cover ordering (Figure 5).
- :mod:`repro.core.graph` — connected components, diameter, robustness
  (Table 2, Figure 9).
- :mod:`repro.core.demand` — demand CDF/PDF analyses (Figure 6).
- :mod:`repro.core.valueadd` — demand-vs-reviews and value-add curves
  (Figures 7–8).
"""

from repro.core.coverage import (
    CoverageCurves,
    aggregate_coverage_curve,
    coverage_at,
    k_coverage_curves,
    sites_needed_for_coverage,
)
from repro.core.concentration import (
    PowerLawFit,
    fit_power_law,
    gini_coefficient,
    lorenz_curve,
    top_share,
)
from repro.core.curves import (
    area_between,
    crossovers,
    max_gap,
    step_interpolate,
)
from repro.core.demand import (
    DemandCurves,
    demand_cdf,
    demand_rank_pdf,
    demand_share_of_top_fraction,
)
from repro.core.errors import (
    PrecisionEstimate,
    bootstrap_coverage_interval,
    coverage_bias_under_noise,
    estimate_precision_from_sample,
    inject_false_matches,
)
from repro.core.graph import (
    ComponentSummary,
    EntitySiteGraph,
    GraphMetrics,
    robustness_curve,
)
from repro.core.incidence import BipartiteIncidence
from repro.core.redundancy import (
    RedundancyReport,
    head_site_overlap_matrix,
    marginal_novelty_profile,
    redundancy_report,
    replication_histogram,
)
from repro.core.setcover import greedy_set_cover, greedy_coverage_curve
from repro.core.valueadd import (
    ValueAddCurve,
    demand_vs_reviews,
    inverse_information_gain,
    log2_review_bins,
    step_information_gain,
    value_add_curve,
)

__all__ = [
    "BipartiteIncidence",
    "ComponentSummary",
    "CoverageCurves",
    "DemandCurves",
    "EntitySiteGraph",
    "GraphMetrics",
    "PowerLawFit",
    "PrecisionEstimate",
    "RedundancyReport",
    "ValueAddCurve",
    "fit_power_law",
    "gini_coefficient",
    "lorenz_curve",
    "top_share",
    "bootstrap_coverage_interval",
    "coverage_bias_under_noise",
    "estimate_precision_from_sample",
    "head_site_overlap_matrix",
    "inject_false_matches",
    "marginal_novelty_profile",
    "redundancy_report",
    "replication_histogram",
    "aggregate_coverage_curve",
    "area_between",
    "crossovers",
    "max_gap",
    "step_interpolate",
    "coverage_at",
    "demand_cdf",
    "demand_rank_pdf",
    "demand_share_of_top_fraction",
    "demand_vs_reviews",
    "greedy_coverage_curve",
    "greedy_set_cover",
    "inverse_information_gain",
    "k_coverage_curves",
    "log2_review_bins",
    "robustness_curve",
    "sites_needed_for_coverage",
    "step_information_gain",
    "value_add_curve",
]
