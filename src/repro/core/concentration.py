"""Concentration statistics for heavy-tailed distributions.

Figure 6 of the paper reads concentration off CDF plots ("top 20% of
movie titles account for more than 90% of the overall demand").  This
module provides the standard scalar summaries of the same phenomenon —
Lorenz curves, Gini coefficients — plus a discrete power-law (Zipf)
exponent estimator, so the demand and site-size distributions the
generator produces can be *fit* and compared against their nominal
parameters rather than eyeballed.

The exponent estimator is the discrete maximum-likelihood estimator
(Clauset–Shalizi–Newman style with a fixed ``x_min``), solved
numerically over the Hurwitz zeta likelihood via scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "gini_coefficient",
    "lorenz_curve",
    "top_share",
]


def lorenz_curve(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of a non-negative distribution.

    Returns:
        ``(population_share, value_share)``, both starting at 0 and
        ending at 1, with the population sorted *ascending* (the
        classical economics convention; Figure 6's CDF is the same
        curve with a descending sort and flipped axes).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or len(arr) == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    ordered = np.sort(arr)
    total = ordered.sum()
    population = np.arange(0, len(ordered) + 1) / len(ordered)
    if total == 0:
        return population, population.copy()
    cumulative = np.concatenate([[0.0], np.cumsum(ordered) / total])
    return population, cumulative


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1); 0 = uniform, →1 = fully concentrated."""
    population, share = lorenz_curve(values)
    # Area under the Lorenz curve by trapezoid; Gini = 1 - 2 * area.
    area = float(np.trapezoid(share, population))
    return max(0.0, 1.0 - 2.0 * area)


def top_share(values: np.ndarray, fraction: float) -> float:
    """Share of the total held by the top ``fraction`` of holders.

    The scalar behind "top 20% account for 90% of the demand".
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or len(arr) == 0:
        raise ValueError("values must be a non-empty 1-D array")
    total = arr.sum()
    if total == 0 or fraction == 0.0:
        return 0.0
    k = max(1, int(round(fraction * len(arr))))
    ordered = np.sort(arr)[::-1]
    return float(ordered[:k].sum() / total)


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted discrete power law P(x) ∝ x^-alpha for x >= x_min.

    Attributes:
        alpha: Fitted exponent.
        x_min: Lower cut-off used in the fit.
        n_tail: Observations at or above ``x_min``.
        log_likelihood: Maximized log-likelihood.
    """

    alpha: float
    x_min: int
    n_tail: int
    log_likelihood: float


def fit_power_law(
    values: np.ndarray,
    x_min: int = 1,
    alpha_bounds: tuple[float, float] = (1.01, 6.0),
) -> PowerLawFit:
    """Discrete MLE for the power-law exponent of a count distribution.

    The likelihood of observing ``x`` under a discrete power law with
    exponent α and cut-off ``x_min`` is ``x^-α / ζ(α, x_min)`` (Hurwitz
    zeta normalization); the MLE maximizes the summed log-likelihood
    over the tail sample.

    Args:
        values: Positive integer observations (e.g. site sizes,
            per-entity demand counts).
        x_min: Tail cut-off; observations below it are discarded.
        alpha_bounds: Search bracket for the exponent.

    Returns:
        The fit.  Raises when fewer than 10 tail observations remain
        (the MLE is meaningless on less).
    """
    # scipy.optimize transitively loads scipy.sparse/linalg — tens of
    # MB of RSS.  Import at call time so processes that never *fit*
    # (the out-of-core serve tiers) don't pay for it at startup.
    from scipy.optimize import minimize_scalar
    from scipy.special import zeta

    arr = np.asarray(values)
    if x_min < 1:
        raise ValueError("x_min must be >= 1")
    tail = arr[arr >= x_min].astype(np.float64)
    if len(tail) < 10:
        raise ValueError(
            f"need at least 10 observations >= x_min; got {len(tail)}"
        )
    log_sum = float(np.log(tail).sum())
    n = len(tail)

    def negative_log_likelihood(alpha: float) -> float:
        return alpha * log_sum + n * float(np.log(zeta(alpha, x_min)))

    result = minimize_scalar(
        negative_log_likelihood, bounds=alpha_bounds, method="bounded"
    )
    return PowerLawFit(
        alpha=float(result.x),
        x_min=x_min,
        n_tail=n,
        log_likelihood=-float(result.fun),
    )
