"""Connectivity of the entity–site graph (Section 5, Table 2, Figure 9).

The paper models iterative, bootstrapping-based source discovery as
reachability in the bipartite graph whose nodes are entities and
websites, with an edge when the site mentions the entity.  The
quantities it reports are:

- the number of connected components,
- the fraction of entities in the largest component (is a random seed
  set all-but-surely inside it?),
- the diameter d (a "perfect" set-expansion algorithm needs at most
  d/2 iterations), and
- robustness: the same after deleting the top-k sites (is the graph
  held together only by a few head aggregators?).

Components come from a union-find with path compression and union by
size.  The diameter uses the iFUB algorithm seeded by a double-sweep:
exact, and fast on small-diameter graphs because the upper and lower
bounds meet after a handful of BFS traversals.  BFS runs on a CSR
adjacency with vectorized frontier expansion, so graphs with millions
of edges are practical in pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = [
    "ComponentSummary",
    "EntitySiteGraph",
    "GraphMetrics",
    "UnionFind",
    "robustness_curve",
]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def find(self, x: int) -> int:
        """Root of x's component (with path compression)."""
        root = x
        parent = self.parent
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of a and b; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return True

    def roots(self) -> np.ndarray:
        """Component root per element (fully compressed)."""
        parent = self.parent
        # Iterated pointer jumping: converges in O(log n) rounds.
        while True:
            grandparent = parent[parent]
            if np.array_equal(grandparent, parent):
                return parent
            parent[:] = grandparent


@dataclass(frozen=True)
class ComponentSummary:
    """Connected-component structure of one entity–site graph.

    Only *present* nodes participate: entities with at least one
    mention and sites with at least one entity.  Entities missing from
    the corpus entirely are not graph nodes (the paper's graphs are
    built from observed mentions).
    """

    n_components: int
    n_present_entities: int
    n_present_sites: int
    largest_component_entities: int
    largest_component_sites: int
    component_entity_counts: np.ndarray

    @property
    def fraction_entities_in_largest(self) -> float:
        """Fraction of present entities inside the largest component."""
        if self.n_present_entities == 0:
            return 0.0
        return self.largest_component_entities / self.n_present_entities


class EntitySiteGraph:
    """Bipartite entity–site graph over an incidence structure.

    Node ids: entities keep their indices ``[0, n_entities)``; site s
    becomes node ``n_entities + s``.  Only present nodes are reachable.
    """

    def __init__(self, incidence: BipartiteIncidence) -> None:
        self.incidence = incidence
        n_entities = incidence.n_entities
        n = n_entities + incidence.n_sites
        self.n_nodes = n
        sizes = incidence.site_sizes()
        edge_sites = np.repeat(np.arange(incidence.n_sites), sizes) + n_entities
        # The incidence is already CSR by site, so the site half of the
        # adjacency is a straight copy; only the entity half needs a
        # grouping pass.  A stable sort of entity_idx alone (half the
        # edge list) keeps each entity's neighbour sites ascending,
        # matching what a full stable sort of both halves would produce.
        order = np.argsort(incidence.entity_idx, kind="stable")
        self._adj_ptr = np.zeros(n + 1, dtype=np.int64)
        entity_counts = np.bincount(incidence.entity_idx, minlength=n_entities)
        np.cumsum(entity_counts, out=self._adj_ptr[1:n_entities + 1])
        self._adj_ptr[n_entities + 1:] = self._adj_ptr[n_entities] + np.cumsum(
            sizes
        )
        n_edges = len(incidence.entity_idx)
        self._adj = np.empty(2 * n_edges, dtype=np.int64)
        self._adj[:n_edges] = edge_sites[order]
        self._adj[n_edges:] = incidence.entity_idx
        self._sparse = None
        self._labels = None

    def _sparse_adjacency(self):
        """The adjacency as a scipy CSR matrix (built once, shared).

        Data is float64 so the csgraph routines do not re-convert the
        matrix on every call.
        """
        if self._sparse is None:
            from scipy.sparse import csr_matrix

            self._sparse = csr_matrix(
                (
                    np.ones(len(self._adj), dtype=np.float64),
                    self._adj,
                    self._adj_ptr,
                ),
                shape=(self.n_nodes, self.n_nodes),
            )
        return self._sparse

    # -- basic structure -------------------------------------------------------

    def degree(self, node: int) -> int:
        """Number of neighbours of a node."""
        return int(self._adj_ptr[node + 1] - self._adj_ptr[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour node ids."""
        return self._adj[self._adj_ptr[node]:self._adj_ptr[node + 1]]

    def present_nodes(self) -> np.ndarray:
        """Nodes with at least one edge."""
        return np.flatnonzero(np.diff(self._adj_ptr) > 0)

    # -- components -------------------------------------------------------------

    def component_labels(self) -> np.ndarray:
        """Component label per node (computed once, shared).

        The adjacency stores both directions of every edge, so *strong*
        connectivity coincides with undirected connectivity — and the
        strong variant (Tarjan's algorithm) runs directly on the CSR
        matrix, skipping the symmetrization/CSC conversion that
        ``directed=False`` would pay on every call.
        """
        if self._labels is None:
            from scipy.sparse.csgraph import connected_components

            __, self._labels = connected_components(
                self._sparse_adjacency(), directed=True, connection="strong"
            )
        return self._labels

    def components(self) -> ComponentSummary:
        """Summarize the component structure over present nodes.

        Uses :func:`scipy.sparse.csgraph.connected_components` over the
        bipartite adjacency; :class:`UnionFind` provides the same answer
        and cross-checks it in the test suite.
        """
        inc = self.incidence
        present = np.diff(self._adj_ptr) > 0
        entity_present = present[:inc.n_entities]
        site_present = present[inc.n_entities:]
        n_present_entities = int(entity_present.sum())
        n_present_sites = int(site_present.sum())
        if n_present_entities + n_present_sites == 0:
            return ComponentSummary(0, 0, 0, 0, 0, np.empty(0, dtype=np.int64))

        labels = self.component_labels()
        present_idx = np.flatnonzero(present)
        present_labels = labels[present_idx]
        unique_labels, compact = np.unique(present_labels, return_inverse=True)
        is_entity = present_idx < inc.n_entities
        entity_counts = np.bincount(
            compact[is_entity], minlength=len(unique_labels)
        )
        site_counts = np.bincount(
            compact[~is_entity], minlength=len(unique_labels)
        )
        largest = int(np.argmax(entity_counts + site_counts))
        return ComponentSummary(
            n_components=len(unique_labels),
            n_present_entities=n_present_entities,
            n_present_sites=n_present_sites,
            largest_component_entities=int(entity_counts[largest]),
            largest_component_sites=int(site_counts[largest]),
            component_entity_counts=np.sort(entity_counts)[::-1],
        )

    # -- BFS / distances ----------------------------------------------------------

    def bfs_levels(self, source: int) -> np.ndarray:
        """BFS distance from ``source`` to every node (-1 when unreachable).

        Runs as an unweighted shortest-path query over the shared CSR
        adjacency via ``scipy.sparse.csgraph`` — a C-level BFS, which is
        what makes the hundreds of traversals behind the exact-diameter
        computation (Table 2) practical on graphs with millions of
        edges.  The adjacency already stores both edge directions, so
        the query runs in directed mode to skip symmetrization.
        """
        from scipy.sparse.csgraph import dijkstra

        distances = dijkstra(
            self._sparse_adjacency(),
            directed=True,
            unweighted=True,
            indices=int(source),
        )
        levels = np.full(self.n_nodes, -1, dtype=np.int64)
        reachable = np.isfinite(distances)
        levels[reachable] = distances[reachable].astype(np.int64)
        return levels

    def eccentricity(self, node: int) -> int:
        """Longest shortest path from ``node`` within its component."""
        levels = self.bfs_levels(node)
        return int(levels.max())

    def eccentricity_sample(
        self,
        sample_size: int = 64,
        rng: np.random.Generator | int = 0,
    ) -> np.ndarray:
        """Eccentricities of a random sample of largest-component nodes.

        The d/2 iteration bound of Section 5 is a worst case; the
        *typical* number of expansion iterations from a seed node v is
        ``ecc(v)/2``.  Sampling the eccentricity distribution shows how
        tight the worst case is: in these small-world graphs most nodes
        sit within one hop of the radius.

        Returns:
            Sorted eccentricities (ascending); empty when the graph has
            no edges.
        """
        if sample_size < 1:
            raise ValueError("sample_size must be positive")
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        present = self.present_nodes()
        if len(present) == 0:
            return np.empty(0, dtype=np.int64)
        degrees = np.diff(self._adj_ptr)
        hub = int(present[np.argmax(degrees[present])])
        component = np.flatnonzero(self.bfs_levels(hub) >= 0)
        picks = rng.choice(
            component, size=min(sample_size, len(component)), replace=False
        )
        eccentricities = np.array(
            [self.eccentricity(int(node)) for node in picks], dtype=np.int64
        )
        return np.sort(eccentricities)

    def double_sweep(self, start: int) -> tuple[int, int, int]:
        """Double-sweep heuristic: a diameter lower bound and a midpoint.

        BFS from ``start`` finds a farthest node a; BFS from a finds a
        farthest node b.  dist(a, b) lower-bounds the diameter, and a
        node halfway along is a good iFUB root.

        Returns:
            ``(lower_bound, root, a)`` where root is the halfway node.
        """
        levels = self.bfs_levels(start)
        a = int(np.argmax(levels))
        levels_a = self.bfs_levels(a)
        b = int(np.argmax(levels_a))
        lower = int(levels_a[b])
        # Walk back from b towards a along BFS parents to find the middle.
        half = lower // 2
        # Any node at distance `half` from a that is on a shortest path works;
        # approximate with a node at that level closest to b's branch: use a
        # BFS from b and pick a node with d(a,.) == half and minimal d(b,.).
        levels_b = self.bfs_levels(b)
        on_path = np.flatnonzero(
            (levels_a >= 0) & (levels_b >= 0) & (levels_a + levels_b == lower)
        )
        candidates = on_path[levels_a[on_path] == half]
        root = int(candidates[0]) if len(candidates) else a
        return lower, root, a

    def diameter(self, max_bfs: int | None = None) -> int:
        """Exact diameter of the largest connected component.

        Implements the Takes–Kosters *BoundingDiameters* algorithm:
        every BFS from a node v yields its exact eccentricity and, via
        the triangle inequality, tightens per-node eccentricity bounds
        ``max(d(v,u), ecc(v) - d(v,u)) <= ecc(u) <= ecc(v) + d(v,u)``.
        Nodes whose upper bound cannot exceed the current diameter lower
        bound are pruned; the algorithm alternates between the node with
        the largest upper bound (diameter candidates) and the smallest
        lower bound (strong pruners).  On small-world graphs like these
        entity–site graphs, it terminates after a handful of BFS
        traversals — unlike iFUB, it does not degenerate when the
        diameter is close to the radius.

        For a disconnected graph the result is the maximum over the
        diameters of its components — the smallest d such that every
        *connected* pair of nodes is within d hops (the bound relevant
        to set expansion, which can never cross components anyway).
        Components are processed largest-first with a size-based prune:
        a component of n nodes cannot have diameter above n - 1, so
        once the running maximum reaches that bound the remaining
        (smaller) components are skipped.

        Args:
            max_bfs: Optional per-component safety cap; when hit, the
                current lower bound is returned (a valid diameter lower
                bound).
        """
        present = self.present_nodes()
        if len(present) == 0:
            return 0
        labels = self.component_labels()
        component_labels, counts = np.unique(labels[present], return_counts=True)
        order = np.argsort(counts)[::-1]
        best = 0
        for index in order:
            size = int(counts[index])
            if size - 1 <= best:
                break
            members = present[labels[present] == component_labels[index]]
            best = max(best, self._component_diameter(members, max_bfs))
        return best

    def _component_diameter(
        self, component: np.ndarray, max_bfs: int | None
    ) -> int:
        """BoundingDiameters within one connected component."""
        if len(component) <= 1:
            return 0
        degrees = np.diff(self._adj_ptr)
        start = int(component[np.argmax(degrees[component])])

        ecc_lower = np.zeros(self.n_nodes, dtype=np.int64)
        ecc_upper = np.full(self.n_nodes, np.iinfo(np.int64).max, dtype=np.int64)
        active = np.zeros(self.n_nodes, dtype=bool)
        active[component] = True
        # Seed the lower bound with a double sweep: it almost always
        # finds the true diameter immediately, so the main loop spends
        # its budget proving optimality rather than searching.
        diameter_lower = self.double_sweep(start)[0]
        bfs_budget = max_bfs if max_bfs is not None else len(component)
        pick_upper = True

        for _ in range(bfs_budget):
            candidates = np.flatnonzero(active)
            if len(candidates) == 0:
                break
            if pick_upper:
                node = int(candidates[np.argmax(ecc_upper[candidates])])
            else:
                node = int(candidates[np.argmin(ecc_lower[candidates])])
            pick_upper = not pick_upper

            levels = self.bfs_levels(node)
            distances = levels[component]
            ecc = int(distances.max())
            diameter_lower = max(diameter_lower, ecc)
            ecc_lower[component] = np.maximum(
                ecc_lower[component], np.maximum(distances, ecc - distances)
            )
            ecc_upper[component] = np.minimum(
                ecc_upper[component], ecc + distances
            )
            # Nodes whose bounds met have a known eccentricity: fold it
            # into the diameter bound, then prune them along with every
            # node that can no longer raise the bound.
            settled = ecc_lower[component] == ecc_upper[component]
            if settled.any():
                diameter_lower = max(
                    diameter_lower, int(ecc_lower[component][settled].max())
                )
            done = ecc_upper[component] <= diameter_lower
            active[component[done | settled]] = False
            if not active[component].any():
                break
        return diameter_lower


@dataclass(frozen=True)
class GraphMetrics:
    """One row of the paper's Table 2."""

    domain: str
    attribute: str
    avg_sites_per_entity: float
    diameter: int
    n_components: int
    pct_entities_in_largest: float

    @classmethod
    def measure(
        cls,
        incidence: BipartiteIncidence,
        domain: str,
        attribute: str,
        max_bfs: int | None = 256,
    ) -> "GraphMetrics":
        """Measure all Table 2 quantities for one (domain, attribute)."""
        graph = EntitySiteGraph(incidence)
        summary = graph.components()
        return cls(
            domain=domain,
            attribute=attribute,
            avg_sites_per_entity=incidence.average_sites_per_entity(),
            diameter=graph.diameter(max_bfs=max_bfs),
            n_components=summary.n_components,
            pct_entities_in_largest=100.0 * summary.fraction_entities_in_largest,
        )


def robustness_curve(
    incidence: BipartiteIncidence,
    max_removed: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Largest-component entity fraction after removing top-k sites.

    Figure 9 of the paper: for k = 0..max_removed, delete the k sites
    mentioning the most entities and report the fraction of entities in
    the largest remaining component.  The denominator is fixed at the
    number of entities present in the *original* graph, so entities
    stranded by the removal count against the fraction.

    Returns:
        ``(ks, fractions)`` arrays of length ``max_removed + 1``.
    """
    if max_removed < 0:
        raise ValueError("max_removed must be non-negative")
    original_entities = len(incidence.mentioned_entities())
    ranking = incidence.sites_by_size()
    ks = np.arange(max_removed + 1)
    fractions = np.zeros(len(ks))
    for i, k in enumerate(ks):
        remaining = incidence.drop_sites(ranking[:k]) if k else incidence
        summary = EntitySiteGraph(remaining).components()
        if original_entities:
            fractions[i] = summary.largest_component_entities / original_entities
    return ks, fractions
