"""Greedy set cover over sites (Section 3.4.1, Figure 5).

Ranking sites by individual size ignores redundancy: the second-biggest
site may duplicate the biggest almost entirely.  The paper therefore
re-runs the coverage analysis with sites chosen by the classic greedy
set-cover approximation — at every step pick the site covering the most
*still-uncovered* entities — and finds the improvement insignificant.

The implementation is the *lazy* greedy algorithm: marginal gains are
kept in a max-heap and only re-evaluated when a site reaches the top.
Because coverage is submodular, a stale gain is an upper bound, so a
re-evaluated top element whose gain still dominates the next heap entry
is globally optimal for that step.  This turns the O(S^2) textbook loop
into near-linear behaviour on power-law corpora.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = ["greedy_set_cover", "greedy_coverage_curve"]


def greedy_set_cover(
    incidence: BipartiteIncidence,
    max_sites: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Order sites by greedy marginal coverage gain.

    Args:
        incidence: The entity–site incidence.
        max_sites: Stop after selecting this many sites (default: run
            until no site adds coverage).

    Returns:
        ``(order, gains)``: selected site indices and the number of
        newly covered entities each contributed.  Sites contributing
        nothing are not selected, so the order's cumulative gain sums to
        the 1-coverage of the whole corpus.
    """
    if max_sites is None:
        max_sites = incidence.n_sites
    if max_sites < 0:
        raise ValueError("max_sites must be non-negative")

    covered = np.zeros(incidence.n_entities, dtype=bool)
    sizes = incidence.site_sizes()
    # Max-heap of (-stale_gain, site); initial gains are the site sizes.
    heap: list[tuple[int, int]] = [
        (-int(sizes[s]), s) for s in range(incidence.n_sites) if sizes[s] > 0
    ]
    heapq.heapify(heap)

    order: list[int] = []
    gains: list[int] = []
    while heap and len(order) < max_sites:
        stale_gain, site = heapq.heappop(heap)
        entities = incidence.site_entities(site)
        fresh = entities[~covered[entities]]
        gain = len(fresh)
        if gain == 0:
            continue
        if heap and -heap[0][0] > gain:
            # Someone else's (upper-bound) gain beats our fresh gain:
            # re-queue with the exact value and try again.
            heapq.heappush(heap, (-gain, site))
            continue
        covered[fresh] = True
        order.append(site)
        gains.append(gain)

    return np.asarray(order, dtype=np.int64), np.asarray(gains, dtype=np.int64)


def greedy_coverage_curve(
    incidence: BipartiteIncidence,
    checkpoints: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """1-coverage of the top-t sites under the greedy set-cover order.

    Comparable point-for-point with the k=1 curve of
    :func:`repro.core.coverage.k_coverage_curves`: Figure 5 overlays the
    two.  Checkpoints beyond the number of useful sites report the
    final (saturated) coverage.

    Returns:
        ``(checkpoints, fractions)`` arrays.
    """
    from repro.core.coverage import default_checkpoints

    order, gains = greedy_set_cover(incidence)
    if checkpoints is None:
        checkpoints = default_checkpoints(incidence.n_sites)
    else:
        checkpoints = np.unique(np.asarray(checkpoints, dtype=np.int64))
    cumulative = np.cumsum(gains) if len(gains) else np.zeros(1, dtype=np.int64)
    denominator = max(incidence.n_entities, 1)
    clipped = np.clip(checkpoints, 1, len(cumulative)) - 1
    fractions = cumulative[clipped] / denominator
    return checkpoints, fractions
