"""k-coverage analysis (Section 3.3 of the paper, Figures 1–4).

Given websites ordered by the number of entities they mention, the
*k-coverage* of the top-t sites is the fraction of database entities
present on at least k of those sites.  1-coverage measures how fast a
union of sites approaches the full database; k > 1 measures how much
redundancy is available — the paper's motivation being that an
extraction system may want each fact corroborated by k independent
sources.

The aggregate-review variant (Figure 4(b)) counts *pages* instead of
entities: the fraction of all review pages on the Web hosted by the
top-n sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = [
    "CoverageCurves",
    "aggregate_coverage_curve",
    "coverage_at",
    "default_checkpoints",
    "k_coverage_curves",
    "sites_needed_for_coverage",
]


def default_checkpoints(n_sites: int, per_decade: int = 16) -> np.ndarray:
    """Log-spaced site-count checkpoints 1..n_sites (paper plots are log-x)."""
    if n_sites < 1:
        return np.empty(0, dtype=np.int64)
    decades = max(np.log10(n_sites), 1e-9)
    grid = np.logspace(0, np.log10(n_sites), int(decades * per_decade) + 2)
    return np.unique(np.clip(np.round(grid).astype(np.int64), 1, n_sites))


@dataclass(frozen=True)
class CoverageCurves:
    """k-coverage of the top-t sites, for each k and checkpoint t.

    Attributes:
        checkpoints: Site counts t at which coverage was recorded.
        ks: Redundancy levels, e.g. ``(1, ..., 10)`` as in the figures.
        coverage: ``float64[len(ks), len(checkpoints)]`` fractions of the
            entity database covered by >= k of the top-t sites.
        order: Site indices in the ranking used (best first).
    """

    checkpoints: np.ndarray
    ks: tuple[int, ...]
    coverage: np.ndarray
    order: np.ndarray

    def curve(self, k: int) -> np.ndarray:
        """The coverage series for one redundancy level."""
        try:
            row = self.ks.index(k)
        except ValueError:
            raise KeyError(f"k={k} not computed; available: {self.ks}") from None
        return self.coverage[row]

    def final_coverage(self, k: int) -> float:
        """Coverage of *all* sites at redundancy k."""
        return float(self.curve(k)[-1])


def k_coverage_curves(
    incidence: BipartiteIncidence,
    ks: Sequence[int] = tuple(range(1, 11)),
    checkpoints: Sequence[int] | None = None,
    order: np.ndarray | None = None,
) -> CoverageCurves:
    """Compute k-coverage curves over a site ranking.

    Args:
        incidence: The entity–site incidence.
        ks: Redundancy levels (the paper uses 1..10).
        checkpoints: Site counts at which to record coverage; defaults
            to a log-spaced grid matching the paper's log-x plots.
        order: Site ranking (site indices, best first); defaults to the
            paper's decreasing-entity-count order.

    Returns:
        The recorded curves.  Complexity is O(E + |checkpoints| * |ks|):
        a single pass over edges maintains, for every k, the running
        count of entities mentioned at least k times.
    """
    ks = tuple(int(k) for k in ks)
    if not ks or any(k < 1 for k in ks):
        raise ValueError("ks must be positive integers")
    if order is None:
        order = incidence.sites_by_size()
    else:
        order = np.asarray(order, dtype=np.int64)
    if checkpoints is None:
        checkpoint_arr = default_checkpoints(len(order))
    else:
        checkpoint_arr = np.unique(np.asarray(checkpoints, dtype=np.int64))
        if len(checkpoint_arr) and (
            checkpoint_arr[0] < 1 or checkpoint_arr[-1] > len(order)
        ):
            raise ValueError("checkpoints must lie in [1, n_ranked_sites]")

    n = incidence.n_entities
    kmax = max(ks)
    counts = np.zeros(n, dtype=np.int64)
    # reached[j] = number of entities mentioned >= j times so far (j in 1..kmax)
    reached = np.zeros(kmax + 2, dtype=np.int64)
    coverage = np.zeros((len(ks), len(checkpoint_arr)))
    next_checkpoint = 0
    denominator = max(n, 1)

    for t, site in enumerate(order, start=1):
        entities = incidence.site_entities(int(site))
        if len(entities):
            new_counts = counts[entities] + 1
            counts[entities] = new_counts
            hits = new_counts[new_counts <= kmax]
            if len(hits):
                np.add.at(reached, hits, 1)
        while (
            next_checkpoint < len(checkpoint_arr)
            and checkpoint_arr[next_checkpoint] == t
        ):
            for row, k in enumerate(ks):
                coverage[row, next_checkpoint] = reached[k] / denominator
            next_checkpoint += 1

    return CoverageCurves(
        checkpoints=checkpoint_arr, ks=ks, coverage=coverage, order=order
    )


def coverage_at(
    incidence: BipartiteIncidence,
    top_t: int,
    k: int = 1,
    order: np.ndarray | None = None,
) -> float:
    """k-coverage of exactly the top ``top_t`` sites."""
    if top_t < 0:
        raise ValueError("top_t must be non-negative")
    if top_t == 0:
        return 0.0
    curves = k_coverage_curves(
        incidence, ks=(k,), checkpoints=[min(top_t, incidence.n_sites)], order=order
    )
    return float(curves.coverage[0, 0])


def sites_needed_for_coverage(
    incidence: BipartiteIncidence,
    target: float,
    k: int = 1,
    order: np.ndarray | None = None,
) -> int | None:
    """Smallest t with k-coverage(top-t) >= target, or None if unreachable.

    This answers the paper's headline quantifications directly, e.g.
    "we need to access at least 1000 websites to get a coverage of 90%".
    Runs with per-site granularity (every t is a checkpoint).
    """
    if not 0.0 <= target <= 1.0:
        raise ValueError("target must be a fraction in [0, 1]")
    if order is None:
        order = incidence.sites_by_size()
    counts = np.zeros(incidence.n_entities, dtype=np.int64)
    reached = 0
    needed = int(np.ceil(target * incidence.n_entities))
    if needed == 0:
        return 0
    for t, site in enumerate(order, start=1):
        entities = incidence.site_entities(int(site))
        if len(entities):
            new_counts = counts[entities] + 1
            counts[entities] = new_counts
            reached += int(np.count_nonzero(new_counts == k))
            if reached >= needed:
                return t
    return None


def aggregate_coverage_curve(
    incidence: BipartiteIncidence,
    checkpoints: Sequence[int] | None = None,
    order: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fraction of all pages held by the top-n sites (Figure 4(b)).

    Uses edge multiplicities as page counts (1 per edge when unset).

    Returns:
        ``(checkpoints, fractions)`` arrays.
    """
    if order is None:
        order = incidence.sites_by_size()
    else:
        order = np.asarray(order, dtype=np.int64)
    if checkpoints is None:
        checkpoint_arr = default_checkpoints(len(order))
    else:
        checkpoint_arr = np.unique(np.asarray(checkpoints, dtype=np.int64))
    sizes = incidence.site_sizes()
    if incidence.multiplicity is None:
        pages = sizes.copy()
    else:
        # Per-site page totals in one pass: np.add.reduceat over the CSR
        # row pointers.  Empty sites are excluded from the reduce (a
        # repeated index would mis-sum) and stay zero.
        pages = np.zeros(incidence.n_sites, dtype=np.int64)
        nonempty = sizes > 0
        if nonempty.any():
            starts = incidence.site_ptr[:-1][nonempty]
            pages[nonempty] = np.add.reduceat(incidence.multiplicity, starts)
    pages_per_site = pages[order]
    total = max(int(pages_per_site.sum()), 1)
    cumulative = np.cumsum(pages_per_site)
    fractions = cumulative[checkpoint_arr - 1] / total
    return checkpoint_arr, fractions
