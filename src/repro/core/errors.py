"""Methodology-error analysis (Section 3.5 of the paper).

The paper identifies two error sources in its methodology and argues
both are benign:

1. **Dataset approximation** — only entities already in the database
   are tracked; if anything, this *over-estimates* head-site coverage.
2. **False matches** — a random number can collide with a database key;
   these "will only lead to over-estimation of the coverage (i.e.,
   making the spread appear lower), since the top-t websites will
   report more entities than what they truly cover."

This module makes both arguments checkable instead of rhetorical:

- :func:`inject_false_matches` corrupts an incidence with a controlled
  false-match rate, so the direction and magnitude of the coverage bias
  can be measured (:func:`coverage_bias_under_noise`).
- :func:`estimate_precision_from_sample` reproduces the paper's "based
  on small random samples, we observed that the regular expression
  matching ... had a high accuracy" step, with a Wilson confidence
  interval instead of a bare point estimate.
- :func:`bootstrap_coverage_interval` puts a resampling confidence band
  on any coverage estimate, quantifying the dataset-approximation
  uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.coverage import coverage_at
from repro.core.incidence import BipartiteIncidence

__all__ = [
    "PrecisionEstimate",
    "bootstrap_coverage_interval",
    "coverage_bias_under_noise",
    "estimate_precision_from_sample",
    "inject_false_matches",
]


def inject_false_matches(
    incidence: BipartiteIncidence,
    rate: float,
    rng: np.random.Generator | int,
) -> BipartiteIncidence:
    """Add spurious (site, entity) edges at ``rate`` per true edge.

    Each injected edge pairs a uniformly random site with a uniformly
    random entity — the collision model for accidental key matches
    (a 10-digit invoice number that happens to equal a phone key).
    Duplicates with existing edges are merged away by construction.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    n_false = int(round(rate * incidence.n_edges))
    sites: list[tuple[str, list[int]]] = [
        (incidence.site_hosts[s], incidence.site_entities(s).tolist())
        for s in range(incidence.n_sites)
    ]
    if n_false and incidence.n_sites and incidence.n_entities:
        false_sites = rng.integers(incidence.n_sites, size=n_false)
        false_entities = rng.integers(incidence.n_entities, size=n_false)
        for site, entity in zip(false_sites.tolist(), false_entities.tolist()):
            sites[site][1].append(int(entity))
    return BipartiteIncidence.from_site_lists(
        n_entities=incidence.n_entities,
        sites=sites,
        entity_ids=incidence.entity_ids,
    )


def coverage_bias_under_noise(
    incidence: BipartiteIncidence,
    rate: float,
    rng: np.random.Generator | int,
    top_t: int = 100,
    k: int = 1,
) -> tuple[float, float]:
    """Coverage of the top-t sites before and after false-match noise.

    Returns:
        ``(clean, noisy)`` coverage values.  Section 3.5 predicts
        ``noisy >= clean`` — false matches make the spread look lower,
        strengthening (not weakening) the tail-extraction conclusion.
    """
    clean = coverage_at(incidence, top_t, k=k)
    noisy_incidence = inject_false_matches(incidence, rate, rng)
    noisy = coverage_at(noisy_incidence, min(top_t, noisy_incidence.n_sites), k=k)
    return clean, noisy


@dataclass(frozen=True)
class PrecisionEstimate:
    """Sample-based precision with a Wilson score interval.

    Attributes:
        n_sampled: Matches manually checked.
        n_correct: Of those, true matches.
        precision: Point estimate.
        low, high: Wilson 95% (by default) confidence bounds.
    """

    n_sampled: int
    n_correct: int
    precision: float
    low: float
    high: float


def estimate_precision_from_sample(
    n_sampled: int, n_correct: int, z: float = 1.96
) -> PrecisionEstimate:
    """Wilson score interval for match precision.

    The paper verified extractor accuracy on "small random samples";
    the Wilson interval is the appropriate summary for such samples
    (it behaves sensibly at p near 1, where these extractors live).
    """
    if n_sampled <= 0:
        raise ValueError("n_sampled must be positive")
    if not 0 <= n_correct <= n_sampled:
        raise ValueError("n_correct must be in [0, n_sampled]")
    p = n_correct / n_sampled
    denominator = 1 + z**2 / n_sampled
    center = (p + z**2 / (2 * n_sampled)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / n_sampled + z**2 / (4 * n_sampled**2))
        / denominator
    )
    return PrecisionEstimate(
        n_sampled=n_sampled,
        n_correct=n_correct,
        precision=p,
        low=max(0.0, center - margin),
        high=min(1.0, center + margin),
    )


def bootstrap_coverage_interval(
    incidence: BipartiteIncidence,
    top_t: int,
    k: int = 1,
    n_bootstrap: int = 200,
    confidence: float = 0.95,
    rng: np.random.Generator | int = 0,
) -> tuple[float, float, float]:
    """Entity-resampling bootstrap CI for top-t k-coverage.

    Resamples *entities* with replacement (the database is a sample of
    the domain, per the paper's first error source) and recomputes the
    fraction covered by the fixed top-t sites.

    Returns:
        ``(point, low, high)``.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n_bootstrap < 1:
        raise ValueError("n_bootstrap must be positive")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    order = incidence.sites_by_size()[:top_t]
    counts = np.zeros(incidence.n_entities, dtype=np.int64)
    for site in order:
        counts[incidence.site_entities(int(site))] += 1
    covered = (counts >= k).astype(np.float64)
    point = float(covered.mean()) if len(covered) else 0.0
    samples = np.empty(n_bootstrap)
    n = len(covered)
    for b in range(n_bootstrap):
        picks = rng.integers(n, size=n)
        samples[b] = covered[picks].mean()
    alpha = (1 - confidence) / 2
    low, high = np.quantile(samples, [alpha, 1 - alpha])
    return point, float(low), float(high)
