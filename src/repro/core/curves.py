"""Curve comparison utilities.

The reproduction's claims are mostly *curve-shaped*: one coverage curve
lies above another, two extraction paths agree, a crossover falls in a
given region.  This module gives those comparisons a precise, reusable
form:

- :func:`step_interpolate` — evaluate a coverage-style curve (a step
  function of "top-t sites") at arbitrary x,
- :func:`max_gap` — the L∞ distance between two curves on the union of
  their supports,
- :func:`area_between` — the signed trapezoid area (who wins, by how
  much, integrated),
- :func:`crossovers` — the x positions where one curve overtakes the
  other.
"""

from __future__ import annotations

import numpy as np

__all__ = ["area_between", "crossovers", "max_gap", "step_interpolate"]


def _validate(xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.ndim != 1 or xs.shape != ys.shape or len(xs) == 0:
        raise ValueError("curve must be non-empty aligned 1-D arrays")
    if np.any(np.diff(xs) <= 0):
        raise ValueError("x values must be strictly increasing")
    return xs, ys


def step_interpolate(
    x: np.ndarray, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Evaluate a right-continuous step curve at the points ``x``.

    Coverage-of-top-t curves are step functions: between checkpoints
    the value is the last recorded one.  Queries left of the first
    checkpoint return 0 (no sites yet); right of the last return the
    final value.
    """
    xs, ys = _validate(xs, ys)
    x = np.asarray(x, dtype=np.float64)
    indices = np.searchsorted(xs, x, side="right") - 1
    result = np.where(indices >= 0, ys[np.clip(indices, 0, len(ys) - 1)], 0.0)
    return result


def max_gap(
    xs_a: np.ndarray,
    ys_a: np.ndarray,
    xs_b: np.ndarray,
    ys_b: np.ndarray,
) -> float:
    """L∞ distance between two step curves on their union support."""
    xs_a, ys_a = _validate(xs_a, ys_a)
    xs_b, ys_b = _validate(xs_b, ys_b)
    grid = np.union1d(xs_a, xs_b)
    a = step_interpolate(grid, xs_a, ys_a)
    b = step_interpolate(grid, xs_b, ys_b)
    return float(np.max(np.abs(a - b)))


def area_between(
    xs_a: np.ndarray,
    ys_a: np.ndarray,
    xs_b: np.ndarray,
    ys_b: np.ndarray,
    log_x: bool = False,
) -> float:
    """Signed trapezoid area of (curve A − curve B) on the union grid.

    Positive means A dominates on balance.  With ``log_x`` the
    integration variable is log10(x) — appropriate for the paper's
    log-x coverage plots, where each decade should weigh equally.
    """
    xs_a, ys_a = _validate(xs_a, ys_a)
    xs_b, ys_b = _validate(xs_b, ys_b)
    grid = np.union1d(xs_a, xs_b)
    if log_x:
        if grid[0] <= 0:
            raise ValueError("log_x requires positive x values")
        axis = np.log10(grid)
    else:
        axis = grid
    difference = step_interpolate(grid, xs_a, ys_a) - step_interpolate(
        grid, xs_b, ys_b
    )
    return float(np.trapezoid(difference, axis))


def crossovers(
    xs_a: np.ndarray,
    ys_a: np.ndarray,
    xs_b: np.ndarray,
    ys_b: np.ndarray,
) -> np.ndarray:
    """Grid points where the sign of (A − B) changes.

    Returns the x values at which the ordering of the two curves flips
    (ignoring stretches where they are exactly equal) — "where
    crossovers fall" in shape comparisons.
    """
    xs_a, ys_a = _validate(xs_a, ys_a)
    xs_b, ys_b = _validate(xs_b, ys_b)
    grid = np.union1d(xs_a, xs_b)
    difference = step_interpolate(grid, xs_a, ys_a) - step_interpolate(
        grid, xs_b, ys_b
    )
    signs = np.sign(difference)
    nonzero = signs != 0
    compact_signs = signs[nonzero]
    compact_grid = grid[nonzero]
    flips = np.flatnonzero(np.diff(compact_signs) != 0)
    return compact_grid[flips + 1]
