"""Entity–site bipartite incidence.

Section 3.1 of the paper reduces "where does structured data live?" to a
single structure: for each website (host), the set of database entities
whose identifying attributes appear on its pages.  Both production paths
in this repository emit this structure —

- the generative web model (:mod:`repro.webgen`) emits it directly, and
- the full pipeline (render HTML → crawl cache → extractors) emits it
  via :class:`repro.extract.runner.ExtractionRunner` —

and every analysis (coverage, set cover, connectivity, discovery)
consumes it.  Edges may carry a *multiplicity*: the number of distinct
pages on the site mentioning the entity, used by the aggregate-review
analysis of Figure 4(b).

The storage is CSR-by-site: ``entity_idx[site_ptr[s]:site_ptr[s+1]]``
are the entity indices mentioned by site ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["BipartiteIncidence", "transpose_csr"]


@dataclass
class BipartiteIncidence:
    """CSR-by-site incidence between entities ``[0, n_entities)`` and sites.

    Attributes:
        n_entities: Number of entities in the underlying database.  This
            is the denominator of every coverage metric — entities that
            appear on no site at all still count against coverage, as in
            the paper.
        site_hosts: Host name per site, index-aligned with the CSR rows.
        site_ptr: ``int64[n_sites + 1]`` row pointers.
        entity_idx: ``int64[n_edges]`` entity index per edge.  Within a
            site, entity indices are unique (a site either mentions an
            entity or it does not).
        multiplicity: Optional ``int64[n_edges]`` pages-per-edge counts
            (``>= 1``).  ``None`` means "1 page per edge" everywhere.
        entity_ids: Optional entity-id strings, index-aligned with
            entity indices, for joining back to an
            :class:`~repro.entities.catalog.EntityDatabase`.
    """

    n_entities: int
    site_hosts: list[str]
    site_ptr: np.ndarray
    entity_idx: np.ndarray
    multiplicity: np.ndarray | None = None
    entity_ids: list[str] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.site_ptr = np.asarray(self.site_ptr, dtype=np.int64)
        self.entity_idx = np.asarray(self.entity_idx, dtype=np.int64)
        if self.multiplicity is not None:
            self.multiplicity = np.asarray(self.multiplicity, dtype=np.int64)
        self._validate()

    def _validate(self) -> None:
        if self.n_entities < 0:
            raise ValueError("n_entities must be non-negative")
        if self.site_ptr.ndim != 1 or len(self.site_ptr) != len(self.site_hosts) + 1:
            raise ValueError("site_ptr must have length n_sites + 1")
        if self.site_ptr[0] != 0 or np.any(np.diff(self.site_ptr) < 0):
            raise ValueError("site_ptr must start at 0 and be non-decreasing")
        if self.site_ptr[-1] != len(self.entity_idx):
            raise ValueError("site_ptr[-1] must equal the number of edges")
        if len(self.entity_idx) and (
            self.entity_idx.min() < 0 or self.entity_idx.max() >= self.n_entities
        ):
            raise ValueError("entity indices out of range")
        if self.multiplicity is not None:
            if len(self.multiplicity) != len(self.entity_idx):
                raise ValueError("multiplicity must be edge-aligned")
            if len(self.multiplicity) and self.multiplicity.min() < 1:
                raise ValueError("multiplicities must be >= 1")
        if self.entity_ids is not None and len(self.entity_ids) != self.n_entities:
            raise ValueError("entity_ids must have length n_entities")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_site_lists(
        cls,
        n_entities: int,
        sites: Sequence[tuple[str, Iterable[int]]],
        multiplicities: Sequence[Iterable[int]] | None = None,
        entity_ids: list[str] | None = None,
    ) -> "BipartiteIncidence":
        """Build from per-site entity lists.

        Args:
            n_entities: Size of the entity database.
            sites: Sequence of ``(host, entity_indices)`` pairs.
                Duplicate indices within one site are merged (and their
                multiplicities summed when given).
            multiplicities: Optional per-site page counts, aligned with
                the entity lists in ``sites``.
            entity_ids: Optional entity-id strings.
        """
        hosts: list[str] = []
        ptr = [0]
        idx_chunks: list[np.ndarray] = []
        mult_chunks: list[np.ndarray] = []
        for site_no, (host, indices) in enumerate(sites):
            arr = np.asarray(list(indices), dtype=np.int64)
            if multiplicities is not None:
                mult = np.asarray(list(multiplicities[site_no]), dtype=np.int64)
                if len(mult) != len(arr):
                    raise ValueError(
                        f"site {host!r}: multiplicity list misaligned with entities"
                    )
            else:
                mult = np.ones(len(arr), dtype=np.int64)
            if len(arr):
                unique, inverse = np.unique(arr, return_inverse=True)
                summed = np.zeros(len(unique), dtype=np.int64)
                np.add.at(summed, inverse, mult)
                arr, mult = unique, summed
            hosts.append(host)
            idx_chunks.append(arr)
            mult_chunks.append(mult)
            ptr.append(ptr[-1] + len(arr))
        entity_idx = (
            np.concatenate(idx_chunks) if idx_chunks else np.empty(0, dtype=np.int64)
        )
        mult_arr: np.ndarray | None = (
            np.concatenate(mult_chunks) if mult_chunks else np.empty(0, dtype=np.int64)
        )
        if multiplicities is None:
            mult_arr = None
        return cls(
            n_entities=n_entities,
            site_hosts=hosts,
            site_ptr=np.asarray(ptr, dtype=np.int64),
            entity_idx=entity_idx,
            multiplicity=mult_arr,
            entity_ids=entity_ids,
        )

    # -- basic accessors --------------------------------------------------------

    @property
    def n_sites(self) -> int:
        """Number of sites (hosts)."""
        return len(self.site_hosts)

    @property
    def n_edges(self) -> int:
        """Number of (entity, site) incidences."""
        return int(self.site_ptr[-1])

    def site_entities(self, site: int) -> np.ndarray:
        """Entity indices mentioned by ``site``."""
        return self.entity_idx[self.site_ptr[site]:self.site_ptr[site + 1]]

    def site_multiplicities(self, site: int) -> np.ndarray:
        """Pages-per-entity for ``site`` (ones when multiplicity is unset)."""
        lo, hi = self.site_ptr[site], self.site_ptr[site + 1]
        if self.multiplicity is None:
            return np.ones(int(hi - lo), dtype=np.int64)
        return self.multiplicity[lo:hi]

    def site_sizes(self) -> np.ndarray:
        """Entities-per-site counts, ``int64[n_sites]``."""
        return np.diff(self.site_ptr)

    def entity_mention_counts(self) -> np.ndarray:
        """Sites-per-entity counts, ``int64[n_entities]``.

        Table 2's "Avg. #sites per entity" is the mean of this array
        restricted to entities with at least one mention.
        """
        counts = np.zeros(self.n_entities, dtype=np.int64)
        np.add.at(counts, self.entity_idx, 1)
        return counts

    def mentioned_entities(self) -> np.ndarray:
        """Sorted indices of entities with at least one mention."""
        return np.unique(self.entity_idx)

    def average_sites_per_entity(self) -> float:
        """Mean number of sites mentioning an entity (over mentioned ones)."""
        n_mentioned = len(self.mentioned_entities())
        if n_mentioned == 0:
            return 0.0
        return self.n_edges / n_mentioned

    def sites_by_size(self) -> np.ndarray:
        """Site indices in decreasing order of entity count.

        This is the paper's default site ranking ("we order the list of
        websites in decreasing order of the number of entities they
        contain").  Ties break by site index for determinism.
        """
        sizes = self.site_sizes()
        return np.lexsort((np.arange(self.n_sites), -sizes))

    # -- transforms ---------------------------------------------------------------

    def drop_sites(self, sites: Iterable[int]) -> "BipartiteIncidence":
        """Return a copy with the given sites removed.

        Used by the robustness analysis (Figure 9): remove the top-k
        sites and re-measure connectivity.  Entity indexing (and hence
        the coverage denominator) is unchanged.  Surviving sites keep
        their relative order, and their multiplicity slices move with
        them.
        """
        keep_site = np.ones(self.n_sites, dtype=bool)
        drop_arr = np.fromiter((int(s) for s in sites), dtype=np.int64)
        # Indices outside [0, n_sites) are ignored, as with the set-based
        # membership test this replaces (negatives must not wrap around).
        drop_arr = drop_arr[(drop_arr >= 0) & (drop_arr < self.n_sites)]
        if len(drop_arr):
            keep_site[drop_arr] = False
        sizes = self.site_sizes()
        keep_edge = np.repeat(keep_site, sizes)
        hosts = [
            host for host, keep in zip(self.site_hosts, keep_site) if keep
        ]
        ptr = np.zeros(len(hosts) + 1, dtype=np.int64)
        np.cumsum(sizes[keep_site], out=ptr[1:])
        return BipartiteIncidence(
            n_entities=self.n_entities,
            site_hosts=hosts,
            site_ptr=ptr,
            entity_idx=self.entity_idx[keep_edge],
            multiplicity=(
                None
                if self.multiplicity is None
                else self.multiplicity[keep_edge]
            ),
            entity_ids=self.entity_ids,
        )

    def iter_sites(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(host, entity_indices)`` per site."""
        for s in range(self.n_sites):
            yield self.site_hosts[s], self.site_entities(s)

    def total_pages(self) -> int:
        """Total page count (sum of multiplicities; edges when unset)."""
        if self.multiplicity is None:
            return self.n_edges
        return int(self.multiplicity.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteIncidence(entities={self.n_entities}, "
            f"sites={self.n_sites}, edges={self.n_edges})"
        )


def transpose_csr(incidence: BipartiteIncidence) -> tuple[np.ndarray, np.ndarray]:
    """CSR-by-entity transpose of a CSR-by-site incidence.

    Returns ``(entity_ptr, entity_sites)`` such that
    ``entity_sites[entity_ptr[e]:entity_ptr[e + 1]]`` are the site
    indices mentioning entity ``e``.  A stable argsort over the edge
    entity indices groups edges by entity while preserving edge order —
    and edges are stored site-ascending, so each entity's site list
    comes out ascending.  Shared by the in-RAM serving index and the
    ``repro.store`` compiler so every backend ranks sites identically.
    """
    n_sites = len(incidence.site_hosts)
    site_per_edge = np.repeat(
        np.arange(n_sites, dtype=np.int64), np.diff(incidence.site_ptr)
    )
    order = np.argsort(incidence.entity_idx, kind="stable")
    entity_sites = site_per_edge[order]
    counts = np.bincount(incidence.entity_idx, minlength=incidence.n_entities)
    entity_ptr = np.zeros(incidence.n_entities + 1, dtype=np.int64)
    np.cumsum(counts, out=entity_ptr[1:])
    return entity_ptr, entity_sites
