"""Content-redundancy metrics across sites.

The paper's third conclusion: "the aggregate content within a domain is
well-connected, and there is a significant amount of content
redundancy ... structural redundancy within websites, content
redundancy across websites, and entity-source connectivity together can
be leveraged to develop effective techniques for domain-centric
information extraction."  This module quantifies that redundancy:

- per-entity *replication* (how many sites corroborate each fact),
- the corpus *redundancy coefficient* (edges per covered entity — how
  much extraction work is duplicated),
- pairwise site *overlap* (Jaccard) among the head sites, and
- the *marginal novelty profile*: how much genuinely new content each
  successive site contributes under a ranking (the quantity greedy set
  cover maximizes and size-ordering approximates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = [
    "RedundancyReport",
    "head_site_overlap_matrix",
    "marginal_novelty_profile",
    "redundancy_report",
    "replication_histogram",
]


def replication_histogram(
    incidence: BipartiteIncidence, max_count: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of sites-per-entity (replication factor).

    Returns:
        ``(counts, frequency)`` where ``frequency[i]`` is the fraction
        of *mentioned* entities appearing on exactly ``counts[i]``
        sites; the final bucket aggregates ``>= max_count``.
    """
    if max_count < 1:
        raise ValueError("max_count must be >= 1")
    mentions = incidence.entity_mention_counts()
    mentions = mentions[mentions > 0]
    if len(mentions) == 0:
        return np.arange(1, max_count + 1), np.zeros(max_count)
    clipped = np.minimum(mentions, max_count)
    histogram = np.bincount(clipped, minlength=max_count + 1)[1:]
    return np.arange(1, max_count + 1), histogram / len(mentions)


def head_site_overlap_matrix(
    incidence: BipartiteIncidence, top: int = 10
) -> tuple[list[str], np.ndarray]:
    """Pairwise Jaccard overlap among the ``top`` largest sites.

    Returns:
        ``(hosts, matrix)`` with ``matrix[i, j] = |A_i ∩ A_j| /
        |A_i ∪ A_j|``; the diagonal is 1 for non-empty sites.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    ranked = incidence.sites_by_size()[:top]
    sets = [set(incidence.site_entities(int(s)).tolist()) for s in ranked]
    hosts = [incidence.site_hosts[int(s)] for s in ranked]
    n = len(sets)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            union = len(sets[i] | sets[j])
            value = len(sets[i] & sets[j]) / union if union else 0.0
            matrix[i, j] = matrix[j, i] = value
    return hosts, matrix


def marginal_novelty_profile(
    incidence: BipartiteIncidence, order: np.ndarray | None = None
) -> np.ndarray:
    """New-entity fraction contributed by each site under a ranking.

    ``profile[t]`` is the fraction of a site's entities not seen on any
    earlier-ranked site — 1.0 for a site of pure novel content, 0.0 for
    a full duplicate.  Sites with no entities report 0.
    """
    if order is None:
        order = incidence.sites_by_size()
    seen = np.zeros(incidence.n_entities, dtype=bool)
    profile = np.zeros(len(order))
    for t, site in enumerate(np.asarray(order, dtype=np.int64)):
        entities = incidence.site_entities(int(site))
        if len(entities) == 0:
            continue
        fresh = ~seen[entities]
        profile[t] = float(fresh.mean())
        seen[entities[fresh]] = True
    return profile


@dataclass(frozen=True)
class RedundancyReport:
    """Summary statistics of corpus-level content redundancy.

    Attributes:
        redundancy_coefficient: Edges per mentioned entity — 1.0 means
            every fact exists exactly once on the Web; the paper's
            domains run from 8 to 251.
        singleton_fraction: Fraction of mentioned entities appearing on
            exactly one site (facts with no corroboration anywhere).
        median_replication: Median sites-per-entity.
        head_overlap_mean: Mean off-diagonal Jaccard overlap among the
            top-10 sites (how much the big aggregators duplicate each
            other).
        novelty_decay_rank: First rank at which the marginal novelty of
            a site drops below 10% (how quickly the size ranking turns
            into rediscovering known facts).
    """

    redundancy_coefficient: float
    singleton_fraction: float
    median_replication: float
    head_overlap_mean: float
    novelty_decay_rank: int


def redundancy_report(incidence: BipartiteIncidence) -> RedundancyReport:
    """Compute the full redundancy summary for one corpus."""
    mentions = incidence.entity_mention_counts()
    mentioned = mentions[mentions > 0]
    if len(mentioned) == 0:
        return RedundancyReport(0.0, 0.0, 0.0, 0.0, 0)
    hosts, overlap = head_site_overlap_matrix(incidence, top=10)
    n = len(hosts)
    if n > 1:
        off_diagonal = overlap[~np.eye(n, dtype=bool)]
        head_overlap_mean = float(off_diagonal.mean())
    else:
        head_overlap_mean = 0.0
    novelty = marginal_novelty_profile(incidence)
    below = np.flatnonzero(novelty < 0.10)
    decay_rank = int(below[0]) + 1 if len(below) else len(novelty)
    return RedundancyReport(
        redundancy_coefficient=float(mentioned.mean()),
        singleton_fraction=float((mentioned == 1).mean()),
        median_replication=float(np.median(mentioned)),
        head_overlap_mean=head_overlap_mean,
        novelty_decay_rank=decay_rank,
    )
