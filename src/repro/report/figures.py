"""ASCII line plots and CSV series output.

:func:`ascii_plot` reproduces the paper's gnuplot panels in the
terminal: multiple series on shared axes, optional log-x / log-y, one
glyph per series.  :func:`write_csv` persists the same series for
external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_plot", "series_to_csv", "write_csv"]

_GLYPHS = "1234567890abcdef"


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Args:
        series: Map from label to ``(x, y)`` arrays.
        width, height: Plot area size in characters.
        log_x, log_y: Log-scale the axis (non-positive values are
            dropped from that series, as gnuplot does).
        title: Optional heading line.
        x_label, y_label: Axis captions for the footer.

    Returns:
        The rendered chart; one glyph per series with a legend.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    prepared: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError(f"series {label!r}: x and y are misaligned")
        keep = np.isfinite(x) & np.isfinite(y)
        if log_x:
            keep &= x > 0
        if log_y:
            keep &= y > 0
        x, y = x[keep], y[keep]
        if len(x):
            prepared[label] = (
                np.log10(x) if log_x else x,
                np.log10(y) if log_y else y,
            )
    if not prepared:
        raise ValueError("all series were empty after filtering")

    x_min = min(float(x.min()) for x, _ in prepared.values())
    x_max = max(float(x.max()) for x, _ in prepared.values())
    y_min = min(float(y.min()) for _, y in prepared.values())
    y_max = max(float(y.max()) for _, y in prepared.values())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, (x, y)) in enumerate(prepared.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        cols = np.clip(
            ((x - x_min) / (x_max - x_min) * (width - 1)).round().astype(int),
            0,
            width - 1,
        )
        rows = np.clip(
            ((y - y_min) / (y_max - y_min) * (height - 1)).round().astype(int),
            0,
            height - 1,
        )
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = glyph

    def axis_value(value: float, is_log: bool) -> str:
        return f"{10**value:.3g}" if is_log else f"{value:.3g}"

    lines = []
    if title:
        lines.append(title)
    top = axis_value(y_max, log_y)
    bottom = axis_value(y_min, log_y)
    margin = max(len(top), len(bottom)) + 1
    for row_no, row in enumerate(grid):
        if row_no == 0:
            prefix = top.rjust(margin)
        elif row_no == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    left = axis_value(x_min, log_x)
    right = axis_value(x_max, log_x)
    pad = width - len(left) - len(right)
    lines.append(" " * (margin + 1) + left + " " * max(pad, 1) + right)
    legend = "  ".join(
        f"[{_GLYPHS[i % len(_GLYPHS)]}] {label}"
        for i, label in enumerate(prepared)
    )
    lines.append(f"{x_label} vs {y_label}   {legend}")
    return "\n".join(lines)


def series_to_csv(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
) -> list[list[object]]:
    """Flatten labelled series into long-format rows (label, x, y)."""
    rows: list[list[object]] = [["series", "x", "y"]]
    for label, (xs, ys) in series.items():
        for x, y in zip(xs, ys):
            rows.append([label, float(x), float(y)])
    return rows


def write_csv(
    path: str | Path,
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
) -> Path:
    """Write labelled series to a long-format CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerows(series_to_csv(series))
    return path
