"""Rendering of experiment results: ASCII tables, ASCII plots, CSV.

The paper's figures are gnuplot line charts; this package reproduces
them as terminal-friendly ASCII plots (log-x capable, multi-series) and
machine-readable CSV series, plus fixed-width tables for Tables 1–2.
"""

from repro.report.figures import ascii_plot, series_to_csv, write_csv
from repro.report.tables import ascii_table, format_float

__all__ = ["ascii_plot", "ascii_table", "format_float", "series_to_csv", "write_csv"]
