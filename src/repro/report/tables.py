"""Fixed-width ASCII tables (Tables 1 and 2 of the paper)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_table", "format_float"]


def format_float(value: float, digits: int = 2) -> str:
    """Render a float compactly (integers lose the trailing zeros)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}f}"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a boxed fixed-width table.

    Numeric cells are right-aligned, text cells left-aligned; floats go
    through :func:`format_float`.
    """
    rendered: list[list[str]] = []
    numeric: list[bool] = [True] * len(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells = []
        for column, value in enumerate(row):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                numeric[column] = False
                cells.append(str(value))
            elif isinstance(value, float):
                cells.append(format_float(value))
            else:
                cells.append(str(value))
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered:
        for column, cell in enumerate(cells):
            widths[column] = max(widths[column], len(cell))

    def fmt_row(cells: Sequence[str], is_header: bool = False) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if numeric[column] and not is_header:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(fmt_row(list(headers), is_header=True))
    lines.append(separator)
    lines.extend(fmt_row(cells) for cells in rendered)
    lines.append(separator)
    return "\n".join(lines)
