"""Garbage collection for the run-journal directory.

Journals accumulate forever by design — every ``repro all`` with
journaling on leaves a ``<run-id>.jsonl`` checkpoint behind, and a
finished run has no reason to delete its own (the user may still want
to inspect timings or re-resume).  :func:`gc_journals` is the explicit
reaper behind ``repro journal-gc``: keep the N most recent journals
and/or drop those older than a cutoff.

Safety properties, in order of precedence:

- Only files that *parse as journals* (first line is a
  ``repro-journal-v1`` header) are candidates.  Anything else in the
  directory — notes, tarballs, half-written garbage — is never touched.
- Explicitly protected run ids (the CLI passes ``--protect``) are
  always kept.
- Journals with a fresh mtime (within ``grace_seconds``) are treated as
  *in flight* and kept: a live ``--resume`` run atomically rewrites its
  journal on every task completion, so its mtime stays current.  This
  is what makes the reaper safe to run concurrently with a resumable
  run without run-id plumbing between the two processes.
- Retention is then newest-first: the ``keep`` most recent survivors
  stay, and ``max_age_days`` evicts regardless of count.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.resilience.journal import JOURNAL_FORMAT, resolve_journal_dir

__all__ = ["JournalGCResult", "gc_journals"]

#: Journals touched within this window are presumed in flight.
DEFAULT_GRACE_SECONDS = 3600.0


@dataclasses.dataclass(frozen=True)
class JournalGCResult:
    """What one GC pass did (run ids, newest first in each bucket)."""

    directory: str
    removed: tuple[str, ...]
    kept: tuple[str, ...]
    protected: tuple[str, ...]

    def summary(self) -> str:
        """One-line human rendering for the CLI."""
        return (
            f"{self.directory}: removed {len(self.removed)}, "
            f"kept {len(self.kept)}, protected {len(self.protected)}"
        )


def _journal_header(path: Path) -> dict | None:
    """Parse a candidate's header line; None when it is not a journal."""
    try:
        with path.open(encoding="utf-8") as handle:
            header = json.loads(handle.readline())
    except (OSError, ValueError):
        return None
    if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
        return None
    return header


def gc_journals(
    directory: str | Path | None = None,
    keep: int | None = 10,
    max_age_days: float | None = None,
    protect: tuple[str, ...] = (),
    grace_seconds: float = DEFAULT_GRACE_SECONDS,
    now: float | None = None,
) -> JournalGCResult:
    """Reap old run journals; returns what was removed/kept/protected.

    Args:
        directory: Journal directory (defaults like
            :func:`~repro.resilience.journal.resolve_journal_dir`:
            ``REPRO_JOURNAL_DIR`` then ``~/.cache/repro-journals``).
        keep: Keep this many of the most recent unprotected journals
            (None = no count limit).
        max_age_days: Additionally remove journals older than this,
            regardless of count (None = no age limit).
        protect: Run ids that must survive (e.g. a run about to be
            ``--resume``\\ d).
        grace_seconds: Freshness window treated as in-flight; such
            journals are protected, never removed.
        now: Reference epoch seconds for age computation; defaults to
            the current time (injectable for deterministic tests).

    Returns:
        A :class:`JournalGCResult`; the pass is a no-op (empty result)
        when the directory does not exist.
    """
    if keep is not None and keep < 0:
        raise ValueError("keep must be >= 0")
    if max_age_days is not None and max_age_days < 0:
        raise ValueError("max_age_days must be >= 0")
    root = resolve_journal_dir(directory)
    if not root.is_dir():
        return JournalGCResult(
            directory=str(root), removed=(), kept=(), protected=()
        )
    if now is None:
        now = time.time()  # reprolint: disable=RNG004

    protected_ids = set(protect)
    candidates: list[tuple[float, str, Path]] = []
    protected: list[tuple[float, str]] = []
    for path in sorted(root.glob("*.jsonl")):
        header = _journal_header(path)
        if header is None:
            continue  # not a journal: out of scope, never touched
        run_id = str(header.get("run_id", path.stem))
        mtime = path.stat().st_mtime
        if run_id in protected_ids or (now - mtime) < grace_seconds:
            protected.append((mtime, run_id))
            continue
        candidates.append((mtime, run_id, path))

    # Newest first; run id as a deterministic tie-break.
    candidates.sort(key=lambda item: (-item[0], item[1]))
    removed: list[str] = []
    kept: list[str] = []
    for rank, (mtime, run_id, path) in enumerate(candidates):
        too_many = keep is not None and rank >= keep
        too_old = (
            max_age_days is not None
            and (now - mtime) > max_age_days * 86400.0
        )
        if too_many or too_old:
            path.unlink(missing_ok=True)
            removed.append(run_id)
        else:
            kept.append(run_id)

    protected.sort(key=lambda item: (-item[0], item[1]))
    return JournalGCResult(
        directory=str(root),
        removed=tuple(removed),
        kept=tuple(kept),
        protected=tuple(run_id for __, run_id in protected),
    )
