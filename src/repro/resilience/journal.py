"""Checkpoint/resume: the per-run journal of completed tasks.

A :class:`RunJournal` is a JSON-lines file — one header line naming the
run and the config fingerprint it belongs to, then one line per
completed task with the artifact names it wrote and its wall-clock.
After every completion the *whole* file is rewritten through
:func:`repro.io.atomic_write_text`, so the journal on disk is always a
consistent prefix of the run: a crash, kill, or power loss can lose at
most the most recent completion, never corrupt the file.

``repro all --resume <run-id>`` loads the journal, skips every task it
records, and re-runs only the remainder — the header fingerprint guard
refuses to resume a journal produced by a different configuration or
output directory, which would otherwise silently mix artifacts from two
incompatible runs.

Journals deliberately live *outside* the artifact output directory
(default ``~/.cache/repro-journals``, overridable via
``REPRO_JOURNAL_DIR``): they record timings, which would break the
byte-identity contract if they sat next to the artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from repro.io import atomic_write_text

__all__ = [
    "ENV_JOURNAL_DIR",
    "JOURNAL_FORMAT",
    "JournalEntry",
    "JournalMismatchError",
    "RunJournal",
    "derive_run_id",
    "resolve_journal_dir",
]

ENV_JOURNAL_DIR = "REPRO_JOURNAL_DIR"

#: Header format tag; files without it are never treated as journals.
JOURNAL_FORMAT = "repro-journal-v1"

_FORMAT = JOURNAL_FORMAT


class JournalMismatchError(ValueError):
    """Resuming against a journal written by an incompatible run."""


def resolve_journal_dir(explicit: str | Path | None = None) -> Path:
    """Journal directory: explicit arg > ``REPRO_JOURNAL_DIR`` > default."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(ENV_JOURNAL_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-journals"


def derive_run_id(config_fingerprint: str) -> str:
    """Default run id: a short, human-quotable prefix of the run key.

    Re-invoking the identical command derives the identical run id, so
    ``--resume`` without an explicit id finds the matching journal.
    """
    return config_fingerprint[:12]


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One completed task, as recorded in the journal."""

    task: str
    artifacts: tuple[str, ...]
    seconds: float

    def as_dict(self) -> dict:
        """JSON-ready rendering (one journal line)."""
        return {
            "task": self.task,
            "artifacts": list(self.artifacts),
            "seconds": round(self.seconds, 6),
        }


class RunJournal:
    """Atomically-rewritten record of one run's completed tasks.

    Args:
        directory: Journal directory (see :func:`resolve_journal_dir`).
        run_id: The run's identifier; also the journal's file stem.
        config_fingerprint: Fingerprint of everything that determines
            the run's artifacts (config + output dir); the resume guard.
    """

    def __init__(
        self,
        directory: str | Path,
        run_id: str,
        config_fingerprint: str,
    ) -> None:
        self.directory = Path(directory)
        self.run_id = run_id
        self.config_fingerprint = config_fingerprint
        self.entries: dict[str, JournalEntry] = {}

    @property
    def path(self) -> Path:
        """The journal file for this run."""
        return self.directory / f"{self.run_id}.jsonl"

    @classmethod
    def open(
        cls,
        directory: str | Path,
        run_id: str,
        config_fingerprint: str,
        require_existing: bool = False,
    ) -> "RunJournal":
        """Load (or start) the journal for ``run_id``.

        An existing journal is validated against ``config_fingerprint``
        — a mismatch raises :class:`JournalMismatchError` rather than
        resuming a run whose artifacts would not line up.  With
        ``require_existing`` a missing journal is an error too (the
        ``--resume`` path; resuming nothing is almost always a typo'd
        run id).
        """
        journal = cls(directory, run_id, config_fingerprint)
        if not journal.path.is_file():
            if require_existing:
                raise JournalMismatchError(
                    f"no journal for run id {run_id!r} in {journal.directory}"
                )
            return journal
        with journal.path.open(encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            if header.get("format") != _FORMAT:
                raise JournalMismatchError(
                    f"{journal.path} is not a {_FORMAT} journal"
                )
            recorded = header.get("config_fingerprint", "")
            if recorded != config_fingerprint:
                raise JournalMismatchError(
                    f"journal {run_id!r} was written by a different "
                    "configuration or output directory; refusing to resume "
                    f"(journal fingerprint {recorded[:12]}…, "
                    f"this run {config_fingerprint[:12]}…)"
                )
            for line in handle:
                if not line.strip():
                    continue
                row = json.loads(line)
                entry = JournalEntry(
                    task=row["task"],
                    artifacts=tuple(row.get("artifacts", ())),
                    seconds=float(row.get("seconds", 0.0)),
                )
                journal.entries[entry.task] = entry
        return journal

    def completed(self) -> frozenset[str]:
        """Names of every task this journal records as finished."""
        return frozenset(self.entries)

    def record(
        self, task: str, artifacts: tuple[str, ...], seconds: float
    ) -> None:
        """Checkpoint one completed task and persist atomically.

        Rewriting the whole file per completion keeps every on-disk
        state a valid journal; at pipeline scale (a few dozen tasks of
        a few hundred bytes each) the rewrite cost is noise.
        """
        self.entries[task] = JournalEntry(
            task=task, artifacts=tuple(artifacts), seconds=seconds
        )
        self._flush()

    def _flush(self) -> None:
        """Atomically rewrite the journal file from in-memory state."""
        header = {
            "format": _FORMAT,
            "run_id": self.run_id,
            "config_fingerprint": self.config_fingerprint,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for name in sorted(self.entries):
            lines.append(json.dumps(self.entries[name].as_dict(), sort_keys=True))
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def discard(self) -> None:
        """Delete the journal file (a run restarted from scratch)."""
        self.path.unlink(missing_ok=True)
        self.entries.clear()
