"""Retry policy: bounded attempts, seeded backoff, per-attempt timeout.

A retry schedule is part of a run's behaviour, so it must be as
deterministic as the artifacts themselves: the backoff delay for
(task, attempt) is derived from the policy seed with the same
CRC-mixing idiom the experiment runners use for stream seeds — never
from a global RNG or the wall clock.  Jitter therefore decorrelates
concurrent retries *across tasks* (different task names yield different
delays) while remaining bit-stable across runs.

The policy also owns *sleeping*: reprolint's ROB002 bans bare
``time.sleep`` retry loops outside this package, so every backoff wait
in the executor goes through :meth:`RetryPolicy.sleep`.
"""

from __future__ import annotations

import dataclasses
import time
import zlib

__all__ = ["RetryPolicy"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How stubbornly to re-run a failing task.

    Attributes:
        max_attempts: Total tries per task (1 = never retry).
        timeout_seconds: Optional per-attempt wall-clock budget; on
            expiry the worker pool is torn down and the attempt counts
            as failed.  ``None`` disables timeouts.  Only enforced for
            pooled execution — an inline attempt cannot be interrupted.
        base_delay: Backoff before the second attempt, in seconds; the
            span doubles per subsequent attempt.
        max_delay: Upper bound on any single backoff span.
        jitter: Fraction of each span that is randomized (0 = fixed
            delays, 1 = anywhere in ``[0, span]``).  The draw is seeded.
        seed: Mixed with the task name and attempt number to derive
            each jittered delay deterministically.
        max_pool_rebuilds: Pool reconstructions (after worker kills or
            timeouts) tolerated before the executor degrades to
            in-process serial execution for the rest of the run.
    """

    max_attempts: int = 3
    timeout_seconds: float | None = None
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    max_pool_rebuilds: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    @classmethod
    def single_shot(cls) -> "RetryPolicy":
        """The pre-resilience contract: one attempt, no timeout."""
        return cls(max_attempts=1, timeout_seconds=None)

    def delay_for(self, task_name: str, attempt: int) -> float:
        """Seconds to back off after ``attempt`` of ``task_name`` failed.

        Exponential span (``base_delay * 2**(attempt-1)``, capped at
        ``max_delay``) with a seeded jitter draw: the low bits of a CRC
        over ``seed:task:attempt`` scale the randomized fraction of the
        span.  Identical inputs always produce the identical delay.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        span = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if span <= 0.0:
            return 0.0
        token = f"{self.seed}:{task_name}:{attempt}".encode()
        unit = zlib.crc32(token) / 0x1_0000_0000  # uniform-ish in [0, 1)
        return span * (1.0 - self.jitter) + span * self.jitter * unit

    def sleep(self, seconds: float) -> None:
        """Back off for ``seconds`` (no-op for non-positive values).

        The single sanctioned sleep call of the retry machinery; tests
        monkeypatch :func:`time.sleep` here to run chaos suites fast.
        """
        if seconds > 0:
            time.sleep(seconds)
