"""Deterministic fault injection for chaos-testing the pipeline.

A fault *plan* is a small textual spec — carried in the ``REPRO_FAULTS``
environment variable (so worker processes inherit it) or passed via
``repro all --inject-faults`` — describing exactly which faults to fire
and when.  Because every directive is keyed on stable coordinates (task
name pattern + attempt number, or cache-key prefix), a plan is fully
deterministic: the same plan against the same run produces the same
faults, which is what lets ``tests/test_resilience_chaos.py`` assert
byte-identical artifacts after recovery.

Spec grammar (directives joined by ``;``, fields by ``,``)::

    op=error,task=figure3,times=2          # raise on attempts 1..2
    op=kill,task=warm:traffic:*,times=1    # worker os._exit on attempt 1
    op=hang,task=table2,times=1,seconds=5  # sleep 5s before running
    op=corrupt,key=*                       # corrupt every published blob
    op=corrupt,key=3fa9,suffix=.npz        # ...or only matching blobs
    op=stall,key=*,seconds=5               # wedge cache reads/writes 5s

``task`` patterns use :func:`fnmatch.fnmatchcase`.  ``times=k`` fires
the fault on attempts 1..k and lets attempt k+1 through — the attempt
number is threaded from the driver, so counting needs no shared state
and survives worker restarts.  ``corrupt`` is stateless by design: it
mangles *every* publish of a matching blob, exercising the cache's
quarantine path on each subsequent read.  ``stall`` is the cache-I/O
analogue of ``hang``: every matching cache read or publish sleeps
before touching the blob, modelling a wedged filesystem or NFS mount —
the attempt timeout, not the cache, must unstick the run.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import os
import time
from pathlib import Path

__all__ = [
    "ENV_FAULTS",
    "FaultDirective",
    "FaultPlan",
    "FaultPlanError",
    "InjectedTaskError",
    "InjectedWorkerKill",
    "active_plan",
    "clear_plan_cache",
]

ENV_FAULTS = "REPRO_FAULTS"

#: Worker processes killed by an injected fault exit with this code.
KILL_EXIT_CODE = 73

_OPS = frozenset({"error", "kill", "hang", "corrupt", "stall"})


class FaultPlanError(ValueError):
    """A fault-plan spec that cannot be parsed."""


class InjectedTaskError(RuntimeError):
    """The exception an ``op=error`` directive raises inside a task."""


class InjectedWorkerKill(RuntimeError):
    """Stand-in for a worker kill when there is no worker to kill.

    Inline (serial) execution cannot ``os._exit`` without taking the
    whole run down, so ``op=kill`` degrades to this exception there —
    same retry accounting, survivable process.
    """


@dataclasses.dataclass(frozen=True)
class FaultDirective:
    """One parsed fault directive.

    Attributes:
        op: ``error`` / ``kill`` / ``hang`` / ``corrupt`` / ``stall``.
        task: fnmatch pattern for task names (task-scoped ops).
        times: Fire on attempts ``1..times`` (task-scoped ops).
        seconds: Sleep duration for ``hang`` and ``stall``.
        key: Cache-key prefix for ``corrupt``/``stall`` (``*`` = every key).
        suffix: Optional blob suffix filter for ``corrupt``/``stall``.
    """

    op: str
    task: str = "*"
    times: int = 1
    seconds: float = 30.0
    key: str = "*"
    suffix: str = ""

    def matches_task(self, task_name: str, attempt: int) -> bool:
        """True when this directive fires for (task, attempt)."""
        if self.op not in ("error", "kill", "hang"):
            return False
        if attempt > self.times:
            return False
        return fnmatch.fnmatchcase(task_name, self.task)

    def matches_blob(self, key: str, path: Path) -> bool:
        """True when this directive corrupts the blob named ``key``."""
        if self.op != "corrupt":
            return False
        return self._matches_key(key, path)

    def matches_cache_io(self, key: str, path: Path) -> bool:
        """True when this directive stalls cache I/O on ``key``."""
        if self.op != "stall":
            return False
        return self._matches_key(key, path)

    def _matches_key(self, key: str, path: Path) -> bool:
        """Shared key-prefix + suffix filter for blob-scoped ops."""
        if self.suffix and path.suffix != self.suffix:
            return False
        return self.key == "*" or key.startswith(self.key)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable set of fault directives."""

    directives: tuple[FaultDirective, ...] = ()
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see module docstring for the grammar)."""
        directives: list[FaultDirective] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            fields: dict[str, str] = {}
            for pair in chunk.split(","):
                if "=" not in pair:
                    raise FaultPlanError(
                        f"malformed fault field {pair!r} in {chunk!r}; "
                        "expected key=value"
                    )
                name, value = pair.split("=", 1)
                fields[name.strip()] = value.strip()
            op = fields.pop("op", "")
            if op not in _OPS:
                raise FaultPlanError(
                    f"unknown fault op {op!r} in {chunk!r}; "
                    f"known: {sorted(_OPS)}"
                )
            try:
                directive = FaultDirective(
                    op=op,
                    task=fields.pop("task", "*"),
                    times=int(fields.pop("times", "1")),
                    seconds=float(fields.pop("seconds", "30")),
                    key=fields.pop("key", "*"),
                    suffix=fields.pop("suffix", ""),
                )
            except ValueError as exc:
                raise FaultPlanError(f"bad fault directive {chunk!r}: {exc}") from exc
            if fields:
                raise FaultPlanError(
                    f"unknown fault field(s) {sorted(fields)} in {chunk!r}"
                )
            if directive.times < 0:
                raise FaultPlanError(f"times must be >= 0 in {chunk!r}")
            directives.append(directive)
        return cls(directives=tuple(directives), spec=spec)

    def apply_task_faults(
        self, task_name: str, attempt: int, in_worker: bool
    ) -> None:
        """Fire any matching task-scoped faults before a task runs.

        ``hang`` sleeps (tripping a configured per-attempt timeout),
        ``error`` raises :class:`InjectedTaskError`, ``kill`` hard-exits
        the worker process (or raises :class:`InjectedWorkerKill`
        inline).  Evaluated in directive order so a plan can compose,
        e.g., a hang on attempt 1 with an error on attempt 2.
        """
        for directive in self.directives:
            if not directive.matches_task(task_name, attempt):
                continue
            if directive.op == "hang":
                time.sleep(directive.seconds)
            elif directive.op == "error":
                raise InjectedTaskError(
                    f"injected failure for task {task_name!r} "
                    f"(attempt {attempt}/{directive.times})"
                )
            elif directive.op == "kill":
                if in_worker:
                    os._exit(KILL_EXIT_CODE)
                raise InjectedWorkerKill(
                    f"injected worker kill for task {task_name!r} "
                    f"(attempt {attempt}, inline execution)"
                )

    def stall_cache_io(self, key: str, path: Path) -> float:
        """Sleep before cache I/O on a matching blob, if planned.

        Stateless like ``corrupt``: *every* matching read or publish
        stalls, modelling a persistently wedged filesystem rather than a
        transient blip.  Returns the total seconds slept (0.0 when no
        directive matched), so callers and tests can account for it.
        """
        slept = 0.0
        for directive in self.directives:
            if directive.matches_cache_io(key, path):
                time.sleep(directive.seconds)
                slept += directive.seconds
        return slept

    def corrupt_blob(self, key: str, path: Path) -> bool:
        """Mangle a just-published cache blob in place, if planned.

        Flips a run of bytes in the middle of the file — enough to break
        the content digest (and usually the format) while keeping the
        file present, which is exactly the failure mode silent-miss bugs
        hide in.  Returns True when corruption was applied.
        """
        if not any(d.matches_blob(key, path) for d in self.directives):
            return False
        data = bytearray(path.read_bytes())
        if not data:
            data = bytearray(b"\xa5")
        start = len(data) // 2
        for offset in range(start, min(start + 8, len(data))):
            data[offset] ^= 0xA5
        path.write_bytes(bytes(data))
        return True


_PARSED: dict[str, FaultPlan] = {}


def active_plan() -> FaultPlan | None:
    """The plan in ``REPRO_FAULTS``, or None when no faults are armed.

    Parsed lazily and memoized per spec string: worker processes read
    the environment they inherited, so driver and workers always agree
    on the plan without any extra plumbing.
    """
    spec = os.environ.get(ENV_FAULTS, "").strip()
    if not spec:
        return None
    if spec not in _PARSED:
        _PARSED[spec] = FaultPlan.parse(spec)
    return _PARSED[spec]


def clear_plan_cache() -> None:
    """Drop memoized plans (tests that mutate ``REPRO_FAULTS``)."""
    _PARSED.clear()
