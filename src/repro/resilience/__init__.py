"""Fault tolerance for pipeline execution (see ``docs/robustness.md``).

Four cooperating pieces:

- :mod:`repro.resilience.policy` — :class:`RetryPolicy`: bounded
  per-task retries with *seeded* exponential backoff + jitter and an
  optional per-attempt timeout, so even the retry schedule is a pure
  function of (seed, task name, attempt);
- :mod:`repro.resilience.journal` — :class:`RunJournal`: an atomically
  rewritten JSON-lines checkpoint of completed tasks, powering
  ``repro all --resume <run-id>``;
- :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (task exceptions, worker kills, hangs, cache-blob
  corruption) driven by a seeded plan in ``REPRO_FAULTS`` /
  ``--inject-faults``;
- failure reporting types consumed by :mod:`repro.perf.executor` and
  merged into the perf report.

The subsystem is a leaf in the DESIGN.md §3 layering DAG: the perf and
pipeline layers build on it, never the reverse, and nothing here may
influence artifact bytes — retries, resumes, and fault plans change
*when* work happens, never *what* it computes.
"""

from repro.resilience.faults import (
    ENV_FAULTS,
    FaultDirective,
    FaultPlan,
    FaultPlanError,
    InjectedTaskError,
    InjectedWorkerKill,
    active_plan,
    clear_plan_cache,
)
from repro.resilience.gc import JournalGCResult, gc_journals
from repro.resilience.journal import (
    ENV_JOURNAL_DIR,
    JOURNAL_FORMAT,
    JournalEntry,
    JournalMismatchError,
    RunJournal,
    derive_run_id,
    resolve_journal_dir,
)
from repro.resilience.policy import RetryPolicy

__all__ = [
    "ENV_FAULTS",
    "ENV_JOURNAL_DIR",
    "FaultDirective",
    "FaultPlan",
    "FaultPlanError",
    "InjectedTaskError",
    "InjectedWorkerKill",
    "JOURNAL_FORMAT",
    "JournalEntry",
    "JournalGCResult",
    "JournalMismatchError",
    "RetryPolicy",
    "RunJournal",
    "active_plan",
    "clear_plan_cache",
    "derive_run_id",
    "gc_journals",
    "resolve_journal_dir",
]
