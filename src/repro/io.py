"""Persistence: save and load corpora and entity databases.

The experiments regenerate everything from seeds, but a downstream user
adopting the library wants to persist an expensive corpus (or a real,
externally-built incidence) and reload it later.  Formats:

- :class:`~repro.core.incidence.BipartiteIncidence` → NumPy ``.npz``
  (arrays verbatim; hosts and entity ids as string arrays).
- :class:`~repro.entities.catalog.EntityDatabase` → JSON lines, one
  entity per line with its keys and payload class noted.

Both roundtrips are exact and covered by tests.

This module also owns the repo-wide **atomic write** helpers.  Every
small on-disk record that must never be observed half-written — perf
reports, ``BENCH_*.json``, resilience run journals, cache blobs — goes
through :func:`atomic_publish` (or the text/bytes conveniences built on
it): the payload lands in a process-unique temp file next to the target
and is published with a single ``os.replace``, so readers see either
the old content or the new, never a torn file.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.incidence import BipartiteIncidence
from repro.entities.books import Book
from repro.entities.business import BusinessListing
from repro.entities.catalog import Entity, EntityDatabase

__all__ = [
    "atomic_publish",
    "atomic_write_bytes",
    "atomic_write_text",
    "load_database",
    "load_incidence",
    "save_database",
    "save_incidence",
]


def atomic_publish(path: str | Path, write: Callable[[Path], None]) -> Path:
    """Write a file atomically: temp file in-place, then ``os.replace``.

    ``write`` receives a process-unique temp path in the target's own
    directory (same filesystem, so the final rename is atomic) and must
    create that file.  The temp name keeps the real suffix (numpy
    appends ``.npz`` to bare paths) and carries a ``.tmp`` marker so
    directory scanners can filter unpublished litter.  A failed write
    never leaves the temp file behind, and concurrent writers racing on
    the same target simply last-write-win.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}{path.suffix}")
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write must not leave litter
            tmp.unlink()
    return path


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text`` (parents created)."""
    return atomic_publish(path, lambda tmp: tmp.write_text(text, encoding=encoding))


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data`` (parents created)."""
    return atomic_publish(path, lambda tmp: tmp.write_bytes(data))

_PAYLOAD_TYPES = {"BusinessListing": BusinessListing, "Book": Book}


def save_incidence(
    incidence: BipartiteIncidence,
    path: str | Path,
    compressed: bool = True,
) -> Path:
    """Write an incidence to ``.npz`` (appends the suffix if missing).

    ``compressed=False`` trades disk for speed — the artifact cache in
    :mod:`repro.perf` uses it because cache blobs are read far more
    often than they are archived.  Both variants round-trip exactly.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {
        "n_entities": np.asarray([incidence.n_entities], dtype=np.int64),
        "site_hosts": np.asarray(incidence.site_hosts, dtype=np.str_),
        "site_ptr": incidence.site_ptr,
        "entity_idx": incidence.entity_idx,
    }
    if incidence.multiplicity is not None:
        payload["multiplicity"] = incidence.multiplicity
    if incidence.entity_ids is not None:
        payload["entity_ids"] = np.asarray(incidence.entity_ids, dtype=np.str_)
    if compressed:
        np.savez_compressed(path, **payload)
    else:
        np.savez(path, **payload)
    return path


def load_incidence(path: str | Path) -> BipartiteIncidence:
    """Load an incidence written by :func:`save_incidence`."""
    with np.load(Path(path), allow_pickle=False) as data:
        multiplicity = data["multiplicity"] if "multiplicity" in data else None
        entity_ids = (
            [str(x) for x in data["entity_ids"]] if "entity_ids" in data else None
        )
        return BipartiteIncidence(
            n_entities=int(data["n_entities"][0]),
            site_hosts=[str(host) for host in data["site_hosts"]],
            site_ptr=data["site_ptr"],
            entity_idx=data["entity_idx"],
            multiplicity=multiplicity,
            entity_ids=entity_ids,
        )


def save_database(database: EntityDatabase, path: str | Path) -> Path:
    """Write an entity database as JSON lines.

    The first line is a header with the domain; each following line is
    one entity with its keys and (when the payload is a known record
    type) the payload fields.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        header = {"format": "repro-entitydb-v1", "domain": database.domain.key}
        handle.write(json.dumps(header) + "\n")
        for entity in database:
            row: dict[str, object] = {
                "entity_id": entity.entity_id,
                "keys": dict(entity.keys),
            }
            payload = entity.payload
            if payload is not None and dataclasses.is_dataclass(payload):
                row["payload_type"] = type(payload).__name__
                row["payload"] = dataclasses.asdict(payload)
            handle.write(json.dumps(row) + "\n")
    return path


def load_database(path: str | Path) -> EntityDatabase:
    """Load a database written by :func:`save_database`."""
    path = Path(path)
    with path.open() as handle:
        header = json.loads(handle.readline())
        if header.get("format") != "repro-entitydb-v1":
            raise ValueError(f"{path} is not a repro entity database")
        domain = header["domain"]
        entities = []
        for line in handle:
            row = json.loads(line)
            payload = None
            payload_type = row.get("payload_type")
            if payload_type:
                cls = _PAYLOAD_TYPES.get(payload_type)
                if cls is None:
                    raise ValueError(f"unknown payload type {payload_type!r}")
                payload = cls(**row["payload"])
            entities.append(
                Entity(
                    entity_id=row["entity_id"],
                    domain_key=domain,
                    keys=row["keys"],
                    payload=payload,
                )
            )
    return EntityDatabase(domain, entities)
