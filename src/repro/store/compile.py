"""`build_store`: compile a manifest's corpora into out-of-core blobs.

The compiler routes every corpus through the *cache-aware* pipeline
builders (:func:`~repro.pipeline.experiments.spread_incidence` /
:func:`~repro.pipeline.experiments.build_traffic_dataset`) — exactly
like the in-RAM index builder — then lowers the read-optimized layout
into cache-addressed artifacts keyed on the manifest identity:

- per pair, individual ``.npy`` blobs (CSR both ways, the dense
  coverage table, host/id string arrays plus their sort orders) that
  the mmap tier opens with ``mmap_mode="r"``.  Individual files, not
  an ``.npz``: ``np.load`` silently ignores ``mmap_mode`` for zip
  members, which would quietly re-inflate the index into RAM;
- per traffic site, one small ``.npz`` bundle of demand-bin arrays;
- one ``.sqlite`` file holding integer-encoded adjacency, size-rank
  encodings, window-function-derived k-coverage ranks, and demand
  bins for the SQL tier;
- one ``meta`` record blob, published **last** so its presence implies
  every other blob was published.

Compilation is idempotent and crash/chaos-safe: each blob is published
atomically with a sha256 sidecar, and the final read-back re-verifies
every digest.  An injected ``op=corrupt`` fault (or real bit rot)
therefore fails the compile loudly — the hot-reload watcher keeps the
previous epoch instead of serving a torn store.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.coverage import k_coverage_curves
from repro.core.incidence import transpose_csr
from repro.core.valueadd import demand_vs_reviews
from repro.perf import fingerprint
from repro.perf.cache import ArtifactCache, active_cache
from repro.store.demand import DemandTable
from repro.store.manifest import Manifest, manifest_identity

__all__ = [
    "STORE_FORMAT",
    "TOP_HOSTS",
    "StoreArtifacts",
    "build_store",
    "store_blob_key",
]

STORE_FORMAT = "repro-store-v2"

#: Hosts advertised per pair (head of the size-ranked order); bounds
#: the /healthz payload at paper scale.  Shared with the RAM tier.
TOP_HOSTS = 50

#: Demand sources every traffic dataset exposes, in table order.
DEMAND_SOURCES = ("search", "browse")

#: ``.npy`` members emitted per pair (plus id members when ids exist).
PAIR_MEMBERS = (
    "site_ptr",
    "entity_idx",
    "entity_ptr",
    "entity_sites",
    "coverage",
    "hosts",
    "hosts_sorted",
    "host_order",
)

PAIR_ID_MEMBERS = ("entity_ids", "ids_sorted", "id_order")

_SCHEMA = """
CREATE TABLE meta(key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE pairs(
    pair_id INTEGER PRIMARY KEY,
    domain TEXT NOT NULL,
    attribute TEXT NOT NULL,
    n_entities INTEGER NOT NULL,
    n_sites INTEGER NOT NULL,
    ks TEXT NOT NULL,
    top_hosts TEXT NOT NULL,
    has_ids INTEGER NOT NULL
);
CREATE TABLE sites(
    pair_id INTEGER NOT NULL,
    site INTEGER NOT NULL,
    host TEXT NOT NULL,
    size INTEGER NOT NULL,
    site_rank INTEGER NOT NULL,
    PRIMARY KEY (pair_id, site)
) WITHOUT ROWID;
CREATE INDEX sites_by_host ON sites(pair_id, host, site);
CREATE TABLE entities(
    pair_id INTEGER NOT NULL,
    entity INTEGER NOT NULL,
    label TEXT NOT NULL,
    PRIMARY KEY (pair_id, entity)
) WITHOUT ROWID;
CREATE INDEX entities_by_label ON entities(pair_id, label, entity);
CREATE TABLE edges(
    pair_id INTEGER NOT NULL,
    site INTEGER NOT NULL,
    pos INTEGER NOT NULL,
    entity INTEGER NOT NULL,
    PRIMARY KEY (pair_id, site, pos)
) WITHOUT ROWID;
CREATE INDEX edges_by_entity ON edges(pair_id, entity, site);
CREATE TABLE kcov(
    pair_id INTEGER NOT NULL,
    k INTEGER NOT NULL,
    first_rank INTEGER NOT NULL
);
CREATE INDEX kcov_by_rank ON kcov(pair_id, k, first_rank);
CREATE TABLE demand_bins(
    site TEXT NOT NULL,
    source TEXT NOT NULL,
    idx INTEGER NOT NULL,
    center REAL NOT NULL,
    mean REAL NOT NULL,
    PRIMARY KEY (site, source, idx)
) WITHOUT ROWID;
CREATE TABLE demand_meta(
    site TEXT PRIMARY KEY,
    sources TEXT NOT NULL,
    max_reviews INTEGER NOT NULL
);
CREATE TABLE ks_seq(k INTEGER PRIMARY KEY);
"""

# The k-th smallest size-rank among each entity's sites: entity e
# counts toward coverage(k, t) iff its k-th mention (in the paper's
# size-ranked site order) sits at rank <= t.  ROW_NUMBER is
# deterministic here because site_rank is a strict permutation.
_KCOV_FILL = """
INSERT INTO kcov(pair_id, k, first_rank)
SELECT pair_id, occ, site_rank FROM (
    SELECT e.pair_id AS pair_id,
           ROW_NUMBER() OVER (
               PARTITION BY e.pair_id, e.entity ORDER BY s.site_rank
           ) AS occ,
           s.site_rank AS site_rank
    FROM edges AS e
    JOIN sites AS s ON s.pair_id = e.pair_id AND s.site = e.site
)
WHERE occ IN (SELECT k FROM ks_seq)
"""


def store_blob_key(identity: str, member: str) -> str:
    """Cache key of one compiled-store blob for an index identity.

    The store format version is part of the key: bumping it orphans
    every old-format blob (they age out of the cache) instead of
    handing a new reader bytes it would misdecode.
    """
    return fingerprint(
        "store-blob", identity=identity, member=member, format=STORE_FORMAT
    )


@dataclass(frozen=True)
class _PairData:
    """Materialized per-pair arrays, staged for publication."""

    domain: str
    attribute: str
    n_entities: int
    n_sites: int
    ks: tuple[int, ...]
    top_hosts: tuple[str, ...]
    arrays: dict[str, np.ndarray] = field(repr=False)
    rank_of: np.ndarray = field(repr=False)
    labels: list[str] | None = field(repr=False)


@dataclass(frozen=True)
class StoreArtifacts:
    """Verified handles to a compiled store's blobs.

    ``demand`` is materialized eagerly (the bundles are a few dozen
    floats); pair blobs stay as paths so the mmap tier can map them
    without reading.
    """

    manifest: Manifest
    identity: str
    meta: dict
    pair_blobs: dict[tuple[str, str], dict[str, Path]]
    demand: dict[str, DemandTable] = field(repr=False)
    sqlite_path: Path


def _save_npy(tmp: Path, array: np.ndarray) -> None:
    # Through a handle: np.save(path) appends ".npy" to suffix-less
    # temp names, which would dodge the atomic rename.
    with open(tmp, "wb") as handle:
        np.save(handle, array)


def _pack_blob(array: np.ndarray) -> np.ndarray:
    """Page-frugal on-disk encoding for a pair blob.

    The mmap tier's resident size is the pages its queries touch, so
    narrower elements are a direct RSS win:

    - unicode arrays (hosts, catalog ids) become fixed-width UTF-8
      bytes — 4x narrower than numpy's UCS-4, and safe for the sorted
      blobs because UTF-8 byte order equals code-point order, so
      ``searchsorted`` against an encoded needle agrees with the
      unicode sort;
    - int64 index/pointer arrays halve to int32 when every value fits
      (they are non-negative entity/site indices and edge offsets).

    ``coverage`` stays float64: narrowing it would change the floats
    the HTTP layer renders and break tier byte-identity.
    """
    if array.dtype.kind == "U":
        return np.char.encode(array, "utf-8")
    if array.dtype.kind == "i" and array.dtype.itemsize > 4:
        if array.size == 0 or int(array.max()) <= np.iinfo(np.int32).max:
            return array.astype(np.int32)
    return array


def _materialize_pair(domain: str, attribute: str, config) -> _PairData:
    """Build one pair's read-optimized arrays (same math as the RAM tier)."""
    # Lazy: this module is imported by serve/indices at worker boot, but
    # compiling a store is a build-time operation; the experiment stack
    # (~11 MB RSS) must not ride along into every worker (IMP001).
    from repro.pipeline.experiments import spread_incidence

    incidence = spread_incidence(domain, attribute, config)
    entity_ptr, entity_sites = transpose_csr(incidence)
    n_sites = incidence.n_sites
    curves = k_coverage_curves(
        incidence,
        ks=config.ks,
        checkpoints=np.arange(1, n_sites + 1, dtype=np.int64),
    )
    ranked = incidence.sites_by_size()
    rank_of = np.empty(n_sites, dtype=np.int64)
    rank_of[ranked] = np.arange(1, n_sites + 1, dtype=np.int64)
    top_hosts = tuple(incidence.site_hosts[int(s)] for s in ranked[:TOP_HOSTS])
    hosts = np.asarray(incidence.site_hosts)
    # Sort by host with ascending index as tie-break, then resolve
    # duplicates with the *last* (largest) index via searchsorted
    # side="right" - 1 — matching the RAM tier's dict-last-wins.
    host_order = np.lexsort((np.arange(n_sites), hosts))
    arrays: dict[str, np.ndarray] = {
        "site_ptr": incidence.site_ptr,
        "entity_idx": incidence.entity_idx,
        "entity_ptr": entity_ptr,
        "entity_sites": entity_sites,
        "coverage": curves.coverage,
        "hosts": hosts,
        "hosts_sorted": hosts[host_order],
        "host_order": host_order.astype(np.int64),
    }
    labels = incidence.entity_ids
    if labels is not None:
        ids = np.asarray(labels)
        id_order = np.lexsort((np.arange(incidence.n_entities), ids))
        arrays["entity_ids"] = ids
        arrays["ids_sorted"] = ids[id_order]
        arrays["id_order"] = id_order.astype(np.int64)
    return _PairData(
        domain=domain,
        attribute=attribute,
        n_entities=incidence.n_entities,
        n_sites=n_sites,
        ks=tuple(int(k) for k in curves.ks),
        top_hosts=top_hosts,
        arrays=arrays,
        rank_of=rank_of,
        labels=list(labels) if labels is not None else None,
    )


def _materialize_demand(site: str, config) -> tuple[dict[str, np.ndarray], int]:
    """Build one traffic site's demand-bin arrays."""
    from repro.pipeline.experiments import build_traffic_dataset  # lazy: see _materialize_pair

    dataset = build_traffic_dataset(site, config)
    arrays: dict[str, np.ndarray] = {}
    for source in DEMAND_SOURCES:
        counts, means = demand_vs_reviews(dataset.demand(source), dataset.reviews)
        arrays[f"{source}_counts"] = counts
        arrays[f"{source}_means"] = means
    max_reviews = int(dataset.reviews.max()) if len(dataset.reviews) else 0
    return arrays, max_reviews


def _write_sqlite(
    tmp: Path, pairs: list[_PairData], demand_meta: dict, demand_arrays: dict
) -> None:
    """Write the full SQL tier into ``tmp`` (published atomically after)."""
    conn = sqlite3.connect(tmp)
    try:
        conn.execute("PRAGMA journal_mode=OFF")
        conn.execute("PRAGMA synchronous=OFF")
        conn.executescript(_SCHEMA)
        conn.executemany(
            "INSERT INTO meta(key, value) VALUES (?, ?)",
            [("format", STORE_FORMAT)],
        )
        ks: tuple[int, ...] = ()
        for pair_id, data in enumerate(pairs):
            ks = data.ks  # one config => identical ks across pairs
            conn.execute(
                "INSERT INTO pairs(pair_id, domain, attribute, n_entities,"
                " n_sites, ks, top_hosts, has_ids)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    pair_id,
                    data.domain,
                    data.attribute,
                    data.n_entities,
                    data.n_sites,
                    json.dumps(list(data.ks)),
                    json.dumps(list(data.top_hosts)),
                    int(data.labels is not None),
                ),
            )
            site_ptr = data.arrays["site_ptr"]
            sizes = np.diff(site_ptr)
            hosts = data.arrays["hosts"]
            conn.executemany(
                "INSERT INTO sites(pair_id, site, host, size, site_rank)"
                " VALUES (?, ?, ?, ?, ?)",
                zip(
                    (pair_id,) * data.n_sites,
                    range(data.n_sites),
                    (str(h) for h in hosts),
                    sizes.tolist(),
                    data.rank_of.tolist(),
                ),
            )
            if data.labels is not None:
                conn.executemany(
                    "INSERT INTO entities(pair_id, entity, label)"
                    " VALUES (?, ?, ?)",
                    zip(
                        (pair_id,) * data.n_entities,
                        range(data.n_entities),
                        data.labels,
                    ),
                )
            entity_idx = data.arrays["entity_idx"]
            n_edges = len(entity_idx)
            site_per_edge = np.repeat(
                np.arange(data.n_sites, dtype=np.int64), sizes
            )
            pos_per_edge = np.arange(n_edges, dtype=np.int64) - np.repeat(
                site_ptr[:-1], sizes
            )
            conn.executemany(
                "INSERT INTO edges(pair_id, site, pos, entity)"
                " VALUES (?, ?, ?, ?)",
                zip(
                    (pair_id,) * n_edges,
                    site_per_edge.tolist(),
                    pos_per_edge.tolist(),
                    entity_idx.tolist(),
                ),
            )
        conn.executemany(
            "INSERT INTO ks_seq(k) VALUES (?)", [(int(k),) for k in ks]
        )
        conn.execute(_KCOV_FILL)
        for site, payload in demand_meta.items():
            conn.execute(
                "INSERT INTO demand_meta(site, sources, max_reviews)"
                " VALUES (?, ?, ?)",
                (site, json.dumps(payload["sources"]), payload["max_reviews"]),
            )
            arrays = demand_arrays[site]
            for source in payload["sources"]:
                counts = arrays[f"{source}_counts"]
                means = arrays[f"{source}_means"]
                conn.executemany(
                    "INSERT INTO demand_bins(site, source, idx, center, mean)"
                    " VALUES (?, ?, ?, ?, ?)",
                    zip(
                        (site,) * len(counts),
                        (source,) * len(counts),
                        range(len(counts)),
                        counts.tolist(),
                        means.tolist(),
                    ),
                )
        conn.commit()
    finally:
        conn.close()


def _pair_member_names(has_ids: bool) -> tuple[str, ...]:
    return PAIR_MEMBERS + (PAIR_ID_MEMBERS if has_ids else ())


def _open_existing(
    manifest: Manifest, cache: ArtifactCache, identity: str, meta: dict
) -> StoreArtifacts | None:
    """Resolve (and digest-verify) every blob; None if any is missing."""
    pair_blobs: dict[tuple[str, str], dict[str, Path]] = {}
    for row in meta["pairs"]:
        domain, attribute = row["domain"], row["attribute"]
        blobs: dict[str, Path] = {}
        for name in _pair_member_names(bool(row["has_ids"])):
            key = store_blob_key(identity, f"pair/{domain}/{attribute}/{name}")
            path = cache.get_file(key, ".npy")
            if path is None:
                return None
            blobs[name] = path
        pair_blobs[(domain, attribute)] = blobs
    demand: dict[str, DemandTable] = {}
    for row in meta["demand"]:
        site = row["site"]
        arrays = cache.get_arrays(store_blob_key(identity, f"demand/{site}"))
        if arrays is None:
            return None
        demand[site] = DemandTable(
            site=site,
            sources={
                source: (arrays[f"{source}_counts"], arrays[f"{source}_means"])
                for source in row["sources"]
            },
            max_reviews=int(row["max_reviews"]),
        )
    sqlite_path = cache.get_file(store_blob_key(identity, "sqlite"), ".sqlite")
    if sqlite_path is None:
        return None
    return StoreArtifacts(
        manifest=manifest,
        identity=identity,
        meta=meta,
        pair_blobs=pair_blobs,
        demand=demand,
        sqlite_path=sqlite_path,
    )


def build_store(
    manifest: Manifest, cache: ArtifactCache | None = None
) -> StoreArtifacts:
    """Compile (or reopen) the out-of-core store for a manifest.

    Idempotent per blob: against a warm cache this verifies digests and
    returns paths; against a cold (or partially quarantined) cache it
    regenerates exactly the missing blobs from the pipeline builders.

    Raises:
        RuntimeError: No artifact cache is configured, or freshly
            published blobs failed digest verification (e.g. an
            injected corruption fault) — never returns a torn store.
    """
    cache = cache if cache is not None else active_cache()
    if cache is None:
        raise RuntimeError(
            "out-of-core store backends need an artifact cache; "
            "configure one (drop --no-cache) or pass cache= explicitly"
        )
    identity = manifest_identity(manifest)
    meta_key = store_blob_key(identity, "meta")
    rows = cache.get_records(meta_key)
    if rows:
        existing = _open_existing(manifest, cache, identity, rows[0])
        if existing is not None:
            return existing

    config = manifest.config
    pairs = [
        _materialize_pair(domain, attribute, config)
        for domain, attribute in manifest.spread_pairs
    ]
    demand_arrays: dict[str, dict[str, np.ndarray]] = {}
    demand_meta: dict[str, dict] = {}
    for site in manifest.traffic_sites:
        arrays, max_reviews = _materialize_demand(site, config)
        demand_arrays[site] = arrays
        demand_meta[site] = {
            "site": site,
            "sources": list(DEMAND_SOURCES),
            "max_reviews": max_reviews,
        }

    for data in pairs:
        for name, array in data.arrays.items():
            key = store_blob_key(
                identity, f"pair/{data.domain}/{data.attribute}/{name}"
            )
            if cache.get_file(key, ".npy") is None:
                cache.put_file(
                    key,
                    ".npy",
                    lambda tmp, arr=_pack_blob(array): _save_npy(tmp, arr),
                )
    for site, arrays in demand_arrays.items():
        key = store_blob_key(identity, f"demand/{site}")
        if cache.get_arrays(key) is None:
            cache.put_arrays(key, arrays)
    sqlite_key = store_blob_key(identity, "sqlite")
    if cache.get_file(sqlite_key, ".sqlite") is None:
        cache.put_file(
            sqlite_key,
            ".sqlite",
            lambda tmp: _write_sqlite(tmp, pairs, demand_meta, demand_arrays),
        )

    meta = {
        "format": STORE_FORMAT,
        "identity": identity,
        "pairs": [
            {
                "domain": data.domain,
                "attribute": data.attribute,
                "n_entities": data.n_entities,
                "n_sites": data.n_sites,
                "ks": list(data.ks),
                "top_hosts": list(data.top_hosts),
                "has_ids": data.labels is not None,
            }
            for data in pairs
        ],
        "demand": list(demand_meta.values()),
    }
    # Meta goes last: its presence implies every blob above was
    # published.  The read-back below re-verifies every digest so a
    # corrupted publish fails the compile instead of serving torn data.
    cache.put_records(meta_key, [meta])
    compiled = _open_existing(manifest, cache, identity, meta)
    if compiled is None:
        raise RuntimeError(
            f"store compile for identity {identity} failed read-back "
            "verification (blobs quarantined); refusing to serve a torn store"
        )
    return compiled
