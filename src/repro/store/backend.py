"""Backend protocol, tier selection, and shared query-index runtime.

``repro.store`` puts three interchangeable storage tiers behind the
serving contract:

``ram``
    The classic in-memory CSR index built by
    :func:`repro.serve.indices.build_index` — fastest, but resident
    size grows linearly with the corpus.
``mmap``
    The same CSR arrays compiled to individual ``.npy`` blobs and
    opened with ``np.load(..., mmap_mode="r")``, so the OS pages
    adjacency in on demand and cold rows cost no RSS.
``sqlite``
    Adjacency, k-coverage ranks, and demand bins pushed into a single
    SQLite file over integer-encoded entities/sites with covering
    indices; queries run in SQL.

Every tier exposes the same duck type (:class:`StorageBackend` /
:class:`PairBackend`) and must render **byte-identical** ``/v1/*``
responses — including error-message strings, which the HTTP layer
embeds in 400/404 bodies.  The shared helpers here (`coverage_row`,
`check_top_t`, `run_set_cover`) exist so those strings and float
paths have exactly one spelling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.setcover import greedy_set_cover
from repro.pipeline.config import ExperimentConfig
from repro.store.demand import DemandTable
from repro.store.manifest import Manifest, manifest_identity

__all__ = [
    "BACKENDS",
    "CsrView",
    "PairBackend",
    "QueryIndex",
    "RAM_MAX_ENTITIES",
    "StorageBackend",
    "check_top_t",
    "choose_backend",
    "coverage_row",
    "open_backend",
    "run_set_cover",
]

#: Accepted ``--backend`` values (``auto`` resolves per manifest size).
BACKENDS = ("auto", "ram", "mmap", "sqlite")

#: ``auto`` keeps corpora at or below this many total entities in RAM.
RAM_MAX_ENTITIES = 50_000

#: ``auto`` upgrades mmap to sqlite above this many total entities.
MMAP_MAX_ENTITIES = 5_000_000


@runtime_checkable
class PairBackend(Protocol):
    """Per-(domain, attribute) query surface the HTTP handlers consume."""

    domain: str
    attribute: str

    @property
    def n_entities(self) -> int:
        """Entity-database size (coverage denominator)."""
        ...

    @property
    def n_sites(self) -> int:
        """Number of sites in this corpus."""
        ...

    def resolve_entity(self, entity_id: str) -> int | None:
        """Catalog id (or bare index string) → entity index, or None."""
        ...

    def entity_label(self, entity: int) -> str:
        """Catalog id for an entity index (falls back to the index)."""
        ...

    def entity_labels(self, entities: Any) -> list[str]:
        """Labels for an iterable of entity indices, in input order.

        Must render exactly ``[entity_label(e) for e in entities]`` —
        it exists so out-of-core tiers can batch the lookups instead
        of paying one query per row.
        """
        ...

    def sites_of_entity(self, entity: int) -> np.ndarray:
        """Site indices mentioning ``entity`` (ascending)."""
        ...

    def entities_on_site(self, site: int) -> np.ndarray:
        """Entity indices mentioned by site ``site`` (row order)."""
        ...

    def site_page(self, site: int, offset: int, count: int) -> tuple[int, Any]:
        """``(total, entities[offset:offset + count])`` for one site.

        Semantically ``(len(row), row[offset:offset + count])`` over
        ``entities_on_site`` — the paged spelling lets out-of-core
        tiers fetch only the page instead of the whole listing.
        """
        ...

    def entity_site_hosts(self, entity: int) -> list[str]:
        """Hosts of ``sites_of_entity(entity)``, in the same order.

        Must equal ``site_hosts(sites_of_entity(entity))``; the fused
        spelling lets the SQL tier answer with one join.
        """
        ...

    def site_host(self, site: int) -> str:
        """Host name for a site index."""
        ...

    def site_hosts(self, sites: Any) -> list[str]:
        """Hosts for an iterable of site indices, in input order.

        Must render exactly ``[site_host(s) for s in sites]``; the
        batched spelling lets the SQL tier answer a whole listing in
        a handful of constant-statement queries.
        """
        ...

    def site_of_host(self, host: str) -> int | None:
        """Site index for a host name, or None when unknown."""
        ...

    def coverage_at(self, k: int, top_t: int) -> float:
        """k-coverage of the top-``top_t`` sites (KeyError/ValueError)."""
        ...

    def set_cover(self, budget: int) -> dict[str, object]:
        """Bounded greedy set cover (selected hosts, gains, coverage)."""
        ...


@runtime_checkable
class StorageBackend(Protocol):
    """Index-level surface: what `ServeApp` holds per epoch."""

    config: ExperimentConfig
    identity: str
    build_seconds: float
    backend: str

    def resolve_pair(self, domain: str, attribute: str | None) -> Any:
        """(domain, attribute or domain default) → pair backend."""
        ...

    def summary(self) -> dict[str, object]:
        """The byte-stable ``/healthz`` payload."""
        ...


@dataclass(frozen=True)
class QueryIndex:
    """Everything the server holds per epoch: pairs, demand, identity.

    The concrete index type for *all* tiers (``repro.serve`` aliases it
    as ``ServeIndex``): only the pair/demand objects inside differ per
    backend.  ``summary()`` deliberately omits the backend name — the
    ``/healthz`` payload is part of the byte-identity contract.
    """

    config: ExperimentConfig
    pairs: dict[tuple[str, str], Any] = field(repr=False)
    default_attribute: dict[str, str]
    demand: dict[str, Any] = field(repr=False)
    identity: str
    build_seconds: float
    backend: str = "ram"

    def resolve_pair(self, domain: str, attribute: str | None) -> Any:
        """Find the index for a domain, defaulting to its first attribute."""
        if attribute is None:
            attribute = self.default_attribute.get(domain)
            if attribute is None:
                return None
        return self.pairs.get((domain, attribute))

    def summary(self) -> dict[str, object]:
        """The `/healthz` payload: enough shape for a load generator."""
        return {
            "status": "ok",
            "scale": self.config.scale,
            "seed": self.config.seed,
            "index_fingerprint": self.identity,
            "pairs": [
                {
                    "domain": pair.domain,
                    "attribute": pair.attribute,
                    "n_entities": pair.n_entities,
                    "n_sites": pair.n_sites,
                    "ks": list(pair.coverage_ks),
                    "top_hosts": list(pair.top_hosts),
                }
                for pair in (
                    self.pairs[key] for key in sorted(self.pairs)
                )
            ],
            "traffic_sites": sorted(self.demand),
        }


class CsrView:
    """Duck-typed CSR-by-site adjacency for :func:`greedy_set_cover`.

    Wraps bare ``(site_ptr, entity_idx)`` arrays — in-RAM or memory
    mapped — in the four attributes the lazy greedy loop reads, so the
    out-of-core tiers reuse the core algorithm verbatim instead of
    re-implementing its tie-breaking.
    """

    __slots__ = ("n_entities", "site_ptr", "entity_idx")

    def __init__(
        self, n_entities: int, site_ptr: np.ndarray, entity_idx: np.ndarray
    ) -> None:
        self.n_entities = int(n_entities)
        self.site_ptr = site_ptr
        self.entity_idx = entity_idx

    @property
    def n_sites(self) -> int:
        """Number of sites (CSR rows)."""
        return len(self.site_ptr) - 1

    def site_sizes(self) -> np.ndarray:
        """Entities-per-site counts, ``int64[n_sites]``."""
        return np.diff(self.site_ptr)

    def site_entities(self, site: int) -> np.ndarray:
        """Entity indices mentioned by ``site``."""
        return self.entity_idx[self.site_ptr[site] : self.site_ptr[site + 1]]


def coverage_row(coverage_ks: tuple[int, ...], k: int) -> int:
    """Row of ``k`` in the precomputed coverage table.

    Raises:
        KeyError: ``k`` was not precomputed (outside the config ks).
    """
    try:
        return coverage_ks.index(int(k))
    except ValueError:
        raise KeyError(
            f"k={k} not precomputed; available: {coverage_ks}"
        ) from None


def check_top_t(top_t: int, n_sites: int) -> None:
    """Validate a coverage prefix length.

    Raises:
        ValueError: ``top_t`` outside ``[1, n_sites]``.
    """
    if not 1 <= top_t <= n_sites:
        raise ValueError(f"t must be in [1, {n_sites}], got {top_t}")


def run_set_cover(
    view: Any, host_of: Callable[[int], str], budget: int
) -> dict[str, object]:
    """Bounded greedy set cover rendered as the ``/v1/setcover`` payload.

    ``view`` is anything :func:`greedy_set_cover` accepts (a
    ``BipartiteIncidence`` or a :class:`CsrView`); ``host_of`` maps a
    selected site index to its host string.  One shared body keeps the
    selection order, gain integers, and rounded coverage fraction
    bit-identical across tiers.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    order, gains = greedy_set_cover(view, max_sites=budget)
    denominator = max(view.n_entities, 1)
    return {
        "budget": int(budget),
        "selected": [host_of(int(s)) for s in order],
        "gains": [int(g) for g in gains],
        "coverage": round(float(gains.sum()) / denominator, 6),
    }


def choose_backend(manifest: Manifest) -> str:
    """Resolve ``auto`` to a tier from the manifest's corpus size.

    The decision keys on *total* entities across spread pairs (the
    dominant term in resident index size).  Small corpora stay in RAM,
    mid-size ones mmap their CSR blobs, and anything beyond
    ``MMAP_MAX_ENTITIES`` pushes queries into SQLite.
    """
    per_pair = manifest.config.scale_preset.n_entities
    total = per_pair * max(1, len(manifest.spread_pairs))
    if total <= RAM_MAX_ENTITIES:
        return "ram"
    if total <= MMAP_MAX_ENTITIES:
        return "mmap"
    return "sqlite"


def open_backend(
    manifest: Manifest, backend: str, cache: Any = None
) -> QueryIndex:
    """Open an out-of-core backend, compiling the store if needed.

    ``backend`` must be ``"mmap"`` or ``"sqlite"`` (``ram`` is built by
    :func:`repro.serve.indices.build_index`, which owns the pipeline
    builders).  Compilation is idempotent: against a warm artifact
    cache this is pure open, against a cold one :func:`build_store`
    regenerates the blobs first.
    """
    from repro.store.compile import build_store
    from repro.store.mmapcsr import open_mmap_pairs
    from repro.store.sql import open_sqlite_pairs

    if backend not in ("mmap", "sqlite"):
        raise ValueError(f"unknown out-of-core backend {backend!r}")
    started = time.perf_counter()
    artifacts = build_store(manifest, cache=cache)
    if backend == "mmap":
        pairs, demand = open_mmap_pairs(artifacts)
    else:
        pairs, demand = open_sqlite_pairs(artifacts)
    default_attribute: dict[str, str] = {}
    for domain, attribute in manifest.spread_pairs:
        default_attribute.setdefault(domain, attribute)
    return QueryIndex(
        config=manifest.config,
        pairs=pairs,
        default_attribute=default_attribute,
        demand=demand,
        identity=manifest_identity(manifest),
        build_seconds=time.perf_counter() - started,
        backend=backend,
    )
