"""Figure-7 demand lookup tables, shared by every storage backend.

The serve tier answers ``/v1/demand`` from a binned demand-vs-reviews
curve per traffic site.  The table itself is tiny (a dozen bins), so
the RAM and mmap backends hold it as two aligned float64 arrays; the
SQLite backend re-implements the same nearest-occupied-bin lookup in
SQL (:class:`repro.store.sql.SqliteDemandTable`).  Both paths must
produce byte-identical response payloads, so the reference semantics
live here: nearest bin by absolute distance, first index winning ties
(``np.argmin``), mean rounded to six digits at lookup time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.valueadd import log2_review_bins

__all__ = ["DemandTable", "query_bin_center"]


def query_bin_center(n_reviews: int) -> float:
    """The paper's log2 bin center for a review count (shared by tiers)."""
    bins, centers = log2_review_bins(np.asarray([n_reviews]))
    return float(centers[bins[0]])


@dataclass(frozen=True)
class DemandTable:
    """Figure-7 lookup: normalized demand per log2 review-count bin."""

    site: str
    sources: dict[str, tuple[np.ndarray, np.ndarray]] = field(repr=False)
    max_reviews: int

    def lookup(self, source: str, n_reviews: int) -> dict[str, float]:
        """Demand estimate for an entity with ``n_reviews`` reviews.

        Bins the query with the paper's log2 grouping and returns the
        nearest *occupied* bin's mean demand (z-score normalized).

        Raises:
            KeyError: Unknown demand source.
            ValueError: Negative review count.
        """
        if source not in self.sources:
            raise KeyError(f"unknown source {source!r}; have {sorted(self.sources)}")
        if n_reviews < 0:
            raise ValueError("n_reviews must be non-negative")
        counts, means = self.sources[source]
        center = query_bin_center(n_reviews)
        nearest = int(np.argmin(np.abs(counts - center)))
        return {
            "bin_center": float(counts[nearest]),
            "mean_normalized_demand": round(float(means[nearest]), 6),
        }
