"""Run manifests: the handle every storage backend opens.

A manifest (``manifest.json``, written by
:func:`repro.pipeline.runall.write_manifest`) records the experiment
config and corpus inventory of a completed ``repro all`` run.  It is
the *input* to every query backend — the in-RAM index builder in
:mod:`repro.serve.indices` as well as the out-of-core compiler in
:mod:`repro.store.compile` — so it lives here, below the HTTP tier in
the layer DAG.  :mod:`repro.serve.indices` re-exports these names for
compatibility with existing callers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.perf import fingerprint
from repro.pipeline.config import MANIFEST_FORMAT, MANIFEST_NAME, ExperimentConfig

__all__ = ["Manifest", "load_manifest", "manifest_identity"]


@dataclass(frozen=True)
class Manifest:
    """Parsed ``manifest.json``: the config and shape of a finished run."""

    config: ExperimentConfig
    spread_pairs: tuple[tuple[str, str], ...]
    traffic_sites: tuple[str, ...]
    artifacts: tuple[str, ...]


def load_manifest(path: str | Path) -> Manifest:
    """Load a run manifest from a file or a run output directory.

    Raises:
        FileNotFoundError: No manifest exists (the run never completed).
        ValueError: The file is not a ``repro-manifest-v1`` document.
    """
    location = Path(path)
    if location.is_dir():
        location = location / MANIFEST_NAME
    payload = json.loads(location.read_text())
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{location}: expected format {MANIFEST_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    raw = payload["config"]
    config = ExperimentConfig(
        scale=raw["scale"],
        seed=raw["seed"],
        ks=tuple(raw["ks"]),
        max_bfs=raw["max_bfs"],
        traffic_entities=raw["traffic_entities"],
        traffic_events=raw["traffic_events"],
        traffic_cookies=raw["traffic_cookies"],
    )
    return Manifest(
        config=config,
        spread_pairs=tuple(
            (str(domain), str(attribute))
            for domain, attribute in payload["spread_pairs"]
        ),
        traffic_sites=tuple(payload["traffic_sites"]),
        artifacts=tuple(payload.get("artifacts", ())),
    )


def manifest_identity(manifest: Manifest) -> str:
    """The index fingerprint a manifest would build to, without building.

    This is exactly the ``identity`` every backend assigns — a pure
    function of the config and corpus inventory — so a hot-reload
    watcher can decide whether a rewritten ``manifest.json`` actually
    changes the serving index before paying for a rebuild, and the
    response cache can key on it regardless of which backend answered.
    """
    return fingerprint(
        "serve-index",
        config=manifest.config,
        pairs=[list(pair) for pair in manifest.spread_pairs],
        traffic_sites=list(manifest.traffic_sites),
    )
