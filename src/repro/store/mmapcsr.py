"""Memory-mapped CSR pair backend.

Opens the compiler's per-pair ``.npy`` blobs with
``np.load(..., mmap_mode="r")``: the process maps the files and the OS
pages adjacency rows in on demand, so resident size tracks the working
set instead of the corpus.  String resolution (host → site, catalog id
→ entity) binary-searches pre-sorted string blobs via
``np.searchsorted`` — O(log n) page touches instead of a resident hash
map — with ``side="right" - 1`` picking the largest index among
duplicates, exactly matching the RAM tier's dict-last-wins semantics.

Every numeric path reuses the same shared code as the RAM tier
(:func:`~repro.core.setcover.greedy_set_cover` through
:class:`~repro.store.backend.CsrView`, the dense coverage table, the
:class:`~repro.store.demand.DemandTable` lookup), so responses are
byte-identical by construction.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.store.backend import CsrView, check_top_t, coverage_row, run_set_cover
from repro.store.compile import StoreArtifacts

__all__ = ["MmapPair", "open_mmap_pairs"]


def _advise_random(array: np.ndarray) -> np.ndarray:
    """Hint ``MADV_RANDOM`` on a memory-mapped array's pages.

    Point lookups fault single pages, but the kernel's default
    readahead pulls a ~128 KB window per fault — which quietly pages
    most of a blob in under a random-access load and defeats the
    tier's RSS story.  ``MADV_RANDOM`` turns that off.  No-op on
    platforms without ``madvise`` (or non-mmap arrays).
    """
    mapping = getattr(array, "_mmap", None)
    advise = getattr(mapping, "madvise", None)
    if advise is not None and hasattr(mmap, "MADV_RANDOM"):
        advise(mmap.MADV_RANDOM)
    return array


def _drop_page_cache(path: str | os.PathLike) -> None:
    """Evict a freshly mapped blob's page cache (``POSIX_FADV_DONTNEED``).

    Opening a store verifies every blob digest with a streaming read,
    which leaves the whole file in the page cache; each later mmap
    fault then maps a window of neighbouring *already-cached* pages
    ("fault-around"), quietly making entire blobs resident.
    ``MADV_RANDOM`` can't prevent that — it disables readahead IO, not
    the mapping of cached pages — so evict the cache once at open time
    and let the query load fault in only the pages it touches.  No-op
    where ``posix_fadvise`` is unavailable.
    """
    if not hasattr(os, "posix_fadvise"):
        return
    fd = os.open(path, os.O_RDONLY)
    try:
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(fd)


def _text(value: Any) -> str:
    """Render a blob element as text (UTF-8 bytes or unicode)."""
    if isinstance(value, bytes):
        return value.decode("utf-8")
    return str(value)


def _searchsorted_last(sorted_values: np.ndarray, needle: str) -> int:
    """Index of the last occurrence of ``needle``, or -1 when absent.

    String blobs are stored as fixed-width UTF-8 bytes (see
    ``compile._pack_blob``); UTF-8 byte order equals code-point order,
    so searching with the encoded needle agrees with the unicode sort
    that produced the blob.
    """
    key: str | bytes = needle
    if sorted_values.dtype.kind == "S":
        key = needle.encode("utf-8")
    pos = int(np.searchsorted(sorted_values, key, side="right")) - 1
    if pos >= 0 and sorted_values[pos] == key:
        return pos
    return -1


@dataclass(frozen=True)
class MmapPair:
    """One (domain, attribute) corpus served from memory-mapped blobs."""

    domain: str
    attribute: str
    coverage_ks: tuple[int, ...]
    top_hosts: tuple[str, ...]
    site_ptr: np.ndarray = field(repr=False)
    entity_idx: np.ndarray = field(repr=False)
    entity_ptr: np.ndarray = field(repr=False)
    entity_sites: np.ndarray = field(repr=False)
    coverage: np.ndarray = field(repr=False)
    hosts: np.ndarray = field(repr=False)
    hosts_sorted: np.ndarray = field(repr=False)
    host_order: np.ndarray = field(repr=False)
    entity_ids: np.ndarray | None = field(repr=False)
    ids_sorted: np.ndarray | None = field(repr=False)
    id_order: np.ndarray | None = field(repr=False)

    @property
    def n_entities(self) -> int:
        """Entity-database size (coverage denominator)."""
        return len(self.entity_ptr) - 1

    @property
    def n_sites(self) -> int:
        """Number of sites in this corpus."""
        return len(self.site_ptr) - 1

    def resolve_entity(self, entity_id: str) -> int | None:
        """Map a catalog id (or bare index string) to an entity index."""
        if self.ids_sorted is not None:
            pos = _searchsorted_last(self.ids_sorted, entity_id)
            if pos >= 0:
                return int(self.id_order[pos])
        if entity_id.isdigit():
            index = int(entity_id)
            if 0 <= index < self.n_entities:
                return index
        return None

    def entity_label(self, entity: int) -> str:
        """Catalog id for an entity index (falls back to the index)."""
        if self.entity_ids is not None:
            return _text(self.entity_ids[entity])
        return str(entity)

    def entity_labels(self, entities) -> list[str]:
        """Labels for an iterable of entity indices, in input order."""
        if self.entity_ids is not None:
            return [_text(self.entity_ids[int(e)]) for e in entities]
        return [str(int(e)) for e in entities]

    def sites_of_entity(self, entity: int) -> np.ndarray:
        """Site indices mentioning ``entity`` (ascending)."""
        return self.entity_sites[
            self.entity_ptr[entity] : self.entity_ptr[entity + 1]
        ]

    def entities_on_site(self, site: int) -> np.ndarray:
        """Entity indices mentioned by site ``site``."""
        return self.entity_idx[self.site_ptr[site] : self.site_ptr[site + 1]]

    def site_page(self, site: int, offset: int, count: int):
        """``(total, page)`` slice of a site's listing.

        Slicing the memmap view is lazy, so only the page's rows are
        actually faulted in — the whole point of this tier.
        """
        begin = int(self.site_ptr[site])
        end = int(self.site_ptr[site + 1])
        total = end - begin
        page = self.entity_idx[begin + offset : min(begin + offset + count, end)]
        return total, page

    def entity_site_hosts(self, entity: int) -> list[str]:
        """Hosts of an entity's sites, in ascending site order."""
        return self.site_hosts(self.sites_of_entity(entity))

    def site_host(self, site: int) -> str:
        """Host name for a site index."""
        return _text(self.hosts[site])

    def site_hosts(self, sites) -> list[str]:
        """Hosts for an iterable of site indices, in input order."""
        return [_text(self.hosts[int(s)]) for s in sites]

    def site_of_host(self, host: str) -> int | None:
        """Site index for a host name, or None when unknown."""
        pos = _searchsorted_last(self.hosts_sorted, host)
        if pos < 0:
            return None
        return int(self.host_order[pos])

    def coverage_at(self, k: int, top_t: int) -> float:
        """k-coverage of the top-``top_t`` sites, from the mapped table.

        Raises:
            KeyError: ``k`` was not precomputed (outside the config ks).
            ValueError: ``top_t`` outside ``[1, n_sites]``.
        """
        row = coverage_row(self.coverage_ks, k)
        check_top_t(top_t, self.n_sites)
        return float(self.coverage[row, top_t - 1])

    def set_cover(self, budget: int) -> dict[str, object]:
        """Bounded greedy set cover over the mapped CSR."""
        view = CsrView(self.n_entities, self.site_ptr, self.entity_idx)
        return run_set_cover(view, self.site_host, budget)


def open_mmap_pairs(
    artifacts: StoreArtifacts,
) -> tuple[dict[tuple[str, str], MmapPair], dict[str, Any]]:
    """Map every pair blob of a compiled store; demand rides along."""
    pairs: dict[tuple[str, str], MmapPair] = {}
    for row in artifacts.meta["pairs"]:
        domain, attribute = row["domain"], row["attribute"]
        blobs = artifacts.pair_blobs[(domain, attribute)]

        def mapped(name: str, blobs=blobs) -> np.ndarray:
            array = _advise_random(
                np.load(blobs[name], mmap_mode="r", allow_pickle=False)
            )
            _drop_page_cache(blobs[name])
            return array

        has_ids = bool(row["has_ids"])
        pairs[(domain, attribute)] = MmapPair(
            domain=domain,
            attribute=attribute,
            coverage_ks=tuple(int(k) for k in row["ks"]),
            top_hosts=tuple(row["top_hosts"]),
            site_ptr=mapped("site_ptr"),
            entity_idx=mapped("entity_idx"),
            entity_ptr=mapped("entity_ptr"),
            entity_sites=mapped("entity_sites"),
            coverage=mapped("coverage"),
            hosts=mapped("hosts"),
            hosts_sorted=mapped("hosts_sorted"),
            host_order=mapped("host_order"),
            entity_ids=mapped("entity_ids") if has_ids else None,
            ids_sorted=mapped("ids_sorted") if has_ids else None,
            id_order=mapped("id_order") if has_ids else None,
        )
    return pairs, dict(artifacts.demand)
