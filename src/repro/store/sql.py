"""SQLite pair backend: adjacency and coverage queries pushed into SQL.

The compiled store (:mod:`repro.store.compile`) integer-encodes
entities and sites, stores the paper's size-rank order per site, and
pre-derives ``kcov`` rows — the rank of each entity's k-th mention —
with a window-function query.  At query time everything is covered
index lookups:

- entity → sites and site → entities walk ``edges`` through its two
  covering indices (insertion order preserved via the ``pos`` column,
  so pagination cursors match the RAM CSR byte-for-byte);
- coverage-at-k is a single ``COUNT(*)`` over ``kcov`` divided by the
  entity denominator in Python (int/int → float64, bit-identical to
  the precomputed dense table);
- greedy set cover reuses the core lazy-heap algorithm with per-site
  adjacency fetched from SQL on demand;
- demand lookups order occupied bins by absolute distance in SQL with
  the array index as tie-break, matching ``np.argmin``.

Connections are opened lazily per thread *and* per process (read-only
URI mode), so the query pool's worker threads and the sharding tier's
forked workers never share a handle.  Every statement is a constant
string with ``?`` placeholders — enforced by reprolint rule STORE001.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.store.backend import check_top_t, coverage_row, run_set_cover
from repro.store.compile import StoreArtifacts
from repro.store.demand import query_bin_center

__all__ = ["SqlitePair", "SqliteDemandTable", "SqliteStore", "open_sqlite_pairs"]

#: Fixed fan-in for batched label/host lookups.  STORE001 demands
#: constant statements, so the ``IN`` list carries a fixed placeholder
#: count and short batches pad by repeating their first index.
_BATCH = 64

_IN_BATCH = "(" + ",".join(["?"] * _BATCH) + ")"

_LABELS_BATCH_SQL = (
    "SELECT entity, label FROM entities WHERE pair_id = ? AND entity IN "
    + _IN_BATCH
)

_HOSTS_BATCH_SQL = (
    "SELECT site, host FROM sites WHERE pair_id = ? AND site IN " + _IN_BATCH
)


class SqliteStore:
    """Lazy per-thread, per-process read-only connections to one store file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._local = threading.local()

    def connection(self) -> sqlite3.Connection:
        """This thread's connection, reopened after a fork."""
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != os.getpid():
            # Read-only by URI (not ``immutable=1``: the file's bytes
            # must stay verifiable against outside corruption, and
            # immutable mode would let SQLite cache torn pages).
            conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, check_same_thread=False
            )
            self._local.conn = conn
            self._local.pid = os.getpid()
        return conn

    def query(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Run one parameterized read query on this thread's connection."""
        return self.connection().execute(sql, params)


@dataclass(frozen=True)
class _SqlCsrView:
    """CSR-by-site duck type over SQL, for the core greedy algorithm.

    ``site_sizes`` is one ordered scan of the ``sites`` table;
    ``site_entities`` fetches a single site's adjacency list, so the
    lazy greedy loop touches only the rows it actually re-evaluates.
    """

    store: SqliteStore
    pair_id: int
    n_entities: int
    n_sites: int

    def site_sizes(self) -> np.ndarray:
        rows = self.store.query(
            "SELECT size FROM sites WHERE pair_id = ? ORDER BY site",
            (self.pair_id,),
        )
        return np.fromiter(
            (row[0] for row in rows), dtype=np.int64, count=self.n_sites
        )

    def site_entities(self, site: int) -> np.ndarray:
        rows = self.store.query(
            "SELECT entity FROM edges WHERE pair_id = ? AND site = ?"
            " ORDER BY pos",
            (self.pair_id, int(site)),
        )
        return np.fromiter((row[0] for row in rows), dtype=np.int64)


@dataclass(frozen=True)
class SqlitePair:
    """One (domain, attribute) corpus served from the SQL tier."""

    store: SqliteStore = field(repr=False)
    pair_id: int
    domain: str
    attribute: str
    n_entities: int
    n_sites: int
    coverage_ks: tuple[int, ...]
    top_hosts: tuple[str, ...]
    has_ids: bool

    def resolve_entity(self, entity_id: str) -> int | None:
        """Map a catalog id (or bare index string) to an entity index."""
        if self.has_ids:
            row = self.store.query(
                "SELECT entity FROM entities WHERE pair_id = ? AND label = ?"
                " ORDER BY entity DESC LIMIT 1",
                (self.pair_id, entity_id),
            ).fetchone()
            if row is not None:
                return int(row[0])
        if entity_id.isdigit():
            index = int(entity_id)
            if 0 <= index < self.n_entities:
                return index
        return None

    def entity_label(self, entity: int) -> str:
        """Catalog id for an entity index (falls back to the index)."""
        if self.has_ids:
            row = self.store.query(
                "SELECT label FROM entities WHERE pair_id = ? AND entity = ?",
                (self.pair_id, int(entity)),
            ).fetchone()
            if row is not None:
                return str(row[0])
        return str(entity)

    def _batched_strings(self, sql: str, wanted: list[int]) -> dict[int, str]:
        """index → string over fixed-width ``IN`` batches of ``sql``."""
        found: dict[int, str] = {}
        distinct = sorted(set(wanted))
        for start in range(0, len(distinct), _BATCH):
            chunk = distinct[start : start + _BATCH]
            padded = chunk + [chunk[0]] * (_BATCH - len(chunk))
            for key, value in self.store.query(sql, (self.pair_id, *padded)):
                found[int(key)] = str(value)
        return found

    def entity_labels(self, entities: Any) -> list[str]:
        """Labels for entity indices, in input order, batched over SQL."""
        wanted = [int(e) for e in entities]
        if not self.has_ids or not wanted:
            return [str(e) for e in wanted]
        found = self._batched_strings(_LABELS_BATCH_SQL, wanted)
        return [found.get(e, str(e)) for e in wanted]

    def sites_of_entity(self, entity: int) -> np.ndarray:
        """Site indices mentioning ``entity`` (ascending)."""
        rows = self.store.query(
            "SELECT site FROM edges WHERE pair_id = ? AND entity = ?"
            " ORDER BY site",
            (self.pair_id, int(entity)),
        )
        return np.fromiter((row[0] for row in rows), dtype=np.int64)

    def entities_on_site(self, site: int) -> np.ndarray:
        """Entity indices mentioned by site ``site`` (CSR edge order)."""
        rows = self.store.query(
            "SELECT entity FROM edges WHERE pair_id = ? AND site = ?"
            " ORDER BY pos",
            (self.pair_id, int(site)),
        )
        return np.fromiter((row[0] for row in rows), dtype=np.int64)

    def site_page(self, site: int, offset: int, count: int):
        """``(total, page)`` slice of a site's listing, fetched by page.

        The row count comes from the ``sites.size`` column and the page
        from a ``LIMIT ?/OFFSET ?`` walk of the covering index, so a
        500-entity page of a 60k-entity site never fetches 60k rows.
        """
        row = self.store.query(
            "SELECT size FROM sites WHERE pair_id = ? AND site = ?",
            (self.pair_id, int(site)),
        ).fetchone()
        total = int(row[0]) if row is not None else 0
        if count <= 0 or offset >= total:
            return total, np.empty(0, dtype=np.int64)
        rows = self.store.query(
            "SELECT entity FROM edges WHERE pair_id = ? AND site = ?"
            " ORDER BY pos LIMIT ? OFFSET ?",
            (self.pair_id, int(site), int(count), int(offset)),
        )
        return total, np.fromiter((r[0] for r in rows), dtype=np.int64)

    def entity_site_hosts(self, entity: int) -> list[str]:
        """Hosts of an entity's sites via one join, ascending site order."""
        rows = self.store.query(
            "SELECT s.host FROM edges AS g JOIN sites AS s"
            " ON s.pair_id = g.pair_id AND s.site = g.site"
            " WHERE g.pair_id = ? AND g.entity = ? ORDER BY g.site",
            (self.pair_id, int(entity)),
        )
        return [str(r[0]) for r in rows]

    def site_host(self, site: int) -> str:
        """Host name for a site index."""
        row = self.store.query(
            "SELECT host FROM sites WHERE pair_id = ? AND site = ?",
            (self.pair_id, int(site)),
        ).fetchone()
        if row is None:
            raise LookupError(f"site {site} out of range")
        return str(row[0])

    def site_hosts(self, sites: Any) -> list[str]:
        """Hosts for site indices, in input order, batched over SQL."""
        wanted = [int(s) for s in sites]
        if not wanted:
            return []
        found = self._batched_strings(_HOSTS_BATCH_SQL, wanted)
        missing = [s for s in wanted if s not in found]
        if missing:
            raise LookupError(f"site {missing[0]} out of range")
        return [found[s] for s in wanted]

    def site_of_host(self, host: str) -> int | None:
        """Site index for a host name (last index wins duplicates)."""
        row = self.store.query(
            "SELECT site FROM sites WHERE pair_id = ? AND host = ?"
            " ORDER BY site DESC LIMIT 1",
            (self.pair_id, host),
        ).fetchone()
        return int(row[0]) if row is not None else None

    def coverage_at(self, k: int, top_t: int) -> float:
        """k-coverage of the top-``top_t`` sites via a ``kcov`` count.

        Raises:
            KeyError: ``k`` was not precomputed (outside the config ks).
            ValueError: ``top_t`` outside ``[1, n_sites]``.
        """
        coverage_row(self.coverage_ks, k)
        check_top_t(top_t, self.n_sites)
        row = self.store.query(
            "SELECT COUNT(*) FROM kcov WHERE pair_id = ? AND k = ?"
            " AND first_rank <= ?",
            (self.pair_id, int(k), int(top_t)),
        ).fetchone()
        return row[0] / max(self.n_entities, 1)

    def set_cover(self, budget: int) -> dict[str, object]:
        """Bounded greedy set cover with SQL-fetched adjacency."""
        view = _SqlCsrView(
            store=self.store,
            pair_id=self.pair_id,
            n_entities=self.n_entities,
            n_sites=self.n_sites,
        )
        return run_set_cover(view, self.site_host, budget)


@dataclass(frozen=True)
class SqliteDemandTable:
    """Figure-7 demand lookup answered from the ``demand_bins`` table."""

    store: SqliteStore = field(repr=False)
    site: str
    sources: tuple[str, ...]
    max_reviews: int

    def lookup(self, source: str, n_reviews: int) -> dict[str, float]:
        """Demand estimate for an entity with ``n_reviews`` reviews.

        Raises:
            KeyError: Unknown demand source.
            ValueError: Negative review count.
        """
        if source not in self.sources:
            raise KeyError(
                f"unknown source {source!r}; have {sorted(self.sources)}"
            )
        if n_reviews < 0:
            raise ValueError("n_reviews must be non-negative")
        center = query_bin_center(n_reviews)
        # Nearest occupied bin; the idx tie-break reproduces
        # np.argmin's first-minimum semantics exactly.
        row = self.store.query(
            "SELECT center, mean FROM demand_bins"
            " WHERE site = ? AND source = ?"
            " ORDER BY ABS(center - ?) ASC, idx ASC LIMIT 1",
            (self.site, source, center),
        ).fetchone()
        return {
            "bin_center": float(row[0]),
            "mean_normalized_demand": round(float(row[1]), 6),
        }


def open_sqlite_pairs(
    artifacts: StoreArtifacts,
) -> tuple[dict[tuple[str, str], SqlitePair], dict[str, Any]]:
    """Open the SQL tier of a compiled store (pairs and demand tables)."""
    store = SqliteStore(artifacts.sqlite_path)
    pairs: dict[tuple[str, str], SqlitePair] = {}
    for row in store.query(
        "SELECT pair_id, domain, attribute, n_entities, n_sites, ks,"
        " top_hosts, has_ids FROM pairs ORDER BY pair_id"
    ).fetchall():
        pair_id, domain, attribute, n_entities, n_sites, ks, tops, has_ids = row
        pairs[(domain, attribute)] = SqlitePair(
            store=store,
            pair_id=int(pair_id),
            domain=str(domain),
            attribute=str(attribute),
            n_entities=int(n_entities),
            n_sites=int(n_sites),
            coverage_ks=tuple(int(k) for k in json.loads(ks)),
            top_hosts=tuple(json.loads(tops)),
            has_ids=bool(has_ids),
        )
    demand: dict[str, Any] = {}
    for site, sources, max_reviews in store.query(
        "SELECT site, sources, max_reviews FROM demand_meta ORDER BY site"
    ).fetchall():
        demand[str(site)] = SqliteDemandTable(
            store=store,
            site=str(site),
            sources=tuple(json.loads(sources)),
            max_reviews=int(max_reviews),
        )
    return pairs, demand
