"""Tiered out-of-core query storage behind the serving contract.

The paper's corpus is web-scale; an in-RAM CSR index caps catalog size
at memory.  ``repro.store`` provides three interchangeable tiers —
``ram`` (built by :mod:`repro.serve.indices`), ``mmap`` (CSR blobs
opened with ``mmap_mode="r"``), and ``sqlite`` (adjacency, k-coverage
ranks, and demand bins queried in SQL) — all compiled from a run
manifest by :func:`build_store` into cache-addressed artifacts and all
rendering byte-identical ``/v1/*`` responses.

Layering: ``store`` sits *below* ``serve`` (it may import ``core``,
``perf``, ``pipeline``, ``resilience``; never the HTTP tier) so the
compiler can run inside ``repro all`` without dragging in a server.
"""

from repro.store.backend import (
    BACKENDS,
    CsrView,
    PairBackend,
    QueryIndex,
    StorageBackend,
    choose_backend,
    open_backend,
)
from repro.store.compile import (
    STORE_FORMAT,
    StoreArtifacts,
    build_store,
    store_blob_key,
)
from repro.store.demand import DemandTable
from repro.store.manifest import Manifest, load_manifest, manifest_identity
from repro.store.mmapcsr import MmapPair
from repro.store.sql import SqliteDemandTable, SqlitePair, SqliteStore

__all__ = [
    "BACKENDS",
    "CsrView",
    "DemandTable",
    "Manifest",
    "MmapPair",
    "PairBackend",
    "QueryIndex",
    "STORE_FORMAT",
    "SqliteDemandTable",
    "SqlitePair",
    "SqliteStore",
    "StorageBackend",
    "StoreArtifacts",
    "build_store",
    "choose_backend",
    "load_manifest",
    "manifest_identity",
    "open_backend",
    "store_blob_key",
]
