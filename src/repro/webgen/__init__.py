"""Generative model of structured data on the Web.

The paper measures a proprietary web crawl.  This package is the
substitute substrate: a generative model of the entity–site incidence
structure whose knobs map one-to-one onto the phenomena the paper
reports — power-law site sizes (head aggregators vs. the long tail),
Zipfian entity popularity, popularity-biased site content, niche "local"
sites, and tiny isolated islands of tail entities (the paper's
"components [containing] at most one or two entities mentioned only by
tail web sites").

- :mod:`repro.webgen.sitemodel` — site-size power law and calibration
  of its exponent against Table 2's average-sites-per-entity targets.
- :mod:`repro.webgen.assignment` — sampling of the bipartite incidence.
- :mod:`repro.webgen.profiles` — per-(domain, attribute) parameter
  presets calibrated to the paper's figures and Table 2.
- :mod:`repro.webgen.text` — review / non-review page text generator.
- :mod:`repro.webgen.html` — HTML page renderer.
- :mod:`repro.webgen.corpus` — renders a full synthetic crawl from an
  incidence + entity database.
"""

from repro.webgen.assignment import AssignmentModel, attach_review_multiplicity
from repro.webgen.corpus import CorpusBuilder, SyntheticCorpus
from repro.webgen.evolution import (
    CorpusEvolver,
    recrawl_comparison,
    staleness_curve,
)
from repro.webgen.html import PageRenderer
from repro.webgen.profiles import (
    PROFILES,
    ScalePreset,
    SpreadProfile,
    get_profile,
    profile_keys,
    SCALES,
)
from repro.webgen.sitemodel import SiteSizeModel, calibrate_size_exponent
from repro.webgen.text import ReviewTextGenerator

__all__ = [
    "AssignmentModel",
    "CorpusBuilder",
    "CorpusEvolver",
    "recrawl_comparison",
    "staleness_curve",
    "PROFILES",
    "PageRenderer",
    "ReviewTextGenerator",
    "SCALES",
    "ScalePreset",
    "SiteSizeModel",
    "SpreadProfile",
    "SyntheticCorpus",
    "attach_review_multiplicity",
    "calibrate_size_exponent",
    "get_profile",
    "profile_keys",
]
