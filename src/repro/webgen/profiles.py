"""Per-(domain, attribute) generation profiles and scale presets.

Each :class:`SpreadProfile` packages the generative parameters for one
(domain, attribute) pair, calibrated against the paper:

- ``target_sites_per_entity`` comes straight from Table 2 ("Avg. #sites
  per entity": 8 for book ISBNs up to 251 for library homepages).
- ``head_coverage`` is read off the k=1 curves of Figures 1–4 (the top
  restaurant-phone site covers well over half the database; homepage
  head sites cover far less).
- ``popularity_exponent`` encodes how strongly tail sites skew popular;
  homepages use larger exponents than phones, which is what pushes the
  95%-coverage point from ~100 sites (phones) to ~10,000 (homepages).
- ``island_fraction`` is (100 − "% entities in largest comp") / 100
  from Table 2; islands of one or two entities create the extra
  connected components the paper counts.

Scale presets shrink the paper's web-scale corpora to laptop sizes
while keeping all the *relative* quantities (head coverage, average
mentions per entity, island fractions) intact, so curve shapes and
crossovers survive the down-scaling even though absolute site counts do
not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence
from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
    LOCAL_BUSINESS_DOMAINS,
)
from repro.webgen.assignment import AssignmentModel, attach_review_multiplicity
from repro.webgen.sitemodel import SiteSizeModel

__all__ = [
    "PROFILES",
    "SCALES",
    "ScalePreset",
    "SpreadProfile",
    "get_profile",
    "profile_keys",
]


@dataclass(frozen=True)
class ScalePreset:
    """A corpus size: how far the paper's web scale is shrunk.

    Attributes:
        name: Preset key.
        n_entities: Database size per domain.
        site_factor: Number of sites as a multiple of ``n_entities``.
        mention_factor: Multiplier on the Table 2 sites-per-entity
            targets.  1.0 preserves the paper's averages; the tiny
            preset shrinks them because a 600-site corpus cannot give
            every entity 251 mentions.
        localities_per_thousand: Niche localities per 1000 entities.
    """

    name: str
    n_entities: int
    site_factor: float = 2.0
    mention_factor: float = 1.0
    localities_per_thousand: float = 25.0

    @property
    def n_sites(self) -> int:
        """Site count implied by the preset."""
        return max(1, int(round(self.site_factor * self.n_entities)))

    @property
    def n_localities(self) -> int:
        """Locality count implied by the preset."""
        return max(1, int(round(self.localities_per_thousand * self.n_entities / 1000)))


SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset("tiny", n_entities=300, site_factor=2.0, mention_factor=0.3),
    "small": ScalePreset("small", n_entities=2000, site_factor=2.0),
    "medium": ScalePreset("medium", n_entities=8000, site_factor=2.0),
    "paper": ScalePreset("paper", n_entities=40000, site_factor=2.5),
    # Storage-ladder rung: big enough that ``auto`` leaves RAM (100k
    # entities > RAM_MAX_ENTITIES) at the paper's mention density.
    "ladder": ScalePreset("ladder", n_entities=100_000, site_factor=1.0),
}


@dataclass(frozen=True)
class SpreadProfile:
    """Generative parameters for one (domain, attribute) pair.

    ``site_factor`` optionally overrides the scale preset's site count
    (as a multiple of the entity count); the books corpus uses fewer
    sites per entity than the local-business ones, matching the x-axis
    extents of Figure 3 vs. Figures 1–2.
    """

    domain: str
    attribute: str
    target_sites_per_entity: float
    head_coverage: float
    popularity_exponent: float
    island_fraction: float
    niche_fraction: float = 0.3
    review_base_extra: float = 0.0
    site_factor: float | None = None

    @property
    def key(self) -> tuple[str, str]:
        """Registry key, ``(domain, attribute)``."""
        return (self.domain, self.attribute)

    def assignment_model(self, scale: ScalePreset) -> AssignmentModel:
        """Instantiate the generative model at a given scale."""
        target = self.target_sites_per_entity * scale.mention_factor
        n_sites = scale.n_sites
        if self.site_factor is not None:
            n_sites = max(1, int(round(self.site_factor * scale.n_entities)))
        size_model = SiteSizeModel.calibrated(
            n_entities=scale.n_entities,
            n_sites=n_sites,
            head_coverage=self.head_coverage,
            target_edges_per_entity=target,
        )
        return AssignmentModel(
            size_model=size_model,
            popularity_exponent=self.popularity_exponent,
            island_fraction=self.island_fraction,
            niche_fraction=self.niche_fraction,
            n_localities=scale.n_localities,
            host_suffix=f"{self.domain}-{self.attribute}.example.com",
        )

    def generate(
        self, scale: ScalePreset | str, seed: int = 0
    ) -> BipartiteIncidence:
        """Generate the incidence for this profile at ``scale``.

        Review profiles also attach page multiplicities (several review
        pages per (site, entity) edge on head sites).
        """
        if isinstance(scale, str):
            scale = SCALES[scale]
        rng = np.random.default_rng(_profile_seed(self, seed))
        incidence = self.assignment_model(scale).generate(rng)
        if self.review_base_extra > 0:
            incidence = attach_review_multiplicity(
                incidence, rng, base_extra=self.review_base_extra
            )
        return incidence


def _profile_seed(profile: SpreadProfile, seed: int) -> int:
    """Stable per-profile seed so domains get independent corpora.

    Uses CRC32 rather than ``hash()``: Python string hashing is salted
    per process, which would break run-to-run reproducibility.
    """
    import zlib

    mix = zlib.crc32(f"{profile.domain}/{profile.attribute}".encode())
    return (seed * 1_000_003 + mix) & 0x7FFFFFFF


def _phone(domain: str, avg: float, head: float, islands: float) -> SpreadProfile:
    return SpreadProfile(
        domain=domain,
        attribute=ATTRIBUTE_PHONE,
        target_sites_per_entity=avg,
        head_coverage=head,
        popularity_exponent=0.6,
        island_fraction=islands,
    )


def _homepage(domain: str, avg: float, head: float, islands: float) -> SpreadProfile:
    return SpreadProfile(
        domain=domain,
        attribute=ATTRIBUTE_HOMEPAGE,
        target_sites_per_entity=avg,
        head_coverage=head,
        popularity_exponent=1.05,
        island_fraction=islands,
        niche_fraction=0.35,
    )


# Table 2 columns: (avg sites/entity, % entities in largest component).
_PHONE_TABLE2 = {
    "restaurants": (32.0, 99.99),
    "automotive": (13.0, 99.99),
    "banks": (22.0, 99.99),
    "hotels": (56.0, 99.99),
    "libraries": (47.0, 99.99),
    "retail": (19.0, 99.93),
    "home": (13.0, 99.76),
    "schools": (37.0, 99.97),
}

_HOMEPAGE_TABLE2 = {
    "restaurants": (46.0, 99.82),
    "automotive": (115.0, 98.52),
    "banks": (68.0, 99.57),
    "hotels": (56.0, 99.90),
    "libraries": (251.0, 99.86),
    "retail": (45.0, 99.20),
    "home": (20.0, 97.87),
    "schools": (74.0, 99.57),
}

# Head-site 1-coverage, read off the k=1 curves at t=1 in Figures 1-3.
_PHONE_HEAD_COVERAGE = {
    "restaurants": 0.62,
    "automotive": 0.45,
    "banks": 0.55,
    "hotels": 0.60,
    "libraries": 0.58,
    "retail": 0.40,
    "home": 0.38,
    "schools": 0.55,
}

_HOMEPAGE_HEAD_COVERAGE = {
    "restaurants": 0.35,
    "automotive": 0.40,
    "banks": 0.42,
    "hotels": 0.40,
    "libraries": 0.50,
    "retail": 0.30,
    "home": 0.25,
    "schools": 0.40,
}


def _build_registry() -> dict[tuple[str, str], SpreadProfile]:
    registry: dict[tuple[str, str], SpreadProfile] = {}
    for domain in LOCAL_BUSINESS_DOMAINS:
        avg, pct = _PHONE_TABLE2[domain]
        profile = _phone(
            domain, avg, _PHONE_HEAD_COVERAGE[domain], (100.0 - pct) / 100.0
        )
        registry[profile.key] = profile
        avg, pct = _HOMEPAGE_TABLE2[domain]
        profile = _homepage(
            domain, avg, _HOMEPAGE_HEAD_COVERAGE[domain], (100.0 - pct) / 100.0
        )
        registry[profile.key] = profile
    registry[("books", ATTRIBUTE_ISBN)] = SpreadProfile(
        domain="books",
        attribute=ATTRIBUTE_ISBN,
        target_sites_per_entity=8.0,
        head_coverage=0.50,
        popularity_exponent=0.55,
        island_fraction=(100.0 - 99.96) / 100.0,
        niche_fraction=0.15,
        site_factor=1.0,
    )
    registry[("restaurants", ATTRIBUTE_REVIEWS)] = SpreadProfile(
        domain="restaurants",
        attribute=ATTRIBUTE_REVIEWS,
        target_sites_per_entity=15.0,
        head_coverage=0.40,
        popularity_exponent=0.9,
        island_fraction=0.001,
        review_base_extra=2.5,
    )
    return registry


PROFILES: dict[tuple[str, str], SpreadProfile] = _build_registry()


def get_profile(domain: str, attribute: str) -> SpreadProfile:
    """Fetch a profile, with a helpful error for unknown pairs."""
    try:
        return PROFILES[(domain, attribute)]
    except KeyError:
        known = ", ".join(f"{d}/{a}" for d, a in sorted(PROFILES))
        raise KeyError(
            f"no profile for {domain!r}/{attribute!r}; known: {known}"
        ) from None


def profile_keys(attribute: str | None = None) -> list[tuple[str, str]]:
    """All (domain, attribute) keys, optionally filtered by attribute."""
    keys = sorted(PROFILES)
    if attribute is None:
        return keys
    return [key for key in keys if key[1] == attribute]
