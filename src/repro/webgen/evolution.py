"""Temporal evolution of the web corpus and re-crawl scheduling.

The paper cites "crawling the web: discovery and *maintenance* of
large-scale web data" — a crawled snapshot decays as sites add, drop,
and change content.  This module evolves an incidence through discrete
epochs and measures what the decay does to an extraction system that
does not (or selectively does) re-crawl:

- :class:`CorpusEvolver` applies per-epoch churn: each existing edge
  survives with probability ``1 - edge_drop_rate``; each site gains new
  popularity-biased entities at ``edge_add_rate``; whole tail sites die
  and are replaced at ``site_turnover_rate``.
- :func:`staleness_curve` — the fraction of a frozen snapshot's edges
  still live after k epochs (how fast an un-maintained database rots).
- :func:`recrawl_comparison` — coverage after several epochs under
  re-crawl policies (none / random / largest-first) with a fixed
  per-epoch re-crawl budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence

__all__ = ["CorpusEvolver", "recrawl_comparison", "staleness_curve"]


@dataclass(frozen=True)
class CorpusEvolver:
    """Per-epoch churn model over an incidence.

    Attributes:
        edge_drop_rate: Probability an existing (site, entity) mention
            disappears in one epoch.
        edge_add_rate: New mentions per site per epoch, as a fraction of
            its current size (popularity-biased sampling).
        site_turnover_rate: Fraction of tail sites (smallest decile)
            replaced with fresh tail sites each epoch.
        popularity_exponent: Bias of newly added mentions.
    """

    edge_drop_rate: float = 0.05
    edge_add_rate: float = 0.05
    site_turnover_rate: float = 0.02
    popularity_exponent: float = 0.8

    def __post_init__(self) -> None:
        for rate in (self.edge_drop_rate, self.edge_add_rate, self.site_turnover_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be in [0, 1]")

    def step(
        self, incidence: BipartiteIncidence, rng: np.random.Generator | int
    ) -> BipartiteIncidence:
        """Evolve one epoch; returns a new incidence (same entity space)."""
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        n = incidence.n_entities
        weights = (np.arange(n) + 1.0) ** -self.popularity_exponent
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]

        sizes = incidence.site_sizes()
        order = incidence.sites_by_size()
        tail_start = int(0.9 * len(order))
        tail_sites = set(order[tail_start:].tolist())
        dying = {
            s
            for s in tail_sites
            if rng.random() < self.site_turnover_rate
        }

        sites: list[tuple[str, list[int]]] = []
        for s in range(incidence.n_sites):
            host = incidence.site_hosts[s]
            if s in dying:
                # replaced by a fresh tail site with new content
                size = max(1, int(sizes[s]))
                picks = np.searchsorted(cdf, rng.random(size * 2), side="right")
                entities = np.unique(picks)[:size].tolist()
                sites.append((f"new-{host}", entities))
                continue
            entities = incidence.site_entities(s)
            keep = rng.random(len(entities)) >= self.edge_drop_rate
            surviving = entities[keep].tolist()
            n_new = int(round(self.edge_add_rate * len(entities)))
            if n_new:
                picks = np.searchsorted(cdf, rng.random(n_new * 2), side="right")
                surviving.extend(np.unique(picks)[:n_new].tolist())
            sites.append((host, surviving))
        return BipartiteIncidence.from_site_lists(
            n_entities=n, sites=sites, entity_ids=incidence.entity_ids
        )

    def evolve(
        self,
        incidence: BipartiteIncidence,
        epochs: int,
        rng: np.random.Generator | int = 0,
    ) -> list[BipartiteIncidence]:
        """Evolve several epochs; returns the snapshot after each."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        snapshots = []
        current = incidence
        for _ in range(epochs):
            current = self.step(current, rng)
            snapshots.append(current)
        return snapshots


def _edge_set(incidence: BipartiteIncidence) -> set[tuple[str, int]]:
    edges = set()
    for s in range(incidence.n_sites):
        host = incidence.site_hosts[s]
        for entity in incidence.site_entities(s).tolist():
            edges.add((host, int(entity)))
    return edges


def staleness_curve(
    snapshots: list[BipartiteIncidence], original: BipartiteIncidence
) -> np.ndarray:
    """Fraction of the original snapshot's edges still live per epoch.

    An extraction database built from ``original`` and never refreshed
    contains exactly these still-true facts.
    """
    baseline = _edge_set(original)
    if not baseline:
        raise ValueError("original snapshot has no edges")
    fractions = np.empty(len(snapshots))
    for i, snapshot in enumerate(snapshots):
        live = _edge_set(snapshot)
        fractions[i] = len(baseline & live) / len(baseline)
    return fractions


def recrawl_comparison(
    original: BipartiteIncidence,
    evolver: CorpusEvolver,
    epochs: int = 5,
    budget_per_epoch: int = 20,
    rng: np.random.Generator | int = 0,
) -> dict[str, float]:
    """Final fact accuracy under three re-crawl policies.

    Each epoch the world evolves; the extractor may re-crawl (refresh
    its copy of) ``budget_per_epoch`` sites.  Policies: ``none``,
    ``random``, ``largest_first``.  Returns the fraction of the
    extractor's final database that is still true in the final world.
    """
    if epochs < 1 or budget_per_epoch < 0:
        raise ValueError("epochs must be >= 1 and budget non-negative")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))

    results: dict[str, float] = {}
    for policy in ("none", "random", "largest_first"):
        world = original
        # extractor's believed edges per host
        believed: dict[str, set[int]] = {
            original.site_hosts[s]: set(original.site_entities(s).tolist())
            for s in range(original.n_sites)
        }
        policy_rng = np.random.default_rng(rng.integers(2**31))
        for __ in range(epochs):
            world = evolver.step(world, policy_rng)
            if policy == "none" or budget_per_epoch == 0:
                continue
            if policy == "largest_first":
                refresh = world.sites_by_size()[:budget_per_epoch]
            else:
                refresh = policy_rng.permutation(world.n_sites)[:budget_per_epoch]
            for s in refresh.tolist():
                believed[world.site_hosts[s]] = set(
                    world.site_entities(int(s)).tolist()
                )
        live = _edge_set(world)
        believed_edges = {
            (host, entity)
            for host, entities in believed.items()
            for entity in entities
        }
        if not believed_edges:
            results[policy] = 0.0
        else:
            results[policy] = len(believed_edges & live) / len(believed_edges)
    return results
