"""Render a sampled incidence into a full synthetic crawl.

This closes the loop of the substitution: the generative model says
*which* site mentions *which* entity; :class:`CorpusBuilder` renders
those mentions into actual HTML pages in a page store, so the
extraction pipeline (:mod:`repro.extract`) can re-discover the incidence
from raw markup exactly the way the paper scans the Yahoo! web cache.
The ground-truth incidence is kept alongside the rendered cache so
integration tests can measure extraction fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence
from repro.crawl.cache import WebCache
from repro.crawl.store import MemoryPageStore, Page, PageStore
from repro.entities.catalog import EntityDatabase
from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
)
from repro.webgen.html import PageRenderer
from repro.webgen.text import ReviewTextGenerator

__all__ = ["CorpusBuilder", "SyntheticCorpus"]


@dataclass
class SyntheticCorpus:
    """A rendered crawl plus the ground truth it encodes.

    Attributes:
        cache: The crawlable page corpus.
        database: The entity database whose keys are embedded in pages.
        attribute: The identifying attribute rendered.
        truth: The incidence the corpus was rendered from, restricted to
            edges that were actually renderable (e.g. a business without
            a homepage cannot be linked to).
        n_noise_pages: Distractor pages included in the cache.
    """

    cache: WebCache
    database: EntityDatabase
    attribute: str
    truth: BipartiteIncidence
    n_noise_pages: int


class CorpusBuilder:
    """Renders (incidence, database) pairs into HTML corpora.

    Args:
        database: Entities to render; the incidence's entity index i
            refers to the database's i-th entity.
        attribute: Which identifying attribute to embed.
        entities_per_page: Listing-page fan-out; sites with more
            entities get multiple pages (hosts aggregate across pages,
            per the paper's methodology).
        noise_page_rate: Noise pages per content page, exercising the
            extractors' false-match rejection.
        review_purity: For review corpora: probability that a rendered
            page on a review edge is actually a review (the rest are
            directory pages that mention the phone but must be filtered
            out by the classifier).
        seed: RNG seed for all formatting choices.
    """

    def __init__(
        self,
        database: EntityDatabase,
        attribute: str,
        entities_per_page: int = 10,
        noise_page_rate: float = 0.1,
        review_purity: float = 0.85,
        seed: int = 0,
    ) -> None:
        if entities_per_page < 1:
            raise ValueError("entities_per_page must be >= 1")
        if not 0.0 <= noise_page_rate <= 10.0:
            raise ValueError("noise_page_rate must be in [0, 10]")
        if not 0.0 < review_purity <= 1.0:
            raise ValueError("review_purity must be in (0, 1]")
        if attribute not in (
            ATTRIBUTE_PHONE,
            ATTRIBUTE_HOMEPAGE,
            ATTRIBUTE_ISBN,
            ATTRIBUTE_REVIEWS,
        ):
            raise ValueError(f"unsupported attribute {attribute!r}")
        self.database = database
        self.attribute = attribute
        self.entities_per_page = entities_per_page
        self.noise_page_rate = noise_page_rate
        self.review_purity = review_purity
        self._rng = np.random.default_rng(seed)
        self._renderer = PageRenderer(self._rng)
        self._text = ReviewTextGenerator(self._rng)

    # -- helpers ----------------------------------------------------------------

    def _renderable(self, entity_index: int) -> bool:
        entity = self.database.get(self.database.entity_ids[entity_index])
        if self.attribute == ATTRIBUTE_REVIEWS:
            return ATTRIBUTE_PHONE in entity.keys
        if self.attribute == ATTRIBUTE_HOMEPAGE:
            return ATTRIBUTE_HOMEPAGE in entity.keys
        return self.attribute in entity.keys

    def _payloads(self, entity_indices: np.ndarray) -> list[object]:
        ids = self.database.entity_ids
        return [self.database.get(ids[int(i)]).payload for i in entity_indices]

    def _render_site(
        self, host: str, entities: np.ndarray, multiplicities: np.ndarray
    ) -> list[Page]:
        pages: list[Page] = []
        page_no = 0
        if self.attribute == ATTRIBUTE_REVIEWS:
            for index, pages_here in zip(entities.tolist(), multiplicities.tolist()):
                listing = self.database.get(
                    self.database.entity_ids[index]
                ).payload
                for _ in range(int(pages_here)):
                    is_review = bool(self._rng.random() < self.review_purity)
                    content = self._renderer.review_page(
                        host, listing, self._text, is_review=is_review
                    )
                    pages.append(
                        Page.from_url(
                            f"http://{host}/review{page_no}.html", content
                        )
                    )
                    page_no += 1
            return pages

        for start in range(0, len(entities), self.entities_per_page):
            chunk = entities[start:start + self.entities_per_page]
            payloads = self._payloads(chunk)
            if self.attribute == ATTRIBUTE_PHONE:
                content = self._renderer.listing_page(host, payloads)
            elif self.attribute == ATTRIBUTE_HOMEPAGE:
                content = self._renderer.link_page(host, payloads)
            else:
                content = self._renderer.book_page(host, payloads)
            pages.append(
                Page.from_url(f"http://{host}/page{page_no}.html", content)
            )
            page_no += 1
        return pages

    # -- main entry point -----------------------------------------------------------

    def build(
        self,
        incidence: BipartiteIncidence,
        store: PageStore | None = None,
    ) -> SyntheticCorpus:
        """Render every site of ``incidence`` into a page store.

        Returns:
            The corpus, including the renderable-edge ground truth.
        """
        if incidence.n_entities != len(self.database):
            raise ValueError(
                "incidence and database disagree on the number of entities"
            )
        store = store if store is not None else MemoryPageStore()
        renderable = np.fromiter(
            (self._renderable(i) for i in range(len(self.database))),
            dtype=bool,
            count=len(self.database),
        )

        truth_sites = []
        truth_mults = []
        n_noise = 0
        for site in range(incidence.n_sites):
            host = incidence.site_hosts[site]
            entities = incidence.site_entities(site)
            mults = incidence.site_multiplicities(site)
            keep = renderable[entities]
            entities, mults = entities[keep], mults[keep]
            pages = self._render_site(host, entities, mults)
            store.add_many(pages)
            truth_sites.append((host, entities.tolist()))
            if self.attribute == ATTRIBUTE_REVIEWS:
                truth_mults.append(mults.tolist())
            expected_noise = self.noise_page_rate * max(len(pages), 1)
            noise_here = int(self._rng.poisson(expected_noise))
            for j in range(noise_here):
                store.add(
                    Page.from_url(
                        f"http://{host}/archive{j}.html",
                        self._renderer.noise_page(host, j),
                    )
                )
            n_noise += noise_here

        truth = BipartiteIncidence.from_site_lists(
            n_entities=len(self.database),
            sites=truth_sites,
            multiplicities=truth_mults if self.attribute == ATTRIBUTE_REVIEWS else None,
            entity_ids=self.database.entity_ids,
        )
        return SyntheticCorpus(
            cache=WebCache(store),
            database=self.database,
            attribute=self.attribute,
            truth=truth,
            n_noise_pages=n_noise,
        )
