"""HTML page renderer for the synthetic crawl.

Turns entity records into the kinds of pages the paper's extractors
scan: aggregator listing pages (name + address + phone, in varied
formats), link directories (anchor hrefs pointing at business
homepages), book catalogue pages (ISBN-10 or ISBN-13 with the "ISBN"
marker nearby), review pages (review prose plus the restaurant's phone),
and *noise pages* whose number-like tokens must be rejected by the
extractors (invalid NANP prefixes, checksum-failing ISBNs).
"""

from __future__ import annotations

import numpy as np

from repro.entities.books import Book
from repro.entities.business import BusinessListing
from repro.entities.ids import PHONE_FORMATS, format_isbn13, format_phone
from repro.webgen.text import ReviewTextGenerator

__all__ = ["PageRenderer"]

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head><title>{title}</title></head>
<body>
<h1>{title}</h1>
{body}
</body>
</html>
"""


class PageRenderer:
    """Renders entity mentions into HTML pages.

    All formatting choices (phone style, ISBN-10 vs -13, hyphenation)
    are drawn from the generator's RNG, so a rendered corpus exercises
    every normalization path in :mod:`repro.extract`.
    """

    def __init__(self, rng: np.random.Generator | int = 0) -> None:
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self._rng = rng

    # -- listing pages (phone attribute) --------------------------------------

    def listing_block(self, listing: BusinessListing) -> str:
        """One business entry with a randomly formatted phone."""
        style = int(self._rng.integers(len(PHONE_FORMATS)))
        phone = format_phone(listing.phone, style=style)
        label = ("Phone", "Tel", "Call us at", "Contact")[
            int(self._rng.integers(4))
        ]
        return (
            f'<div class="listing"><h2>{listing.name}</h2>'
            f"<p>{listing.address}</p>"
            f"<p>{label}: {phone}</p></div>"
        )

    def listing_page(self, host: str, listings: list[BusinessListing]) -> str:
        """A directory page with one block per listing."""
        body = "\n".join(self.listing_block(entry) for entry in listings)
        return _PAGE_TEMPLATE.format(title=f"Local directory — {host}", body=body)

    # -- link pages (homepage attribute) ---------------------------------------

    def link_block(self, listing: BusinessListing) -> str:
        """An anchor pointing at the business homepage."""
        if listing.homepage is None:
            raise ValueError(f"{listing.entity_id} has no homepage")
        # Vary scheme / www / trailing slash; the canonicalizer unifies them.
        prefix = ("http://", "http://www.", "https://", "https://www.")[
            int(self._rng.integers(4))
        ]
        suffix = ("", "/")[int(self._rng.integers(2))]
        return (
            f'<li><a href="{prefix}{listing.homepage}{suffix}">'
            f"{listing.name}</a></li>"
        )

    def link_page(self, host: str, listings: list[BusinessListing]) -> str:
        """A links/resources page with one anchor per business."""
        items = "\n".join(
            self.link_block(entry) for entry in listings if entry.homepage
        )
        body = f"<ul>\n{items}\n</ul>"
        return _PAGE_TEMPLATE.format(title=f"Useful links — {host}", body=body)

    # -- book pages (ISBN attribute) ----------------------------------------------

    def book_block(self, book: Book) -> str:
        """A catalogue entry with the ISBN in one of its surface forms."""
        roll = self._rng.random()
        if roll < 0.4:
            isbn_text = format_isbn13(book.isbn13, hyphenate=True)
        elif roll < 0.7:
            isbn_text = book.isbn13
        else:
            isbn_text = book.isbn10
        label = ("ISBN", "ISBN:", "ISBN-13:", "ISBN-10:")[
            int(self._rng.integers(4))
        ]
        return (
            f'<div class="book"><h2>{book.title}</h2>'
            f"<p>by {book.author} ({book.year}), {book.publisher}</p>"
            f"<p>{label} {isbn_text}</p></div>"
        )

    def book_page(self, host: str, books: list[Book]) -> str:
        """A catalogue page with one block per book."""
        body = "\n".join(self.book_block(book) for book in books)
        return _PAGE_TEMPLATE.format(title=f"Book catalogue — {host}", body=body)

    # -- review pages -----------------------------------------------------------------

    def review_page(
        self,
        host: str,
        listing: BusinessListing,
        text_generator: ReviewTextGenerator,
        is_review: bool = True,
    ) -> str:
        """A page carrying the restaurant's phone plus prose.

        ``is_review`` selects review prose versus directory boilerplate;
        both mention the phone, so only the classifier separates them —
        exactly the paper's detection setup.
        """
        style = int(self._rng.integers(len(PHONE_FORMATS)))
        phone = format_phone(listing.phone, style=style)
        if is_review:
            prose = text_generator.review(listing.name)
            title = f"Review: {listing.name}"
        else:
            prose = text_generator.non_review(listing.name)
            title = f"{listing.name} — info"
        body = f"<p>{prose}</p>\n<p>Phone: {phone}</p>"
        return _PAGE_TEMPLATE.format(title=title, body=body)

    # -- noise pages -------------------------------------------------------------------

    def noise_page(self, host: str, page_no: int) -> str:
        """A page of number-like tokens that extractors must reject.

        Contains a 10-digit number with an invalid NANP prefix, an
        order-number that fails the ISBN checksum, and a plain integer —
        none should survive validation, and none match database keys.
        """
        rng = self._rng
        bogus_phone = f"0{rng.integers(10**8, 10**9)}1"
        bogus_isbn = f"978{int(rng.integers(10**9)):09d}"  # checksum almost surely wrong
        big_number = str(int(rng.integers(10**11, 10**12)))  # 12 digits: not NANP-shaped
        body = (
            f"<p>Invoice {big_number} processed on ref {bogus_phone}.</p>"
            f"<p>Catalog item ISBN {bogus_isbn} unavailable.</p>"
        )
        return _PAGE_TEMPLATE.format(
            title=f"Archive page {page_no} — {host}", body=body
        )
