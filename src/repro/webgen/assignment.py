"""Sampling the entity–site incidence from the generative model.

Given a calibrated :class:`~repro.webgen.sitemodel.SiteSizeModel`, this
module decides *which* entities each site mentions:

- **Global sites** sample entities with popularity bias: entity at
  popularity rank r is drawn with weight ``(r+1)**-popularity_exponent``
  (Zipf).  Head aggregators therefore mention nearly everything, while
  small global sites skew popular — which is what makes k-coverage
  curves for k > 1 so much slower to saturate than k = 1 (Figures 1–4).
- **Niche sites** (a fraction of the tail) model local aggregators —
  the paper's "city chambers of commerce websites, or even individual
  critics blogs".  Each samples only from one locality's entities.
- **Island sites** realize the paper's observation that disconnected
  components "contain at most one or two entities mentioned only by
  tail web sites": a small fraction of the least-popular entities is
  split into islands of one or two, each mentioned only by its own tiny
  site(s).  Islands are exactly the extra connected components counted
  in Table 2 and removed-top-k robustness of Figure 9.

The output is a :class:`~repro.core.incidence.BipartiteIncidence` whose
entity index equals the entity's popularity rank (0 = most popular);
the entity database rows are exchangeable, so this loses no generality
and keeps the analyses array-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incidence import BipartiteIncidence
from repro.webgen.sitemodel import SiteSizeModel

__all__ = ["AssignmentModel", "attach_review_multiplicity"]


def _calibrate_bernoulli_scale(
    weights: np.ndarray, target: float, iterations: int = 60
) -> float:
    """Find a > 0 with ``sum(min(1, a * weights)) == target`` (bisection)."""
    if target >= len(weights):
        return np.inf
    lo = 0.0
    hi = target / float(weights.sum())
    while np.minimum(1.0, hi * weights).sum() < target:
        hi *= 2.0
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if np.minimum(1.0, mid * weights).sum() < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


@dataclass
class AssignmentModel:
    """Parameters of the entity→site assignment.

    Attributes:
        size_model: Calibrated site-size curve.
        popularity_exponent: Zipf exponent of entity popularity used to
            bias site content toward popular entities.  Larger values
            concentrate tail sites on head entities, which *spreads out*
            coverage of tail entities — the homepage profiles use larger
            exponents than the phone profiles.
        island_fraction: Fraction of entities placed on isolated
            islands (never sampled by global or niche sites).
        max_island_size: Maximum entities per island (the paper observes
            one or two).
        extra_island_site_rate: Probability an island gets a second site
            of its own (pure redundancy inside the component).
        niche_fraction: Probability a tail site is niche (local) rather
            than global.
        n_localities: Number of localities niche sites draw from.
        niche_size_threshold: Sites at most this large may be niche.
        min_island_entities: When islands are enabled at all, place at
            least this many entities on them.  Scaled-down corpora would
            otherwise round the paper's sub-percent island fractions to
            zero and lose the multi-component phenomenon entirely.
        host_suffix: Domain suffix used when minting host names.
    """

    size_model: SiteSizeModel
    popularity_exponent: float = 0.8
    island_fraction: float = 0.002
    max_island_size: int = 2
    extra_island_site_rate: float = 0.2
    niche_fraction: float = 0.3
    n_localities: int = 200
    niche_size_threshold: int = 20
    min_island_entities: int = 4
    host_suffix: str = "example.com"

    def __post_init__(self) -> None:
        if not 0.0 <= self.island_fraction < 0.5:
            raise ValueError("island_fraction must be in [0, 0.5)")
        if self.max_island_size < 1:
            raise ValueError("max_island_size must be >= 1")
        if not 0.0 <= self.niche_fraction <= 1.0:
            raise ValueError("niche_fraction must be in [0, 1]")
        if self.n_localities < 1:
            raise ValueError("n_localities must be >= 1")

    # -- sampling helpers ------------------------------------------------------

    @staticmethod
    def _sample_biased(
        rng: np.random.Generator,
        cdf: np.ndarray,
        members: np.ndarray,
        count: int,
    ) -> np.ndarray:
        """Sample ~count distinct members with popularity bias.

        Uses with-replacement draws against the member cdf followed by
        deduplication; overdraws by 30% to compensate.  May return
        slightly fewer than ``count`` (acceptable: site sizes are a
        model target, not an invariant).
        """
        if count >= len(members):
            return members
        draws = min(len(members) * 4, int(count * 1.3) + 3)
        picks = np.searchsorted(cdf, rng.random(draws), side="right")
        unique = np.unique(picks)
        if len(unique) > count:
            unique = unique[rng.permutation(len(unique))[:count]]
        return members[unique]

    def _sample_global(
        self,
        rng: np.random.Generator,
        weights: np.ndarray,
        cdf: np.ndarray,
        members: np.ndarray,
        count: int,
    ) -> np.ndarray:
        """Sample a global site's entities; exact-size Bernoulli for head sites."""
        if count < 0.02 * len(members):
            return self._sample_biased(rng, cdf, members, count)
        scale = _calibrate_bernoulli_scale(weights, float(count))
        include_prob = np.minimum(1.0, scale * weights)
        mask = rng.random(len(members)) < include_prob
        return members[mask]

    # -- main entry point --------------------------------------------------------

    def generate(self, rng: np.random.Generator | int) -> BipartiteIncidence:
        """Sample the full incidence structure.

        Args:
            rng: A :class:`numpy.random.Generator` or an integer seed.

        Returns:
            The sampled incidence.  Sites 0..S-1 are the size-model
            sites in decreasing size order; island sites follow.
        """
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        n_entities = self.size_model.n_entities
        sizes = self.size_model.sizes()

        n_island_entities = int(round(self.island_fraction * n_entities))
        if self.island_fraction > 0:
            n_island_entities = max(n_island_entities, self.min_island_entities)
        n_regular = n_entities - n_island_entities
        if n_regular < 1:
            raise ValueError("island_fraction leaves no regular entities")

        # Popularity weights over regular entities (index = popularity rank).
        regular = np.arange(n_regular, dtype=np.int64)
        weights = (regular + 1.0) ** -self.popularity_exponent
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]

        # Localities partition the regular entities uniformly.
        localities = rng.integers(self.n_localities, size=n_regular)
        locality_members: list[np.ndarray] = []
        locality_cdfs: list[np.ndarray] = []
        for loc in range(self.n_localities):
            members = regular[localities == loc]
            locality_members.append(members)
            if len(members):
                w = weights[members]
                c = np.cumsum(w)
                locality_cdfs.append(c / c[-1])
            else:
                locality_cdfs.append(np.empty(0))

        hosts: list[str] = []
        site_lists: list[np.ndarray] = []
        niche_flags = (sizes <= self.niche_size_threshold) & (
            rng.random(len(sizes)) < self.niche_fraction
        )
        for rank, size in enumerate(sizes):
            size = int(size)
            if niche_flags[rank]:
                loc = int(rng.integers(self.n_localities))
                members = locality_members[loc]
                if len(members) == 0:
                    entities = np.empty(0, dtype=np.int64)
                else:
                    entities = self._sample_biased(
                        rng, locality_cdfs[loc], members, size
                    )
                hosts.append(f"local-{loc:04d}-{rank:06d}.{self.host_suffix}")
            else:
                entities = self._sample_global(rng, weights, cdf, regular, size)
                hosts.append(f"site-{rank:06d}.{self.host_suffix}")
            site_lists.append(np.asarray(entities, dtype=np.int64))

        # Islands: partition the least popular entities into groups of
        # 1..max_island_size, each mentioned only by its own site(s).
        island_entities = np.arange(n_regular, n_entities, dtype=np.int64)
        cursor = 0
        island_no = 0
        while cursor < len(island_entities):
            size = int(rng.integers(1, self.max_island_size + 1))
            group = island_entities[cursor:cursor + size]
            cursor += size
            n_sites_here = 1 + int(rng.random() < self.extra_island_site_rate)
            for j in range(n_sites_here):
                hosts.append(
                    f"island-{island_no:06d}-{j}.{self.host_suffix}"
                )
                site_lists.append(group.copy())
            island_no += 1

        ptr = np.zeros(len(site_lists) + 1, dtype=np.int64)
        ptr[1:] = np.cumsum([len(lst) for lst in site_lists])
        entity_idx = (
            np.concatenate(site_lists)
            if site_lists
            else np.empty(0, dtype=np.int64)
        )
        return BipartiteIncidence(
            n_entities=n_entities,
            site_hosts=hosts,
            site_ptr=ptr,
            entity_idx=entity_idx,
        )


def attach_review_multiplicity(
    incidence: BipartiteIncidence,
    rng: np.random.Generator | int,
    base_extra: float = 2.0,
    site_size_power: float = 0.35,
    popularity_power: float = 0.5,
) -> BipartiteIncidence:
    """Attach pages-per-edge counts modelling multiple reviews.

    Reviews are an *open* attribute (Section 4): one site can host many
    review pages about the same restaurant.  We model the extra page
    count on edge (site s, entity e) as Poisson with mean

    ``base_extra * (size_s / max_size) ** site_size_power
    * ((rank_e + 1) ** -popularity_power)``

    so head aggregators hold many reviews of popular restaurants while a
    blog's single mention stays a single page.  This drives the
    Figure 4(b) aggregate-review curve, which the paper finds more
    spread out than the entity-coverage curve of Figure 4(a).

    Returns:
        A new incidence sharing the structure of ``incidence`` with a
        fresh ``multiplicity`` array.
    """
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    if base_extra < 0:
        raise ValueError("base_extra must be non-negative")
    sizes = incidence.site_sizes().astype(np.float64)
    max_size = max(float(sizes.max()), 1.0) if len(sizes) else 1.0
    site_factor = (sizes / max_size) ** site_size_power
    edge_site = np.repeat(np.arange(incidence.n_sites), incidence.site_sizes())
    entity_factor = (incidence.entity_idx + 1.0) ** -popularity_power
    lam = base_extra * site_factor[edge_site] * entity_factor
    multiplicity = 1 + rng.poisson(lam)
    return BipartiteIncidence(
        n_entities=incidence.n_entities,
        site_hosts=list(incidence.site_hosts),
        site_ptr=incidence.site_ptr.copy(),
        entity_idx=incidence.entity_idx.copy(),
        multiplicity=multiplicity.astype(np.int64),
        entity_ids=incidence.entity_ids,
    )
