"""Site-size power law and its calibration.

The number of entities a site mentions follows a power law in the
site's rank: the top aggregator covers a large fraction of the database
(``head_coverage``), and the s-th largest site covers
``head_coverage * s**-size_exponent`` of it, floored at one entity.

Table 2 of the paper reports the *average number of sites mentioning an
entity* for every (domain, attribute) pair — from 8 (book ISBNs) up to
251 (library homepages).  That average equals ``total_edges /
n_mentioned_entities``, and total edges are fully determined by the
size curve; so instead of hand-tuning the exponent we solve for it:
:func:`calibrate_size_exponent` finds the exponent whose size curve
produces a requested edges-per-entity budget, given the head coverage
and site count.  This single degree of freedom is what makes "phone is
concentrated, homepage is spread out" reproducible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SiteSizeModel", "calibrate_size_exponent"]


def _sizes_for(
    n_entities: int,
    n_sites: int,
    head_coverage: float,
    exponent: float,
) -> np.ndarray:
    """Site sizes (entities per site) for a given exponent, floored at 1."""
    ranks = np.arange(1, n_sites + 1, dtype=np.float64)
    raw = n_entities * head_coverage * ranks**-exponent
    return np.maximum(1, np.round(raw)).astype(np.int64)


def calibrate_size_exponent(
    n_entities: int,
    n_sites: int,
    head_coverage: float,
    target_edges_per_entity: float,
    lo: float = 0.05,
    hi: float = 4.0,
    tol: float = 1e-4,
) -> float:
    """Solve for the size exponent hitting an edges-per-entity budget.

    The mean edge count per entity, ``sum(sizes) / n_entities``, is
    strictly decreasing in the exponent (until the floor at 1 entity per
    site dominates), so a bisection suffices.

    Args:
        n_entities: Database size N.
        n_sites: Number of sites S.
        head_coverage: Fraction of N covered by the top site.
        target_edges_per_entity: Table 2's "Avg. #sites per entity".
        lo, hi: Bisection bracket for the exponent.
        tol: Bracket width at which to stop.

    Returns:
        The calibrated exponent.

    Raises:
        ValueError: If the target is unreachable within the bracket —
            e.g. asking for 200 edges/entity from 100 sites whose top
            site covers 10% of the database.
    """
    if n_entities <= 0 or n_sites <= 0:
        raise ValueError("n_entities and n_sites must be positive")
    if not 0.0 < head_coverage <= 1.0:
        raise ValueError("head_coverage must be in (0, 1]")
    if target_edges_per_entity <= 0:
        raise ValueError("target_edges_per_entity must be positive")

    def mean_edges(exponent: float) -> float:
        return _sizes_for(n_entities, n_sites, head_coverage, exponent).sum() / (
            n_entities
        )

    edges_lo, edges_hi = mean_edges(lo), mean_edges(hi)
    if not edges_hi <= target_edges_per_entity <= edges_lo:
        raise ValueError(
            f"target {target_edges_per_entity:.2f} edges/entity is outside "
            f"the reachable range [{edges_hi:.2f}, {edges_lo:.2f}] for "
            f"N={n_entities}, S={n_sites}, head_coverage={head_coverage}"
        )
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if mean_edges(mid) > target_edges_per_entity:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


@dataclass(frozen=True)
class SiteSizeModel:
    """A calibrated site-size curve.

    Attributes:
        n_entities: Database size N.
        n_sites: Number of sites S.
        head_coverage: Fraction of N the top site mentions.
        exponent: Power-law exponent of size vs. rank.
    """

    n_entities: int
    n_sites: int
    head_coverage: float
    exponent: float

    @classmethod
    def calibrated(
        cls,
        n_entities: int,
        n_sites: int,
        head_coverage: float,
        target_edges_per_entity: float,
    ) -> "SiteSizeModel":
        """Build a model whose total edges hit the Table 2 target."""
        exponent = calibrate_size_exponent(
            n_entities, n_sites, head_coverage, target_edges_per_entity
        )
        return cls(
            n_entities=n_entities,
            n_sites=n_sites,
            head_coverage=head_coverage,
            exponent=exponent,
        )

    def sizes(self) -> np.ndarray:
        """Entities-per-site, largest first, ``int64[n_sites]``."""
        return _sizes_for(
            self.n_entities, self.n_sites, self.head_coverage, self.exponent
        )

    def edges_per_entity(self) -> float:
        """Mean incidences per entity implied by the size curve."""
        return float(self.sizes().sum()) / self.n_entities
