"""Review / non-review page text generator.

The paper detects restaurant reviews by taking every page containing a
matching restaurant phone number and running "a Naïve-Bayes classifier
over the textual content" (Section 3.2).  To exercise that path we need
page text in two classes that are *separable but noisy*: review prose
(first-person, sentiment-laden, aspect words) and directory boilerplate
(hours, categories, payment methods).  The two classes deliberately
share a common vocabulary so the classifier operates below 100%
accuracy, as any real classifier would.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReviewTextGenerator"]

_COMMON = (
    "the", "a", "and", "to", "of", "in", "for", "with", "on", "at",
    "restaurant", "place", "food", "menu", "location", "staff", "table",
    "local", "open", "day", "time", "city", "street", "area",
)

_REVIEW_OPENERS = (
    "i visited last weekend and",
    "my wife and i stopped by and",
    "we came here for dinner and",
    "after reading other reviews i",
    "honestly i did not expect much but",
    "this was our third visit and",
)

_REVIEW_CORE = (
    "loved", "enjoyed", "hated", "recommend", "disappointed", "amazing",
    "delicious", "terrible", "friendly", "rude", "cozy", "noisy",
    "overpriced", "fresh", "bland", "fantastic", "awful", "perfect",
    "slow", "attentive", "flavorful", "greasy", "charming", "mediocre",
)

_REVIEW_ASPECTS = (
    "service", "ambiance", "portions", "dessert", "appetizers", "wine",
    "pasta", "steak", "seafood", "brunch", "cocktails", "atmosphere",
)

_REVIEW_CLOSERS = (
    "will definitely come back.",
    "would not return.",
    "five stars from me.",
    "two stars at best.",
    "worth every penny.",
    "save your money.",
)

_LISTING_CORE = (
    "hours", "monday", "friday", "sunday", "directions", "parking",
    "accepts", "credit", "cards", "categories", "established", "owner",
    "contact", "fax", "website", "zip", "suite", "county", "license",
    "wheelchair", "accessible", "reservations", "takeout", "delivery",
)

_LISTING_TEMPLATES = (
    "business hours monday through friday 9am to 5pm.",
    "categories listed under local services directory.",
    "accepts all major credit cards and cash.",
    "parking available on premises and street.",
    "contact the owner for reservations and directions.",
    "established business serving the local area.",
)


class ReviewTextGenerator:
    """Deterministic generator of review and directory page text."""

    def __init__(self, rng: np.random.Generator | int = 0) -> None:
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self._rng = rng

    def _pick(self, words: tuple[str, ...], count: int) -> list[str]:
        idx = self._rng.integers(len(words), size=count)
        return [words[int(i)] for i in idx]

    def review(self, entity_name: str, sentences: int = 4) -> str:
        """First-person review prose about ``entity_name``."""
        rng = self._rng
        parts = [
            _REVIEW_OPENERS[int(rng.integers(len(_REVIEW_OPENERS)))],
            f"the {self._pick(_REVIEW_ASPECTS, 1)[0]} at {entity_name} was",
        ]
        for _ in range(max(1, sentences - 2)):
            words = (
                self._pick(_REVIEW_CORE, 2)
                + self._pick(_REVIEW_ASPECTS, 1)
                + self._pick(_COMMON, 3)
            )
            rng.shuffle(words)
            parts.append(" ".join(words) + ".")
        parts.append(_REVIEW_CLOSERS[int(rng.integers(len(_REVIEW_CLOSERS)))])
        return " ".join(parts)

    def non_review(self, entity_name: str, sentences: int = 4) -> str:
        """Directory/listing boilerplate mentioning ``entity_name``."""
        rng = self._rng
        parts = [f"{entity_name} business listing."]
        for _ in range(max(1, sentences - 1)):
            if rng.random() < 0.6:
                template = _LISTING_TEMPLATES[
                    int(rng.integers(len(_LISTING_TEMPLATES)))
                ]
                parts.append(template)
            else:
                words = self._pick(_LISTING_CORE, 3) + self._pick(_COMMON, 3)
                rng.shuffle(words)
                parts.append(" ".join(words) + ".")
        return " ".join(parts)

    def labeled_corpus(
        self, n_documents: int, review_fraction: float = 0.5
    ) -> list[tuple[str, bool]]:
        """Labeled (text, is_review) pairs for classifier training.

        Args:
            n_documents: Total documents to generate.
            review_fraction: Probability a document is a review.
        """
        if not 0.0 <= review_fraction <= 1.0:
            raise ValueError("review_fraction must be in [0, 1]")
        documents = []
        for i in range(n_documents):
            name = f"sample business {i}"
            if self._rng.random() < review_fraction:
                documents.append((self.review(name), True))
            else:
                documents.append((self.non_review(name), False))
        return documents
