"""k-means clustering with k-means++ seeding, from scratch.

Standard Lloyd iterations on Euclidean distance; since the site vectors
are L2-normalized TF-IDF rows, Euclidean k-means is equivalent to
spherical (cosine) k-means up to the usual monotone transform.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's algorithm with k-means++ initialization and restarts.

    Args:
        n_clusters: Number of clusters k.
        n_init: Independent restarts; the best inertia wins.
        max_iter: Lloyd iterations per restart.
        tol: Centroid-movement convergence threshold.
        seed: RNG seed.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 5,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        if n_init < 1 or max_iter < 1:
            raise ValueError("n_init and max_iter must be positive")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self.inertia: float = np.inf

    @staticmethod
    def _distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Squared Euclidean distances, points × centroids."""
        return (
            np.sum(points**2, axis=1, keepdims=True)
            - 2.0 * points @ centroids.T
            + np.sum(centroids**2, axis=1)
        )

    def _init_plus_plus(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        n = len(points)
        centroids = [points[int(rng.integers(n))]]
        while len(centroids) < self.n_clusters:
            distances = self._distances(points, np.asarray(centroids)).min(axis=1)
            distances = np.maximum(distances, 0.0)
            total = distances.sum()
            if total <= 0:
                pick = int(rng.integers(n))
            else:
                pick = int(
                    np.searchsorted(
                        np.cumsum(distances / total), rng.random()
                    )
                )
                pick = min(pick, n - 1)
            centroids.append(points[pick])
        return np.asarray(centroids)

    def _lloyd(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float]:
        centroids = self._init_plus_plus(points, rng)
        labels = np.zeros(len(points), dtype=np.int64)
        for _ in range(self.max_iter):
            distances = self._distances(points, centroids)
            labels = np.argmin(distances, axis=1)
            moved = 0.0
            new_centroids = centroids.copy()
            for cluster in range(self.n_clusters):
                members = points[labels == cluster]
                if len(members) == 0:
                    # re-seed an empty cluster at the farthest point
                    farthest = int(np.argmax(distances.min(axis=1)))
                    new_centroids[cluster] = points[farthest]
                    moved = np.inf
                    continue
                centroid = members.mean(axis=0)
                moved = max(
                    moved, float(np.linalg.norm(centroid - centroids[cluster]))
                )
                new_centroids[cluster] = centroid
            centroids = new_centroids
            if moved <= self.tol:
                break
        inertia = float(
            self._distances(points, centroids)[
                np.arange(len(points)), labels
            ].sum()
        )
        return centroids, labels, inertia

    def fit(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points``; returns the label per row."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty 2-D array")
        if len(points) < self.n_clusters:
            raise ValueError("need at least n_clusters points")
        rng = np.random.default_rng(self.seed)
        best_labels: np.ndarray | None = None
        for _ in range(self.n_init):
            centroids, labels, inertia = self._lloyd(points, rng)
            if inertia < self.inertia:
                self.centroids = centroids
                self.inertia = inertia
                best_labels = labels
        assert best_labels is not None
        return best_labels

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Assign new points to the fitted centroids."""
        if self.centroids is None:
            raise RuntimeError("model is not fitted; call fit() first")
        points = np.asarray(points, dtype=np.float64)
        return np.argmin(self._distances(points, self.centroids), axis=1)
