"""Clustering substrate: grouping websites by content.

The paper's end-to-end challenge (Section 1) lists "automatic crawling,
*clustering*, extraction, deduplication and linking".  In a
domain-centric pipeline, clustering separates candidate sources — does
this host carry restaurant listings, book catalogues, or unrelated
content? — before expensive per-site wrapping.  This package builds
that step from scratch:

- :mod:`repro.clustering.tfidf` — a TF-IDF vectorizer.
- :mod:`repro.clustering.kmeans` — k-means with k-means++ seeding and
  restarts.
- :mod:`repro.clustering.sites` — host-level document construction from
  a crawl cache and the site clusterer with purity evaluation.
"""

from repro.clustering.classify import SiteClassification, SiteClassifier
from repro.clustering.kmeans import KMeans
from repro.clustering.sites import SiteClusterer, cluster_purity
from repro.clustering.tfidf import TfidfVectorizer

__all__ = [
    "KMeans",
    "SiteClassification",
    "SiteClassifier",
    "SiteClusterer",
    "TfidfVectorizer",
    "cluster_purity",
]
