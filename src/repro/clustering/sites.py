"""Host-level clustering over a crawl cache.

Builds one document per host (the concatenated visible text of its
pages), vectorizes with TF-IDF, and clusters with k-means — the
source-triage step of a domain-centric pipeline: restaurant directories
cluster away from book catalogues and from noise archives before any
per-site wrapper is spent on them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.clustering.tfidf import TfidfVectorizer
from repro.crawl.cache import WebCache
from repro.extract.reviews import strip_tags

__all__ = ["SiteClusterer", "SiteClusters", "cluster_purity"]


@dataclass(frozen=True)
class SiteClusters:
    """Clustering result over the hosts of a cache.

    Attributes:
        hosts: Hosts in the order they were clustered.
        labels: Cluster id per host.
        n_clusters: Number of clusters.
    """

    hosts: list[str]
    labels: np.ndarray
    n_clusters: int

    def members(self, cluster: int) -> list[str]:
        """Hosts assigned to one cluster."""
        return [
            host for host, label in zip(self.hosts, self.labels) if label == cluster
        ]

    def assignment(self) -> dict[str, int]:
        """Host → cluster id."""
        return {host: int(label) for host, label in zip(self.hosts, self.labels)}


class SiteClusterer:
    """Clusters the hosts of a crawl cache by page content.

    Args:
        n_clusters: Number of content groups to form.
        max_pages_per_host: Cap on pages concatenated per host document
            (head aggregators would otherwise dominate fitting time).
        max_features: TF-IDF vocabulary cap.
        seed: RNG seed for k-means.
    """

    def __init__(
        self,
        n_clusters: int = 2,
        max_pages_per_host: int = 20,
        max_features: int = 1500,
        seed: int = 0,
    ) -> None:
        if max_pages_per_host < 1:
            raise ValueError("max_pages_per_host must be positive")
        self.n_clusters = n_clusters
        self.max_pages_per_host = max_pages_per_host
        self.max_features = max_features
        self.seed = seed

    def host_documents(self, cache: WebCache) -> tuple[list[str], list[str]]:
        """Build one text document per host.

        Returns:
            ``(hosts, documents)`` aligned lists.
        """
        hosts: list[str] = []
        documents: list[str] = []
        for host, pages in cache.scan():
            text = " ".join(
                strip_tags(page.content)
                for page in pages[: self.max_pages_per_host]
            )
            hosts.append(host)
            documents.append(text)
        return hosts, documents

    def cluster(self, cache: WebCache) -> SiteClusters:
        """Cluster every host of ``cache`` by its page text."""
        hosts, documents = self.host_documents(cache)
        if len(hosts) < self.n_clusters:
            raise ValueError(
                f"cache has {len(hosts)} hosts, need >= {self.n_clusters}"
            )
        vectors = TfidfVectorizer(max_features=self.max_features).fit_transform(
            documents
        )
        model = KMeans(n_clusters=self.n_clusters, seed=self.seed)
        labels = model.fit(vectors)
        return SiteClusters(hosts=hosts, labels=labels, n_clusters=self.n_clusters)


def cluster_purity(
    clusters: SiteClusters, truth_labels: dict[str, str]
) -> float:
    """Purity of a clustering against ground-truth host labels.

    Purity = (sum over clusters of the majority-label count) / hosts.
    1.0 means every cluster is homogeneous.
    """
    if not truth_labels:
        raise ValueError("truth_labels must be non-empty")
    total = 0
    majority_sum = 0
    for cluster in range(clusters.n_clusters):
        members = clusters.members(cluster)
        labels = [truth_labels[host] for host in members if host in truth_labels]
        if not labels:
            continue
        total += len(labels)
        majority_sum += Counter(labels).most_common(1)[0][1]
    if total == 0:
        raise ValueError("no clustered host has a truth label")
    return majority_sum / total
