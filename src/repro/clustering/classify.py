"""Supervised site classification from a handful of labeled hosts.

The unsupervised clusterer groups hosts without names; in practice a
domain-centric pipeline starts from a few *known* sources per class
(the head aggregators one would wrap manually anyway) and wants every
other crawled host labeled: restaurants-like, books-like, irrelevant.
:class:`SiteClassifier` does that with a Rocchio-style nearest-centroid
model over TF-IDF host documents — tiny training sets are exactly where
centroid methods beat fancier models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.sites import SiteClusterer
from repro.clustering.tfidf import TfidfVectorizer
from repro.crawl.cache import WebCache

__all__ = ["SiteClassification", "SiteClassifier"]


@dataclass(frozen=True)
class SiteClassification:
    """Labels assigned to the hosts of a cache.

    Attributes:
        hosts: Hosts in classification order.
        labels: Predicted class label per host.
        confidences: Cosine similarity to the winning centroid.
    """

    hosts: list[str]
    labels: list[str]
    confidences: np.ndarray

    def assignment(self) -> dict[str, str]:
        """Host → predicted label."""
        return dict(zip(self.hosts, self.labels))

    def accuracy(self, truth: dict[str, str]) -> float:
        """Accuracy against ground-truth host labels (on labeled hosts)."""
        if not truth:
            raise ValueError("truth must be non-empty")
        scored = [
            (predicted, truth[host])
            for host, predicted in zip(self.hosts, self.labels)
            if host in truth
        ]
        if not scored:
            raise ValueError("no classified host has a truth label")
        return sum(1 for p, t in scored if p == t) / len(scored)


class SiteClassifier:
    """Nearest-centroid host classifier over TF-IDF documents.

    Args:
        max_features: TF-IDF vocabulary cap.
        max_pages_per_host: Pages concatenated per host document.
        min_confidence: Below this cosine similarity a host is labeled
            ``"unknown"`` rather than forced into a class.
    """

    def __init__(
        self,
        max_features: int = 1500,
        max_pages_per_host: int = 20,
        min_confidence: float = 0.05,
    ) -> None:
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        self.max_features = max_features
        self.max_pages_per_host = max_pages_per_host
        self.min_confidence = min_confidence
        self._vectorizer: TfidfVectorizer | None = None
        self._centroids: dict[str, np.ndarray] = {}

    def _documents(self, cache: WebCache) -> tuple[list[str], list[str]]:
        clusterer = SiteClusterer(
            max_pages_per_host=self.max_pages_per_host,
            max_features=self.max_features,
        )
        return clusterer.host_documents(cache)

    def fit(self, cache: WebCache, seed_labels: dict[str, str]) -> "SiteClassifier":
        """Learn class centroids from labeled seed hosts.

        Args:
            cache: The crawl holding the seed hosts' pages.
            seed_labels: Host → class for at least two hosts covering at
                least one class.
        """
        if not seed_labels:
            raise ValueError("seed_labels must be non-empty")
        hosts, documents = self._documents(cache)
        by_host = dict(zip(hosts, documents))
        missing = [host for host in seed_labels if host not in by_host]
        if missing:
            raise ValueError(f"seed hosts not in cache: {missing}")
        self._vectorizer = TfidfVectorizer(max_features=self.max_features).fit(
            documents
        )
        classes: dict[str, list[str]] = {}
        for host, label in seed_labels.items():
            classes.setdefault(label, []).append(by_host[host])
        self._centroids = {}
        for label, docs in classes.items():
            vectors = self._vectorizer.transform(docs)
            centroid = vectors.mean(axis=0)
            norm = np.linalg.norm(centroid)
            self._centroids[label] = centroid / norm if norm else centroid
        return self

    def classify(self, cache: WebCache) -> SiteClassification:
        """Label every host of ``cache``."""
        if self._vectorizer is None or not self._centroids:
            raise RuntimeError("classifier is not fitted; call fit() first")
        hosts, documents = self._documents(cache)
        vectors = self._vectorizer.transform(documents)
        labels = []
        confidences = np.zeros(len(hosts))
        class_names = sorted(self._centroids)
        centroid_matrix = np.stack(
            [self._centroids[name] for name in class_names]
        )
        similarities = vectors @ centroid_matrix.T  # rows are L2-normalized
        for row in range(len(hosts)):
            best = int(np.argmax(similarities[row]))
            confidence = float(similarities[row, best])
            confidences[row] = confidence
            if confidence < self.min_confidence:
                labels.append("unknown")
            else:
                labels.append(class_names[best])
        return SiteClassification(
            hosts=hosts, labels=labels, confidences=confidences
        )
