"""TF-IDF vectorization, from scratch.

Term frequency is sublinear (``1 + log(tf)``), inverse document
frequency is smoothed (``log((1 + N) / (1 + df)) + 1``), and rows are
L2-normalized — the standard recipe, implemented on plain numpy with a
capped vocabulary.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

from repro.extract.naive_bayes import tokenize

__all__ = ["TfidfVectorizer"]


class TfidfVectorizer:
    """Fits a vocabulary + IDF weights; transforms text to dense rows.

    Args:
        max_features: Keep only the most document-frequent terms.
        min_df: Drop terms appearing in fewer than this many documents.
    """

    def __init__(self, max_features: int = 2000, min_df: int = 1) -> None:
        if max_features < 1:
            raise ValueError("max_features must be positive")
        if min_df < 1:
            raise ValueError("min_df must be positive")
        self.max_features = max_features
        self.min_df = min_df
        self._vocabulary: dict[str, int] = {}
        self._idf: np.ndarray | None = None

    @property
    def vocabulary(self) -> dict[str, int]:
        """Term → column index (after fit)."""
        return dict(self._vocabulary)

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights."""
        if not documents:
            raise ValueError("cannot fit on zero documents")
        document_frequency: Counter[str] = Counter()
        for document in documents:
            document_frequency.update(set(tokenize(document)))
        kept = [
            (term, df)
            for term, df in document_frequency.items()
            if df >= self.min_df
        ]
        kept.sort(key=lambda item: (-item[1], item[0]))
        kept = kept[: self.max_features]
        if not kept:
            raise ValueError("vocabulary is empty after min_df filtering")
        self._vocabulary = {term: i for i, (term, _) in enumerate(kept)}
        n = len(documents)
        self._idf = np.array(
            [
                math.log((1 + n) / (1 + df)) + 1.0
                for _, df in kept
            ]
        )
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Vectorize documents to L2-normalized TF-IDF rows."""
        if self._idf is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        matrix = np.zeros((len(documents), len(self._vocabulary)))
        for row, document in enumerate(documents):
            counts = Counter(
                token for token in tokenize(document) if token in self._vocabulary
            )
            for term, count in counts.items():
                column = self._vocabulary[term]
                matrix[row, column] = (1.0 + math.log(count)) * self._idf[column]
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return matrix / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit and transform in one pass."""
        return self.fit(documents).transform(documents)
