"""End-to-end extraction: crawl cache → incidence.

The paper's full scan (Section 3.1): "we go through the entire Web
cache and look for the identifying attributes of the entities on each
page.  We group pages by hosts, and for each host, we aggregate the set
of entities found on all the pages in that host."
:class:`ExtractionRunner` does exactly that over a
:class:`~repro.crawl.cache.WebCache`, dispatching to the right matcher
per attribute, and returns the same
:class:`~repro.core.incidence.BipartiteIncidence` the generative path
produces — so the analyses run unchanged on extracted data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.incidence import BipartiteIncidence
from repro.crawl.cache import WebCache
from repro.crawl.hostindex import HostIndex
from repro.entities.catalog import EntityDatabase
from repro.entities.domains import (
    ATTRIBUTE_HOMEPAGE,
    ATTRIBUTE_ISBN,
    ATTRIBUTE_PHONE,
    ATTRIBUTE_REVIEWS,
)
from repro.extract.homepages import extract_homepages
from repro.extract.isbn import extract_isbns
from repro.extract.phones import extract_phones
from repro.extract.reviews import ReviewDetector

__all__ = ["ExtractionRunner", "ExtractionStats"]


@dataclass
class ExtractionStats:
    """Bookkeeping from one extraction run."""

    pages_scanned: int = 0
    pages_with_matches: int = 0
    candidate_matches: int = 0
    database_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of candidate matches that joined a database key."""
        if self.candidate_matches == 0:
            return 0.0
        return self.database_hits / self.candidate_matches


class ExtractionRunner:
    """Scans a web cache for one attribute of one entity database.

    Args:
        database: Entities whose identifying attributes to look for.
        attribute: One of ``phone``, ``homepage``, ``isbn``,
            ``reviews``.
        review_detector: Required for the ``reviews`` attribute; built
            automatically (with default training) when omitted.
    """

    def __init__(
        self,
        database: EntityDatabase,
        attribute: str,
        review_detector: ReviewDetector | None = None,
    ) -> None:
        if attribute not in (
            ATTRIBUTE_PHONE,
            ATTRIBUTE_HOMEPAGE,
            ATTRIBUTE_ISBN,
            ATTRIBUTE_REVIEWS,
        ):
            raise ValueError(f"unsupported attribute {attribute!r}")
        self.database = database
        self.attribute = attribute
        if attribute == ATTRIBUTE_REVIEWS and review_detector is None:
            review_detector = ReviewDetector.trained(database)
        self.review_detector = review_detector
        self.stats = ExtractionStats()

    # -- per-page matching -----------------------------------------------------

    def _match_keys(self, content: str) -> set[str]:
        """Candidate canonical keys found on one page."""
        if self.attribute == ATTRIBUTE_PHONE:
            return extract_phones(content)
        if self.attribute == ATTRIBUTE_HOMEPAGE:
            return extract_homepages(content)
        return extract_isbns(content)

    def entities_on_page(self, content: str) -> set[str]:
        """Entity ids present on one page (review pages: only reviews)."""
        if self.attribute == ATTRIBUTE_REVIEWS:
            assert self.review_detector is not None
            return self.review_detector.review_entities(content)
        keys = self._match_keys(content)
        self.stats.candidate_matches += len(keys)
        hits = set()
        for key in keys:
            entity_id = self.database.lookup(self.attribute, key)
            if entity_id is not None:
                hits.add(entity_id)
        self.stats.database_hits += len(hits)
        return hits

    # -- full scan -----------------------------------------------------------------

    def run(self, cache: WebCache, with_multiplicity: bool = False) -> BipartiteIncidence:
        """Scan every page, aggregate per host, return the incidence.

        Args:
            cache: The crawl to scan.
            with_multiplicity: Record pages-per-(host, entity) counts —
                used by the aggregate-review analysis.
        """
        index = HostIndex(self.database)
        for host, pages in cache.scan():
            for page in pages:
                self.stats.pages_scanned += 1
                entity_ids = self.entities_on_page(page.content)
                if entity_ids:
                    self.stats.pages_with_matches += 1
                    index.record_page(host, entity_ids)
        return index.to_incidence(with_multiplicity=with_multiplicity)
