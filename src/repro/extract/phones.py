"""US phone number extraction.

Implements the paper's "standard regular expression based US phone
number extractor": a NANP-shaped pattern over the page text, followed
by normalization and validity filtering (area code / exchange rules).
False-positive behaviour matters for the study's error analysis
(Section 3.5): a random 10-digit number with a 0/1 prefix must *not*
match, and numbers that pass the shape test still only count when they
hit a database key.
"""

from __future__ import annotations

import re

from repro.entities.ids import is_valid_nanp_phone

__all__ = ["extract_phones", "PHONE_PATTERN"]

#: NANP phone shapes: optional +1 / 1 country code, optional parentheses
#: around the area code, separators in {-, ., space, none}.  Guarded so a
#: match cannot start or end inside a longer digit run.
PHONE_PATTERN = re.compile(
    r"""
    (?<![\d-])                 # no digit (or dash) immediately before
    (?:\+?1[-.\s]?)?           # optional country code
    (?:\((\d{3})\)[\s.-]?      # (NXX)
      | (\d{3})[\s.-]?         # or NXX
    )
    (\d{3})                    # exchange
    [\s.-]?
    (\d{4})                    # subscriber
    (?!\d)                     # no digit immediately after
    """,
    re.VERBOSE,
)


def extract_phones(text: str) -> set[str]:
    """Extract canonical 10-digit phone numbers from page text.

    Returns the set of *valid* NANP numbers found; invalid shapes
    (area code or exchange starting with 0/1, N11 area codes) are
    dropped by the same validity predicate the database generator uses.
    """
    found: set[str] = set()
    for match in PHONE_PATTERN.finditer(text):
        area = match.group(1) or match.group(2)
        digits = f"{area}{match.group(3)}{match.group(4)}"
        if is_valid_nanp_phone(digits):
            found.add(digits)
    return found
