"""ISBN extraction with contextual anchoring.

The paper's book matcher looks "for matches to one of the ISBN numbers
from our database, formatted either as a 10-digit or a 13-digit ISBN,
along with the string 'ISBN' in a small window near the match"
(Section 3.2).  This module implements exactly that: candidate 10/13
character digit groups (hyphen/space separated), checksum validation,
normalization to ISBN-13, and the "ISBN" context-window requirement.
"""

from __future__ import annotations

import re

from repro.entities.ids import is_valid_isbn10, is_valid_isbn13, normalize_isbn

__all__ = ["extract_isbns", "ISBN_CANDIDATE_PATTERN"]

#: Digit groups of total length 10 or 13 with optional hyphen/space
#: separators; the trailing character of an ISBN-10 may be X.
ISBN_CANDIDATE_PATTERN = re.compile(
    r"(?<![\dX-])((?:\d[\s-]?){9}[\dXx]|(?:\d[\s-]?){12}\d)(?![\dXx])"
)

_SEPARATORS = re.compile(r"[\s-]+")


def extract_isbns(text: str, context_window: int = 40) -> set[str]:
    """Extract canonical ISBN-13s anchored by a nearby "ISBN" marker.

    Args:
        text: Page text or HTML.
        context_window: Number of characters before/after the candidate
            in which the (case-insensitive) string ``ISBN`` must occur —
            the paper's "small window near the match".

    Returns:
        The set of checksum-valid ISBNs, in compact ISBN-13 form.
    """
    if context_window < 0:
        raise ValueError("context_window must be non-negative")
    upper = text.upper()
    found: set[str] = set()
    for match in ISBN_CANDIDATE_PATTERN.finditer(text):
        compact = _SEPARATORS.sub("", match.group(1)).upper()
        if len(compact) == 10:
            if not is_valid_isbn10(compact):
                continue
        elif len(compact) == 13:
            if not is_valid_isbn13(compact):
                continue
        else:
            continue
        lo = max(0, match.start() - context_window)
        hi = min(len(text), match.end() + context_window)
        if "ISBN" not in upper[lo:hi]:
            continue
        found.add(normalize_isbn(compact))
    return found
