"""Unsupervised wrapper induction over structured listing pages.

The paper's methodology deliberately avoids full extraction by matching
identifying attributes, but its discussion leans on the feasibility of
"unsupervised site extraction" (RoadRunner, Dalvi et al.'s automatic
wrappers, and friends): aggregator pages are machine-generated from
templates, so their records share HTML structure, and that *structural
redundancy within websites* is learnable without labels.

This module implements the core of that idea at small scale:

1. parse a page into a DOM tree (stdlib ``HTMLParser``),
2. compute a structural *signature* for every subtree,
3. find the largest set of sibling subtrees with identical signatures —
   those are the template's records,
4. emit one record per repeat, with fields keyed by the tag path inside
   the record, and
5. type the fields with cheap recognizers (phone, heading/name, other).

On the synthetic aggregator pages this recovers the listing blocks the
renderer produced — including the per-record phone — without ever being
told the template.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

from repro.extract.phones import extract_phones

__all__ = ["InducedWrapper", "WrapperInducer", "WrapperRecord"]

_VOID_TAGS = {
    "br", "hr", "img", "input", "link", "meta", "area", "base", "col",
    "embed", "source", "track", "wbr",
}


@dataclass
class _Node:
    """One DOM element: tag, class attribute, children, own text chunks."""

    tag: str
    css_class: str = ""
    children: list["_Node"] = field(default_factory=list)
    texts: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        """Path label: tag plus class (templates key on both)."""
        return f"{self.tag}.{self.css_class}" if self.css_class else self.tag


class _TreeBuilder(HTMLParser):
    """Builds the ``_Node`` tree, tolerant of unclosed tags."""

    def __init__(self) -> None:
        super().__init__()
        self.root = _Node(tag="#root")
        self._stack = [self.root]

    def handle_starttag(self, tag, attrs):
        css_class = dict(attrs).get("class") or ""
        node = _Node(tag=tag, css_class=css_class)
        self._stack[-1].children.append(node)
        if tag not in _VOID_TAGS:
            self._stack.append(node)

    def handle_endtag(self, tag):
        for depth in range(len(self._stack) - 1, 0, -1):
            if self._stack[depth].tag == tag:
                del self._stack[depth:]
                return
        # stray end tag: ignore

    def handle_data(self, data):
        text = data.strip()
        if text:
            self._stack[-1].texts.append(text)


def _signature(node: _Node) -> tuple:
    """Structural signature: label + ordered child signatures.

    Text content is excluded — records share structure, not values.
    """
    return (node.label, tuple(_signature(child) for child in node.children))


def _subtree_size(node: _Node) -> int:
    return 1 + sum(_subtree_size(child) for child in node.children)


def _collect_fields(node: _Node, prefix: str, out: dict[str, str]) -> None:
    path = f"{prefix}/{node.label}" if prefix else node.label
    if node.texts:
        joined = " ".join(node.texts)
        out[path] = f"{out[path]} {joined}" if path in out else joined
    for child in node.children:
        _collect_fields(child, path, out)


@dataclass(frozen=True)
class WrapperRecord:
    """One extracted record: raw fields plus typed conveniences."""

    fields: dict[str, str]

    @property
    def phone(self) -> str | None:
        """Canonical phone found in any field, if exactly one exists."""
        phones: set[str] = set()
        for value in self.fields.values():
            phones |= extract_phones(value)
        if len(phones) == 1:
            return next(iter(phones))
        return None

    @property
    def name(self) -> str | None:
        """Heading-field text (h1/h2/h3), the conventional name slot."""
        for path in sorted(self.fields):
            tail = path.rsplit("/", 1)[-1].split(".")[0]
            if tail in ("h1", "h2", "h3"):
                return self.fields[path]
        return None


@dataclass(frozen=True)
class InducedWrapper:
    """The induction result for one page.

    Attributes:
        record_signature: Shared structural signature of the records.
        record_count: Number of template repeats found.
        records: The extracted records, in document order.
    """

    record_signature: tuple
    record_count: int
    records: list[WrapperRecord]

    @property
    def field_paths(self) -> list[str]:
        """Union of field paths across records (the induced schema)."""
        paths: set[str] = set()
        for record in self.records:
            paths.update(record.fields)
        return sorted(paths)


class WrapperInducer:
    """Finds the dominant repeated structure on a page.

    Args:
        min_repeats: Minimum sibling repeats to call something a
            template (2 suffices for aggregator pages; singletons are
            navigation, not records).
    """

    def __init__(self, min_repeats: int = 2) -> None:
        if min_repeats < 2:
            raise ValueError("min_repeats must be >= 2")
        self.min_repeats = min_repeats

    def induce(self, html: str) -> InducedWrapper | None:
        """Induce the page's record template, or None if unstructured."""
        builder = _TreeBuilder()
        builder.feed(html)
        best: tuple[int, tuple, list[_Node]] | None = None

        def visit(node: _Node) -> None:
            nonlocal best
            groups: dict[tuple, list[_Node]] = {}
            for child in node.children:
                groups.setdefault(_signature(child), []).append(child)
            for signature, members in groups.items():
                if len(members) < self.min_repeats:
                    continue
                weight = len(members) * _subtree_size(members[0])
                if best is None or weight > best[0]:
                    best = (weight, signature, members)
            for child in node.children:
                visit(child)

        visit(builder.root)
        if best is None:
            return None
        __, signature, members = best
        records = []
        for member in members:
            fields: dict[str, str] = {}
            _collect_fields(member, "", fields)
            records.append(WrapperRecord(fields=fields))
        return InducedWrapper(
            record_signature=signature,
            record_count=len(records),
            records=records,
        )
