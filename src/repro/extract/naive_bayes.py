"""Multinomial Naïve-Bayes text classifier, from scratch.

The paper detects review content with "a Naïve-Bayes classifier over
the textual content" (Section 3.2).  This is that classifier: bag of
words, multinomial likelihood, Laplace smoothing, log-space scoring.
No learning library is used — the implementation is ~100 lines and is
exercised end-to-end by the review-detection pipeline.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Iterable, Sequence

__all__ = ["NaiveBayesClassifier", "tokenize"]

_TOKEN = re.compile(r"[a-z']+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens (letters and apostrophes)."""
    return _TOKEN.findall(text.lower())


class NaiveBayesClassifier:
    """Binary multinomial Naïve Bayes with Laplace smoothing.

    Labels are booleans (True = positive class, e.g. "is a review").

    Args:
        smoothing: Laplace/Lidstone pseudo-count added per vocabulary
            word in each class.
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = smoothing
        self._fitted = False
        self._vocabulary: set[str] = set()
        self._log_prior: dict[bool, float] = {}
        self._log_likelihood: dict[bool, dict[str, float]] = {}
        self._log_unseen: dict[bool, float] = {}

    def fit(
        self, documents: Sequence[str], labels: Sequence[bool]
    ) -> "NaiveBayesClassifier":
        """Estimate priors and per-class word distributions.

        Raises:
            ValueError: On empty or single-class training data — a
                degenerate classifier would silently label everything
                one way.
        """
        if len(documents) != len(labels):
            raise ValueError("documents and labels must be aligned")
        if not documents:
            raise ValueError("cannot fit on an empty corpus")
        classes = set(bool(label) for label in labels)
        if classes != {True, False}:
            raise ValueError("training data must contain both classes")

        word_counts: dict[bool, Counter[str]] = {True: Counter(), False: Counter()}
        doc_counts: dict[bool, int] = {True: 0, False: 0}
        for document, label in zip(documents, labels):
            label = bool(label)
            doc_counts[label] += 1
            word_counts[label].update(tokenize(document))

        self._vocabulary = set(word_counts[True]) | set(word_counts[False])
        vocab_size = max(len(self._vocabulary), 1)
        total_docs = len(documents)
        for label in (True, False):
            self._log_prior[label] = math.log(doc_counts[label] / total_docs)
            total_words = sum(word_counts[label].values())
            denominator = total_words + self.smoothing * vocab_size
            self._log_likelihood[label] = {
                word: math.log((count + self.smoothing) / denominator)
                for word, count in word_counts[label].items()
            }
            self._log_unseen[label] = math.log(self.smoothing / denominator)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def log_posterior(self, text: str) -> dict[bool, float]:
        """Unnormalized class log-posteriors for a document.

        Tokens outside the training vocabulary are ignored (they carry
        no class signal under the smoothed model and would only shift
        both scores equally).
        """
        self._require_fitted()
        scores = dict(self._log_prior)
        for token in tokenize(text):
            if token not in self._vocabulary:
                continue
            for label in (True, False):
                scores[label] += self._log_likelihood[label].get(
                    token, self._log_unseen[label]
                )
        return scores

    def predict(self, text: str) -> bool:
        """Most likely class for a document."""
        scores = self.log_posterior(text)
        return scores[True] >= scores[False]

    def predict_proba(self, text: str) -> float:
        """P(positive class | document), via a stable log-sum-exp."""
        scores = self.log_posterior(text)
        m = max(scores.values())
        exp_true = math.exp(scores[True] - m)
        exp_false = math.exp(scores[False] - m)
        return exp_true / (exp_true + exp_false)

    def accuracy(
        self, documents: Iterable[str], labels: Iterable[bool]
    ) -> float:
        """Fraction of documents classified correctly."""
        self._require_fitted()
        total = 0
        correct = 0
        for document, label in zip(documents, labels):
            total += 1
            if self.predict(document) == bool(label):
                correct += 1
        if total == 0:
            raise ValueError("cannot score an empty evaluation set")
        return correct / total

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct training tokens."""
        return len(self._vocabulary)
