"""Review detection: phone match + Naïve-Bayes text classification.

The paper's review pipeline (Section 3.2): "we took all pages on the
Web containing a matching restaurant phone number, and used a
Naïve-Bayes classifier over the textual content to determine if a page
has review content."  :class:`ReviewDetector` packages that two-stage
test and ships with a trainer that fits the classifier on synthetic
labeled text from :class:`~repro.webgen.text.ReviewTextGenerator`.
"""

from __future__ import annotations

import re

from repro.entities.catalog import EntityDatabase
from repro.entities.domains import ATTRIBUTE_PHONE
from repro.extract.naive_bayes import NaiveBayesClassifier
from repro.extract.phones import extract_phones

__all__ = ["ReviewDetector", "strip_tags"]

_TAG = re.compile(r"<[^>]+>")


def strip_tags(html: str) -> str:
    """Drop HTML tags, keeping the visible text for classification."""
    return _TAG.sub(" ", html)


class ReviewDetector:
    """Detects (restaurant, review-page) incidences on crawled pages."""

    def __init__(
        self, database: EntityDatabase, classifier: NaiveBayesClassifier
    ) -> None:
        self.database = database
        self.classifier = classifier

    @classmethod
    def trained(
        cls,
        database: EntityDatabase,
        n_training_documents: int = 600,
        seed: int = 12345,
    ) -> "ReviewDetector":
        """Build a detector with a classifier fit on synthetic labels.

        The training text comes from the same generator family that
        renders review pages, but from an independent RNG stream — the
        classifier never sees the evaluation pages themselves.
        """
        # Lazy import by design: training-data synthesis is the one
        # place extraction borrows the corpus generator, and the
        # deferred import keeps webgen out of extract's import time.
        from repro.webgen.text import ReviewTextGenerator  # reprolint: disable=LAY001

        generator = ReviewTextGenerator(seed)
        corpus = generator.labeled_corpus(n_training_documents)
        documents = [text for text, _ in corpus]
        labels = [label for _, label in corpus]
        classifier = NaiveBayesClassifier().fit(documents, labels)
        return cls(database, classifier)

    def detect(self, html: str) -> tuple[set[str], bool]:
        """Classify one page.

        Returns:
            ``(entity_ids, is_review)``: the restaurants whose phone
            numbers appear on the page, and whether the page's text is
            review content.  A page only contributes review incidences
            when both parts fire.
        """
        phones = extract_phones(html)
        entity_ids = set()
        for phone in phones:
            entity_id = self.database.lookup(ATTRIBUTE_PHONE, phone)
            if entity_id is not None:
                entity_ids.add(entity_id)
        if not entity_ids:
            return set(), False
        return entity_ids, self.classifier.predict(strip_tags(html))

    def review_entities(self, html: str) -> set[str]:
        """Entity ids reviewed on this page (empty when not a review)."""
        entity_ids, is_review = self.detect(html)
        return entity_ids if is_review else set()
