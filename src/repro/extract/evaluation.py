"""Extraction-quality evaluation: extracted incidence vs. ground truth.

The synthetic pipeline renders a known incidence into HTML and
re-extracts it, so — unlike the paper, which could only sample-check
precision — we can score extraction exhaustively.  This module compares
two incidences at three granularities:

- **edge level**: (host, entity) pairs — the unit the spread analysis
  consumes;
- **entity level**: which entities were found anywhere at all — the
  unit of 1-coverage;
- **page level** (optional): multiplicity mass, for review corpora.

Precision/recall/F1 at each level, plus the per-site recall
distribution that shows *where* extraction loses facts (head
aggregators vs. tail blogs).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.incidence import BipartiteIncidence

__all__ = ["ExtractionScore", "evaluate_extraction", "per_site_recall"]


def _edge_set(incidence: BipartiteIncidence) -> set[tuple[str, int]]:
    edges = set()
    for s in range(incidence.n_sites):
        host = incidence.site_hosts[s]
        for entity in incidence.site_entities(s).tolist():
            edges.add((host, int(entity)))
    return edges


def _prf(true_positives: int, predicted: int, actual: int) -> tuple[float, float, float]:
    precision = true_positives / predicted if predicted else 0.0
    recall = true_positives / actual if actual else 0.0
    if precision + recall == 0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class ExtractionScore:
    """Precision/recall/F1 of an extraction run at two granularities."""

    edge_precision: float
    edge_recall: float
    edge_f1: float
    entity_precision: float
    entity_recall: float
    entity_f1: float
    n_true_edges: int
    n_extracted_edges: int

    def is_lossless(self, tolerance: float = 1e-9) -> bool:
        """Whether extraction recovered the truth exactly."""
        return (
            self.edge_precision >= 1.0 - tolerance
            and self.edge_recall >= 1.0 - tolerance
        )


def evaluate_extraction(
    extracted: BipartiteIncidence, truth: BipartiteIncidence
) -> ExtractionScore:
    """Score an extracted incidence against its rendered ground truth.

    Both incidences must index the same entity database (same
    ``n_entities``); hosts are compared by name, so the two can have
    different site sets.
    """
    if extracted.n_entities != truth.n_entities:
        raise ValueError("extracted and truth disagree on the entity database")
    true_edges = _edge_set(truth)
    found_edges = _edge_set(extracted)
    edge_tp = len(true_edges & found_edges)
    edge_p, edge_r, edge_f = _prf(edge_tp, len(found_edges), len(true_edges))

    true_entities = set(truth.mentioned_entities().tolist())
    found_entities = set(extracted.mentioned_entities().tolist())
    entity_tp = len(true_entities & found_entities)
    ent_p, ent_r, ent_f = _prf(entity_tp, len(found_entities), len(true_entities))

    return ExtractionScore(
        edge_precision=edge_p,
        edge_recall=edge_r,
        edge_f1=edge_f,
        entity_precision=ent_p,
        entity_recall=ent_r,
        entity_f1=ent_f,
        n_true_edges=len(true_edges),
        n_extracted_edges=len(found_edges),
    )


def per_site_recall(
    extracted: BipartiteIncidence, truth: BipartiteIncidence
) -> dict[str, float]:
    """Recall restricted to each ground-truth site.

    Returns:
        Map host → fraction of that site's true entities recovered.
        Sites with no true entities are omitted.
    """
    if extracted.n_entities != truth.n_entities:
        raise ValueError("extracted and truth disagree on the entity database")
    found_by_host: dict[str, set[int]] = {}
    for s in range(extracted.n_sites):
        found_by_host[extracted.site_hosts[s]] = set(
            extracted.site_entities(s).tolist()
        )
    recalls: dict[str, float] = {}
    for s in range(truth.n_sites):
        entities = truth.site_entities(s)
        if len(entities) == 0:
            continue
        host = truth.site_hosts[s]
        found = found_by_host.get(host, set())
        hits = sum(1 for e in entities.tolist() if e in found)
        recalls[host] = hits / len(entities)
    return recalls
