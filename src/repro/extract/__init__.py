"""Extraction over crawled pages (Section 3.2 of the paper).

The paper establishes entity presence on a page by matching
*identifying attributes*:

- :mod:`repro.extract.phones` — "a standard regular expression based US
  phone number extractor".
- :mod:`repro.extract.isbn` — ISBN-10/13 matches "along with the string
  'ISBN' in a small window near the match".
- :mod:`repro.extract.homepages` — "the content of href tags of all
  anchor nodes".
- :mod:`repro.extract.naive_bayes` — a from-scratch multinomial
  Naïve-Bayes text classifier.
- :mod:`repro.extract.reviews` — review detection: phone match plus
  classifier over the page text.
- :mod:`repro.extract.runner` — the end-to-end scan of a
  :class:`~repro.crawl.cache.WebCache` into a
  :class:`~repro.core.incidence.BipartiteIncidence`.
"""

from repro.extract.evaluation import (
    ExtractionScore,
    evaluate_extraction,
    per_site_recall,
)
from repro.extract.homepages import extract_anchor_urls, extract_homepages
from repro.extract.isbn import extract_isbns
from repro.extract.naive_bayes import NaiveBayesClassifier, tokenize
from repro.extract.addresses import ParsedAddress, extract_addresses, parse_address
from repro.extract.phones import extract_phones
from repro.extract.reviews import ReviewDetector
from repro.extract.runner import ExtractionRunner
from repro.extract.sentiment import RatingAggregate, influence_bound, polarity
from repro.extract.wrappers import InducedWrapper, WrapperInducer, WrapperRecord

__all__ = [
    "ExtractionRunner",
    "ExtractionScore",
    "InducedWrapper",
    "NaiveBayesClassifier",
    "ParsedAddress",
    "RatingAggregate",
    "ReviewDetector",
    "WrapperInducer",
    "WrapperRecord",
    "evaluate_extraction",
    "extract_addresses",
    "extract_anchor_urls",
    "extract_homepages",
    "extract_isbns",
    "extract_phones",
    "influence_bound",
    "parse_address",
    "per_site_recall",
    "polarity",
    "tokenize",
]
