"""Review sentiment and rating aggregation — the I∆ motivation, live.

Section 4.3.1 motivates ``I∆(n) = 1/(1+n)`` with an aggregation
argument: "if an entity has n reviews all giving a 'thumbs-up' ..., if
the next review gives a 'thumbs-down' ... it would impact the overall
rating only by an additive factor of 1/(1+n).  Thus I∆(n) bounds the
influence the (n+1)th review can have on the average presentation."

This module implements that presentation layer — a lexicon polarity
scorer over review prose and the running-mean rating aggregate — so the
bound stops being an assumption: :meth:`RatingAggregate.add` returns
the realized influence of each new review, and the benchmark verifies
every realized value sits under the ``span/(1+n)`` envelope while the
*average* realized influence tracks it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extract.naive_bayes import tokenize

__all__ = ["RatingAggregate", "influence_bound", "polarity"]

#: Sentiment lexicon aligned with the synthetic review vocabulary.
POSITIVE_WORDS = frozenset(
    {
        "loved", "enjoyed", "recommend", "amazing", "delicious",
        "friendly", "cozy", "fresh", "fantastic", "perfect",
        "attentive", "flavorful", "charming", "great", "good",
        "excellent", "wonderful", "best",
    }
)

NEGATIVE_WORDS = frozenset(
    {
        "hated", "disappointed", "terrible", "rude", "noisy",
        "overpriced", "bland", "awful", "slow", "greasy", "mediocre",
        "bad", "worst", "poor", "dirty",
    }
)


def polarity(text: str) -> float:
    """Lexicon polarity in [-1, 1]; 0 when no sentiment word appears.

    ``(positives - negatives) / (positives + negatives)`` over token
    hits — the simple aggregate the paper's "average sentiment polarity"
    summary would be built from.
    """
    positives = 0
    negatives = 0
    for token in tokenize(text):
        if token in POSITIVE_WORDS:
            positives += 1
        elif token in NEGATIVE_WORDS:
            negatives += 1
    total = positives + negatives
    if total == 0:
        return 0.0
    return (positives - negatives) / total


def influence_bound(n_existing: int, span: float = 2.0) -> float:
    """Max possible shift of a running mean by one more value.

    With ratings confined to an interval of width ``span`` (polarity:
    [-1, 1] ⇒ span 2), the (n+1)-th value moves the mean by at most
    ``span / (1 + n)`` — the paper's I∆ envelope, up to the constant.
    """
    if n_existing < 0:
        raise ValueError("n_existing must be non-negative")
    if span <= 0:
        raise ValueError("span must be positive")
    return span / (1.0 + n_existing)


@dataclass
class RatingAggregate:
    """Running mean rating with per-review influence tracking.

    Attributes:
        ratings: The values aggregated so far.
        influences: Realized |mean shift| caused by each added value
            (the first value's influence is its absolute level).
    """

    ratings: list[float] = field(default_factory=list)
    influences: list[float] = field(default_factory=list)

    @property
    def n_reviews(self) -> int:
        """Values aggregated so far."""
        return len(self.ratings)

    @property
    def mean(self) -> float:
        """Current mean rating (0 when empty)."""
        if not self.ratings:
            return 0.0
        return sum(self.ratings) / len(self.ratings)

    def add(self, rating: float) -> float:
        """Aggregate one more rating; returns its realized influence.

        The realized influence always satisfies
        ``influence <= influence_bound(n_before)`` when ratings lie in
        [-1, 1] (checked property-style in the tests).
        """
        if not -1.0 <= rating <= 1.0:
            raise ValueError("ratings must lie in [-1, 1]")
        before = self.mean
        self.ratings.append(rating)
        shift = abs(self.mean - before)
        self.influences.append(shift)
        return shift

    def add_review(self, text: str) -> float:
        """Score a review's polarity and aggregate it."""
        return self.add(polarity(text))
