"""US postal address extraction from listing text.

The linking machinery scores locality agreement (city/state/zip), which
requires *parsing* addresses out of free listing text — mentions on
tail sites do not come pre-fielded.  This module implements a
pattern-based US address parser for the common single-line form

    <number> <street name> <suffix>, <city>, <ST> <zip>

with tolerances for missing commas and unknown suffixes.  It is a
deliberately conservative parser: a non-match returns ``None`` rather
than a garbage split, because downstream blocking treats locality as
evidence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["ParsedAddress", "extract_addresses", "parse_address"]

_STREET_SUFFIXES = (
    "st", "street", "ave", "avenue", "blvd", "boulevard", "dr", "drive",
    "rd", "road", "ln", "lane", "way", "ct", "court", "pl", "place",
    "broadway",
)

_US_STATES = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI",
    "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI",
    "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC",
    "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT",
    "VT", "VA", "WA", "WV", "WI", "WY", "DC",
}

#: number + street words + comma + city words + comma + STATE + zip
_ADDRESS_PATTERN = re.compile(
    r"""
    (?P<number>\d{1,5})\s+
    (?P<street>[A-Za-z0-9.' ]{2,40}?)\s*,\s*
    (?P<city>[A-Za-z.' ]{2,30}?)\s*,\s*
    (?P<state>[A-Z]{2})\s+
    (?P<zip>\d{5})(?:-\d{4})?
    (?!\d)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class ParsedAddress:
    """A parsed single-line US address."""

    street: str
    city: str
    state: str
    zip_code: str

    @property
    def single_line(self) -> str:
        """Re-render in the canonical single-line form."""
        return f"{self.street}, {self.city}, {self.state} {self.zip_code}"


def _plausible_street(street: str) -> bool:
    tokens = street.lower().split()
    if not tokens:
        return False
    return tokens[-1].rstrip(".") in _STREET_SUFFIXES or len(tokens) >= 2


def parse_address(text: str) -> ParsedAddress | None:
    """Parse the first plausible US address in ``text``, or None.

    Requires a valid two-letter state code; street and city are
    whitespace-normalized.
    """
    for match in _ADDRESS_PATTERN.finditer(text):
        state = match.group("state")
        if state not in _US_STATES:
            continue
        street = " ".join(
            (match.group("number") + " " + match.group("street")).split()
        )
        if not _plausible_street(match.group("street")):
            continue
        city = " ".join(match.group("city").split())
        return ParsedAddress(
            street=street,
            city=city,
            state=state,
            zip_code=match.group("zip"),
        )
    return None


def extract_addresses(text: str) -> list[ParsedAddress]:
    """All plausible US addresses in ``text``, in document order."""
    found = []
    for match in _ADDRESS_PATTERN.finditer(text):
        if match.group("state") not in _US_STATES:
            continue
        if not _plausible_street(match.group("street")):
            continue
        street = " ".join(
            (match.group("number") + " " + match.group("street")).split()
        )
        found.append(
            ParsedAddress(
                street=street,
                city=" ".join(match.group("city").split()),
                state=match.group("state"),
                zip_code=match.group("zip"),
            )
        )
    return found
