"""Homepage URL extraction from anchor tags.

The paper's homepage matcher "looked at the content of href tags of all
anchor nodes in pages" (Section 3.2).  We parse HTML with the standard
library's :class:`html.parser.HTMLParser`, collect every anchor href,
and canonicalize each so that scheme / ``www.`` / trailing-slash
variants all join against the canonical homepage keys stored in the
entity database.
"""

from __future__ import annotations

from html.parser import HTMLParser

from repro.entities.ids import canonical_url

__all__ = ["extract_anchor_urls", "extract_homepages"]


class _AnchorCollector(HTMLParser):
    """Collects href attribute values from <a> tags."""

    def __init__(self) -> None:
        super().__init__()
        self.hrefs: list[str] = []

    def handle_starttag(
        self, tag: str, attrs: list[tuple[str, str | None]]
    ) -> None:
        if tag != "a":
            return
        for name, value in attrs:
            if name == "href" and value:
                self.hrefs.append(value)


def extract_anchor_urls(html: str) -> list[str]:
    """Raw href values of all anchor nodes, in document order."""
    collector = _AnchorCollector()
    collector.feed(html)
    return collector.hrefs


def extract_homepages(html: str) -> set[str]:
    """Canonicalized anchor URLs of a page.

    Relative links and unparseable hrefs are skipped — a relative link
    cannot be an external business homepage.
    """
    found: set[str] = set()
    for href in extract_anchor_urls(html):
        href = href.strip()
        if not href or href.startswith(("#", "mailto:", "javascript:")):
            continue
        if "://" not in href and not href.startswith("www."):
            continue  # relative link within the site
        try:
            found.add(canonical_url(href))
        except ValueError:
            continue
    return found
