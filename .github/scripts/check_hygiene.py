#!/usr/bin/env python3
"""Repo-hygiene check: no bytecode debris under ``src/``.

An earlier PR left an orphaned ``__pycache__`` directory (bytecode for
modules whose sources were never committed) under ``src/repro``, which
then confused both ``git status`` and readers of the tree.  This check
fails CI when that class of debris reappears:

1. any ``__pycache__`` directory or ``*.pyc`` file tracked by git under
   ``src/`` (tracked bytecode is always a mistake);
2. any ``*.pyc`` whose matching ``*.py`` source does not exist (an
   orphan: the bytecode outlived its module);
3. any ``__pycache__`` directory whose parent contains no ``*.py``
   files at all (a whole orphaned package cache).

Untracked ``__pycache__`` next to real sources is deliberately allowed:
every ``PYTHONPATH=src`` run creates it, and ``.gitignore`` already
keeps it out of the index.

Usage::

    python .github/scripts/check_hygiene.py [root]

Exits 0 when clean, 1 with one line per offence otherwise.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

_PYC_STEM = re.compile(r"^(?P<stem>.+?)(\.[\w-]+)?\.pyc$")


def tracked_bytecode(root: Path) -> list[str]:
    """Git-tracked __pycache__/ or .pyc paths under src/ (worst case)."""
    try:
        proc = subprocess.run(
            ["git", "ls-files", "--", "src"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return []  # not a git checkout (e.g. sdist): skip this probe
    return [
        line
        for line in proc.stdout.splitlines()
        if "__pycache__" in line.split("/") or line.endswith(".pyc")
    ]


def orphan_pyc(root: Path) -> list[str]:
    """.pyc files under src/ whose source .py no longer exists."""
    offences = []
    for pyc in sorted((root / "src").rglob("*.pyc")):
        match = _PYC_STEM.match(pyc.name)
        stem = match.group("stem") if match else pyc.stem
        source_dir = (
            pyc.parent.parent if pyc.parent.name == "__pycache__" else pyc.parent
        )
        if not (source_dir / f"{stem}.py").exists():
            offences.append(str(pyc.relative_to(root)))
    return offences


def orphan_pycache_dirs(root: Path) -> list[str]:
    """__pycache__ dirs under src/ whose parent holds no .py sources."""
    offences = []
    for cache in sorted((root / "src").rglob("__pycache__")):
        if cache.is_dir() and not any(cache.parent.glob("*.py")):
            offences.append(str(cache.relative_to(root)))
    return offences


def main(argv: list[str]) -> int:
    """Run all probes against ``argv[0]`` (default: cwd); report offences."""
    root = Path(argv[0]) if argv else Path.cwd()
    offences = [
        f"tracked bytecode: {path}" for path in tracked_bytecode(root)
    ]
    offences += [f"orphan .pyc: {path}" for path in orphan_pyc(root)]
    offences += [
        f"orphan __pycache__: {path}" for path in orphan_pycache_dirs(root)
    ]
    for offence in offences:
        print(f"hygiene: {offence}", file=sys.stderr)
    if offences:
        print(
            f"hygiene: {len(offences)} offence(s); remove the bytecode "
            "debris (see .github/scripts/check_hygiene.py)",
            file=sys.stderr,
        )
        return 1
    print("hygiene: clean (no bytecode debris under src/)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
