"""Consume reprolint's JSON report in CI and emit GitHub annotations.

Usage: ``python .github/scripts/reprolint_annotations.py reprolint.json``

Reads the machine-readable findings list (schema in
docs/static_analysis.md), prints one ``::error`` workflow command per
finding so violations show up inline on the PR diff, and exits non-zero
when any findings exist.
"""

import json
import sys


def main(argv: list[str]) -> int:
    """Parse the report at ``argv[1]``; annotate and gate the job."""
    if len(argv) != 2:
        print("usage: reprolint_annotations.py <report.json>", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("version") != 1:
        print(f"unsupported report version: {report.get('version')}", file=sys.stderr)
        return 2
    findings = report.get("findings", [])
    for finding in findings:
        message = finding["message"].replace("\n", " ")
        print(
            f"::error file={finding['path']},line={finding['line']},"
            f"col={finding['col']},title=reprolint {finding['rule']}::{message}"
        )
    total = report.get("summary", {}).get("total", len(findings))
    checked = report.get("files_checked", "?")
    print(f"reprolint: {total} finding(s) across {checked} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
