# Convenience targets for the structured-data reproduction.

PYTHON ?= python3

.PHONY: install test lint lint-changed lint-conc hygiene bench bench-json bench-serve bench-store artifacts examples clean

install:
	pip install -e . && pip install pytest pytest-benchmark hypothesis

test:
	$(PYTHON) -m pytest tests/

# reprolint: AST-based invariant linter (RNG discipline, seed threading,
# layering DAG, API hygiene).  See docs/static_analysis.md.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint src tests benchmarks

# Pre-commit variant: lints only files staged in the git index.  Heavy
# whole-project analyses (CONC001/CONC003) are skipped for speed; the
# full `lint` / `lint-conc` targets and CI still run them.
lint-changed:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint --changed-only

# Concurrency & import-budget pass only: the whole-project analyses
# over the serve-path tiers.  See docs/static_analysis.md.
lint-conc:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.lint \
		src/repro/serve src/repro/perf src/repro/store \
		--select CONC,IMP001

# Repo hygiene: no tracked or orphaned bytecode under src/.
hygiene:
	$(PYTHON) .github/scripts/check_hygiene.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The PR acceptance matrix: run_everything across (workers × cache),
# byte-identity check included; writes BENCH_PR2.json at the repo root.
bench-json:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_matrix.py --out BENCH_PR2.json

# Serve-side latency benchmark: build artifacts, replay a seeded load
# against a self-hosted server; writes BENCH_PR4.json at the repo root.
bench-serve:
	PYTHONPATH=src $(PYTHON) -m repro all artifacts/
	PYTHONPATH=src $(PYTHON) -m repro serve-bench artifacts/ \
		--seed 7 --clients 4 --requests 200 --report BENCH_PR4.json
	PYTHONPATH=src $(PYTHON) -m repro bench --history

# Storage-tier ladder: serve the same 100k-entity corpus from each
# backend (ram / mmap / sqlite) in a fresh process, compare RSS
# high-water marks and latency; writes BENCH_PR9.json at the repo root.
bench-store:
	PYTHONPATH=src $(PYTHON) benchmarks/store_ladder.py --out BENCH_PR9.json

artifacts:
	$(PYTHON) -m repro all artifacts/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/spread_of_data.py
	$(PYTHON) examples/tail_value.py
	$(PYTHON) examples/connectivity.py
	$(PYTHON) examples/full_pipeline.py
	$(PYTHON) examples/wrapper_induction.py
	$(PYTHON) examples/entity_resolution.py
	$(PYTHON) examples/source_discovery.py
	$(PYTHON) examples/extension_studies.py

clean:
	rm -rf artifacts/ benchmarks/output/ .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
