#!/usr/bin/env python3
"""Quickstart: the paper's headline experiment in ~40 lines.

Generates a synthetic restaurants corpus, asks the paper's opening
question — *do the winners cover it all?* — and prints the k-coverage
panel of Figure 1(a) plus the headline numbers from Section 3.4.

Run:
    python examples/quickstart.py
"""

from repro.core.coverage import coverage_at, sites_needed_for_coverage
from repro.pipeline import ExperimentConfig, run_spread


def main() -> None:
    config = ExperimentConfig(scale="small", seed=0)

    print("Generating the restaurants/phone corpus (small scale)...")
    result = run_spread("restaurants", "phone", config)
    incidence = result.incidence
    print(
        f"  {incidence.n_entities} restaurants, {incidence.n_sites} websites, "
        f"{incidence.n_edges} mentions "
        f"({incidence.average_sites_per_entity():.1f} sites/entity; paper: 32)\n"
    )

    print(result.render())
    print()

    top10 = coverage_at(incidence, 10, k=1)
    top100 = coverage_at(incidence, 100, k=1)
    k1_sites = sites_needed_for_coverage(incidence, 0.90, k=1)
    k5_sites = sites_needed_for_coverage(incidence, 0.90, k=5)
    print("Headline numbers (paper's Section 3.4, Figure 1(a)):")
    print(f"  top-10 sites cover {top10:.0%} of all restaurant phones (paper: ~93%)")
    print(f"  top-100 sites cover {top100:.0%} (paper: ~100%)")
    print(f"  sites needed for 90% coverage at k=1: {k1_sites}")
    print(f"  sites needed for 90% coverage at k=5: {k5_sites} "
          "(paper: >5000 of ~100k sites)")
    print(
        "\nConclusion: even with strong head aggregators, corroborating "
        "facts from multiple sources forces extraction deep into the tail."
    )


if __name__ == "__main__":
    main()
