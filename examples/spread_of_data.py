#!/usr/bin/env python3
"""Spread of structured data across the Web (Section 3 of the paper).

Reproduces, for one domain:

- the phone vs. homepage k-coverage contrast (Figures 1 and 2),
- the review spread and the aggregate-review curve (Figure 4), and
- the greedy set cover vs. order-by-size comparison (Figure 5).

Run:
    python examples/spread_of_data.py [domain]

``domain`` defaults to ``restaurants``; any of the 8 local-business
domains works for the phone/homepage part.
"""

import sys

from repro.core.coverage import sites_needed_for_coverage
from repro.pipeline import (
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_spread,
)


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "restaurants"
    config = ExperimentConfig(scale="small", seed=0)

    print(f"=== Spread of the {domain} domain (scale: {config.scale}) ===\n")

    for attribute in ("phone", "homepage"):
        result = run_spread(domain, attribute, config)
        print(result.render())
        needed = sites_needed_for_coverage(result.incidence, 0.9, k=1)
        print(f"--> sites needed for 90% {attribute} coverage (k=1): {needed}\n")

    if domain == "restaurants":
        print("=== Reviews (Figure 4) ===\n")
        reviews = run_figure4(config)
        print(reviews.render())
        print()

    print("=== Ordering sites by diversity (Figure 5) ===\n")
    setcover = run_figure5(config)
    print(setcover.render())
    print(
        f"\nmax improvement of greedy set cover over size order: "
        f"{setcover.max_improvement():.3f} "
        "(the paper finds the improvement insignificant)"
    )


if __name__ == "__main__":
    main()
