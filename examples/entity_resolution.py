#!/usr/bin/env python3
"""Deduplication and linking of noisy mentions.

The paper's end-to-end challenge includes "deduplication and linking";
its own methodology sidesteps both by keying on phones and ISBNs.  This
example runs the general machinery on mentions whose names are typo'd,
abbreviated, or reworded, and whose phones are often missing:

1. corrupt database listings into tail-site mentions (with ground
   truth),
2. block candidates by phone / name-key / locality,
3. score with Jaro-Winkler + token Jaccard + field weighting,
4. link above a threshold, and measure precision/recall exactly.

Run:
    python examples/entity_resolution.py
"""

from repro.entities.business import generate_listings
from repro.linking import EntityResolver, MentionGenerator


def main() -> None:
    listings = generate_listings("restaurants", 500, seed=11)
    generator = MentionGenerator(
        typo_rate=0.25,
        drop_word_rate=0.2,
        abbreviate_rate=0.35,
        missing_phone_rate=0.35,
        seed=12,
    )
    mentions = generator.corpus(listings, mentions_per_listing=3)

    print(f"database: {len(listings)} listings; "
          f"mentions: {len(mentions)} (noisy, 35% without phones)\n")
    sample = mentions[0]
    truth = next(l for l in listings if l.entity_id == sample.true_entity_id)
    print("example corruption:")
    print(f"  listing: {truth.name!r}  phone={truth.phone}")
    print(f"  mention: {sample.name!r}  phone={sample.phone} "
          f"(from {sample.source_host})\n")

    for threshold in (0.55, 0.7, 0.85):
        resolver = EntityResolver(listings, threshold=threshold)
        report = resolver.evaluate(mentions)
        print(
            f"threshold {threshold:.2f}: "
            f"precision={report.precision:.3f} recall={report.recall:.3f} "
            f"F1={report.f1:.3f} linked={report.n_linked}/{report.n_mentions} "
            f"(avg {report.mean_candidates:.0f} candidates/mention "
            f"vs {len(listings)} full scan)"
        )

    print("\nDeduplicating the unlinked remainder (candidate new entities):")
    resolver = EntityResolver(listings, threshold=0.85)
    links = resolver.resolve_all(mentions)
    clusters = resolver.deduplicate_unlinked(mentions, links)
    multi = [c for c in clusters if len(c) > 1]
    print(f"  unlinked mentions: {sum(len(c) for c in clusters)}, "
          f"clusters: {len(clusters)} ({len(multi)} with >1 mention)")
    print(
        "\nConclusion: with phone evidence when present and name/locality\n"
        "similarity otherwise, tail mentions link to the database at high\n"
        "precision — the machinery web-scale extraction needs beyond the\n"
        "identifying-attribute shortcut."
    )


if __name__ == "__main__":
    main()
