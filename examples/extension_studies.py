#!/usr/bin/env python3
"""The extension studies, in one run.

Beyond the paper's own tables and figures, the library quantifies four
claims the paper makes in prose.  This script runs all four through the
high-level pipeline runners:

1. discovery under imperfection (Section 5's bound, stressed),
2. content redundancy (the third conclusion),
3. user-level tail exposure (the Goel et al. argument in Section 4.2),
4. snapshot staleness and re-crawl scheduling (crawl maintenance).

Run:
    python examples/extension_studies.py
"""

from repro.pipeline import (
    ExperimentConfig,
    run_discovery_study,
    run_redundancy_study,
    run_staleness_study,
    run_user_tail_study,
)
from repro.pipeline.extensions import format_user_tail


def main() -> None:
    config = ExperimentConfig(
        scale="small",
        seed=0,
        traffic_entities=10000,
        traffic_events=150000,
        traffic_cookies=30000,
    )

    print("=== 1. Discovery under imperfection ===\n")
    discovery = run_discovery_study(config)
    print(discovery.render())

    print("\n=== 2. Content redundancy ===\n")
    redundancy = run_redundancy_study(config)
    for (domain, attribute), report in redundancy.items():
        print(
            f"  {domain}/{attribute}: "
            f"{report.redundancy_coefficient:.1f} mentions/entity, "
            f"{report.singleton_fraction:.1%} uncorroborated, "
            f"head-site overlap {report.head_overlap_mean:.2f}, "
            f"novelty <10% from rank {report.novelty_decay_rank}"
        )

    print("\n=== 3. User-level tail exposure (browse traffic) ===\n")
    user_tail = run_user_tail_study(config)
    print(format_user_tail(user_tail))
    print(
        "  (every site: the tail's user reach far exceeds its demand share)"
    )

    print("\n=== 4. Staleness and re-crawl scheduling ===\n")
    staleness = run_staleness_study(config)
    print(staleness.render())

    print(
        "\nTogether: sources are discoverable even with lossy tooling, the\n"
        "redundancy that discovery leans on is real, tail coverage matters\n"
        "to most users, and a modest re-crawl budget keeps the database true."
    )


if __name__ == "__main__":
    main()
