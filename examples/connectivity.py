#!/usr/bin/env python3
"""Connectivity of structured information (Section 5 of the paper).

Reproduces Table 2 (graph metrics) for a subset of domains, Figure 9
(robustness after deleting the top-k sites), and then actually *runs*
the bootstrapping set-expansion algorithm the paper reasons about,
verifying its iteration count against the d/2 bound.

Run:
    python examples/connectivity.py
"""

from repro.core.graph import EntitySiteGraph, robustness_curve
from repro.discovery.bootstrap import BootstrapExpansion
from repro.pipeline import ExperimentConfig
from repro.pipeline.experiments import format_table2, run_table2
from repro.report.figures import ascii_plot
from repro.webgen.profiles import get_profile


def main() -> None:
    config = ExperimentConfig(scale="small", seed=0)

    print("=== Table 2 (subset of rows, small scale) ===\n")
    rows = (
        ("books", "isbn"),
        ("restaurants", "phone"),
        ("home", "phone"),
        ("restaurants", "homepage"),
        ("home", "homepage"),
    )
    metrics = run_table2(config, rows=rows)
    print(format_table2(metrics))
    print(
        "\n(diameters small, largest component ~99%+ of entities;\n"
        " component counts scale with corpus size — see EXPERIMENTS.md)\n"
    )

    print("=== Figure 9: robustness to removing top sites ===\n")
    series = {}
    for domain, attribute in (("restaurants", "phone"), ("home", "homepage")):
        incidence = get_profile(domain, attribute).generate(
            config.scale_preset, seed=7
        )
        ks, fractions = robustness_curve(incidence, max_removed=10)
        series[f"{domain}/{attribute}"] = (ks, fractions)
    print(
        ascii_plot(
            series,
            title="Fraction of entities in largest component after removing top-k",
            x_label="top-k sites removed",
            y_label="fraction in largest component",
        )
    )

    print("\n=== Bootstrapping discovery (the Section 5 algorithm) ===\n")
    incidence = get_profile("restaurants", "phone").generate(
        config.scale_preset, seed=7
    )
    graph = EntitySiteGraph(incidence)
    diameter = graph.diameter()
    summary = graph.components()
    expansion = BootstrapExpansion(incidence)
    trace = expansion.random_seed_trial(seed_size=3, rng=123)
    print(f"graph diameter d = {diameter}  (bound: <= d/2 = {diameter // 2} iterations)")
    print(f"seed: 3 random entities")
    print(f"iterations executed: {trace.iterations}")
    print(f"entities discovered per iteration: {trace.entity_counts}")
    print(f"sites discovered per iteration:    {trace.site_counts}")
    covered = trace.entity_fraction(incidence.n_entities)
    largest = summary.largest_component_entities / incidence.n_entities
    print(f"final coverage: {covered:.1%} of the database "
          f"(largest component holds {largest:.1%})")
    print(
        "\nConclusion: the entity-site graph is so well connected that a\n"
        "tiny random seed set discovers essentially every source in a\n"
        "handful of crawl-extract-expand iterations."
    )


if __name__ == "__main__":
    main()
