#!/usr/bin/env python3
"""The full extraction pipeline, end to end, exactly as the paper ran it.

This example does what Section 3.1 describes, with every stage made
explicit rather than hidden behind the experiment runners:

1. build a comprehensive entity database (synthetic Yahoo! Business
   Listings for restaurants),
2. render a synthetic web crawl into a SQLite-backed page store —
   aggregator listing pages, local blogs, review pages, noise pages,
3. scan the crawl cache host by host, matching identifying attributes
   (phones) and classifying review pages with the Naive Bayes model,
4. aggregate mentions per host into the entity-site incidence, and
5. run the coverage analysis on the *extracted* data and compare it to
   the rendered ground truth.

Run:
    python examples/full_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.coverage import k_coverage_curves
from repro.crawl.store import SqlitePageStore
from repro.entities import BusinessGenerator, EntityDatabase
from repro.extract import ExtractionRunner
from repro.report.figures import ascii_plot
from repro.webgen import CorpusBuilder, ScalePreset, get_profile


def main() -> None:
    print("1. Building the entity database (1000 restaurant listings)...")
    listings = BusinessGenerator(
        "restaurants", seed=1, homepage_fraction=0.9
    ).generate(1000)
    database = EntityDatabase.from_listings(listings)
    print(f"   {len(database)} entities; e.g. {listings[0].name!r} "
          f"at {listings[0].address}, phone {listings[0].phone}")

    print("\n2. Rendering the synthetic crawl (phones) into SQLite...")
    scale = ScalePreset("demo", n_entities=len(database), site_factor=1.5)
    incidence = get_profile("restaurants", "phone").generate(scale, seed=2)
    with tempfile.TemporaryDirectory() as tmp:
        store = SqlitePageStore(Path(tmp) / "crawl.db")
        corpus = CorpusBuilder(
            database, "phone", noise_page_rate=0.2, seed=3
        ).build(incidence, store=store)
        cache = corpus.cache
        print(f"   {cache.n_pages()} pages across {cache.n_hosts()} hosts "
              f"({corpus.n_noise_pages} noise pages)")

        print("\n3-4. Scanning the cache and aggregating per host...")
        runner = ExtractionRunner(database, "phone")
        extracted = runner.run(cache)
        stats = runner.stats
        print(f"   pages scanned: {stats.pages_scanned}")
        print(f"   pages with database hits: {stats.pages_with_matches}")
        print(f"   candidate matches: {stats.candidate_matches}, "
              f"database hit rate: {stats.hit_rate:.1%}")
        print(f"   extracted incidence: {extracted.n_edges} edges "
              f"(ground truth: {corpus.truth.n_edges})")

        print("\n5. Coverage analysis on extracted vs ground-truth data:")
        truth_curves = k_coverage_curves(corpus.truth, ks=(1,))
        found_curves = k_coverage_curves(
            extracted, ks=(1,), checkpoints=truth_curves.checkpoints
        )
        print(
            ascii_plot(
                {
                    "extracted": (
                        found_curves.checkpoints,
                        found_curves.curve(1),
                    ),
                    "ground truth": (
                        truth_curves.checkpoints,
                        truth_curves.curve(1),
                    ),
                },
                log_x=True,
                title="1-coverage: extracted pipeline output vs rendered truth",
                x_label="top-t sites",
                y_label="coverage",
            )
        )
        gap = float(
            np.max(np.abs(found_curves.curve(1) - truth_curves.curve(1)))
        )
        print(f"\nmax coverage gap extracted vs truth: {gap:.4f}")
        print("The regex + database-join extraction is essentially lossless;")
        print("noise pages are rejected by NANP validation and the DB join.")


if __name__ == "__main__":
    main()
