#!/usr/bin/env python3
"""An integrated source-discovery pipeline.

Chains the subsystems the paper's end-to-end challenge enumerates —
clustering, crawling, deep-web harvesting, discovery — into one
realistic workflow:

1. **Triage**: cluster a mixed crawl's hosts by content and keep the
   restaurant-like cluster (clustering).
2. **Budgeted crawl**: crawl the kept sites under a page budget with
   the size-first policy (crawling).
3. **Deep web**: harvest a form-only source that the crawler cannot
   enumerate, seeded with entities found in step 2 (deep web).
4. **Expansion check**: verify the discovered sources sit inside the
   entity-site graph's giant component, so iteration would find the
   rest (discovery).

Run:
    python examples/source_discovery.py
"""

from repro.clustering import SiteClusterer
from repro.crawl.cache import WebCache
from repro.crawl.deepweb import DeepWebProber, DeepWebSite
from repro.crawl.store import MemoryPageStore, Page
from repro.discovery import BootstrapExpansion
from repro.discovery.crawler import FocusedCrawler
from repro.entities import BusinessGenerator, EntityDatabase, generate_books
from repro.webgen import ScalePreset, get_profile
from repro.webgen.html import PageRenderer


def main() -> None:
    listings = BusinessGenerator("restaurants", seed=31).generate(600)
    database = EntityDatabase.from_listings(listings)
    renderer = PageRenderer(32)

    # --- a mixed surface web: restaurant directories + book catalogues
    store = MemoryPageStore()
    books = generate_books(200, seed=33)
    for i in range(15):
        host = f"eats{i:02d}.example.com"
        chunk = listings[i * 20:(i + 1) * 20]
        store.add(Page.from_url(f"http://{host}/p", renderer.listing_page(host, chunk)))
    for i in range(10):
        host = f"paper{i:02d}.example.com"
        chunk = books[i * 20:(i + 1) * 20]
        store.add(Page.from_url(f"http://{host}/p", renderer.book_page(host, chunk)))
    cache = WebCache(store)

    print("1. Triage: clustering 25 hosts by content...")
    clusters = SiteClusterer(n_clusters=2, seed=34).cluster(cache)
    groups = [clusters.members(c) for c in range(2)]
    restaurant_cluster = max(
        range(2), key=lambda c: sum(h.startswith("eats") for h in groups[c])
    )
    kept = clusters.members(restaurant_cluster)
    print(f"   kept cluster {restaurant_cluster}: {len(kept)} hosts "
          f"({sum(h.startswith('eats') for h in kept)} true restaurant sites)\n")

    print("2. Budgeted crawl of the synthetic web (size-first policy)...")
    incidence = get_profile("restaurants", "phone").generate(
        ScalePreset("demo", n_entities=600, site_factor=1.5), seed=35
    )
    crawler = FocusedCrawler(incidence)
    crawl = crawler.crawl(page_budget=400, policy="largest_first")
    covered = crawl.coverage[-1] if len(crawl.coverage) else 0.0
    print(f"   {crawl.sites_crawled} sites, {crawl.total_pages} pages, "
          f"{covered:.0%} of the database covered\n")

    print("3. Deep web: harvesting a form-only source...")
    hidden = listings[200:500]
    deep_site = DeepWebSite("reserve-a-table.example.com", hidden, page_size=15)
    prober = DeepWebProber(listings[:30], max_queries=1500)
    result = prober.probe(deep_site)
    print(f"   coverage {result.coverage:.0%} of {deep_site.n_hidden} hidden records "
          f"in {result.queries_issued} queries "
          f"({result.queries_per_record:.1f} q/record)\n")

    print("4. Expansion check: are discovered sources in the giant component?")
    expansion = BootstrapExpansion(incidence)
    trace = expansion.random_seed_trial(seed_size=3, rng=36)
    print(f"   random 3-entity seed reaches {trace.entity_fraction(600):.1%} "
          f"of the database in {trace.iterations} iterations")
    print(
        "\nConclusion: triage finds the domain's sites, a budgeted crawl\n"
        "covers the head, deep-web probing opens form-only sources, and\n"
        "connectivity guarantees iteration sweeps up the rest — the\n"
        "end-to-end loop the paper's measurements argue is feasible."
    )


if __name__ == "__main__":
    main()
