#!/usr/bin/env python3
"""Value of tail extraction (Section 4 of the paper).

Simulates a year of search and browse traffic over Amazon, Yelp, and
IMDb entity pages, then reproduces:

- Figure 6: the long tail of demand (CDF + top-20% shares),
- Figure 7: demand vs. number of existing reviews, and
- Figure 8: the relative value-add VA(n)/VA(0) of one more review.

Run:
    python examples/tail_value.py
"""

from repro.core.valueadd import demand_vs_reviews, value_add_curve
from repro.pipeline import ExperimentConfig, build_traffic_dataset, run_figure6
from repro.report.figures import ascii_plot


def main() -> None:
    config = ExperimentConfig(
        scale="small",
        seed=0,
        traffic_entities=20000,
        traffic_events=300000,
        traffic_cookies=60000,
    )

    print("=== Figure 6: the long tail of demand ===\n")
    curves = run_figure6(config)
    cdf_series = {
        site: (c.inventory, c.cumulative_share)
        for site, c in curves["search"].items()
    }
    print(
        ascii_plot(
            cdf_series,
            title="Cumulative demand vs normalized inventory (search)",
            x_label="normalized inventory",
            y_label="cumulative demand",
        )
    )
    print("\nDemand share of the top 20% of inventory:")
    for source in ("search", "browse"):
        shares = ", ".join(
            f"{site}={curves[source][site].share_of_top(0.2):.0%}"
            for site in ("imdb", "amazon", "yelp")
        )
        print(f"  {source}: {shares}")
    print("  (paper: IMDb >90%, Yelp ~60%; browse even more concentrated)\n")

    print("=== Figures 7-8: demand and value-add vs existing reviews ===\n")
    for site in ("yelp", "amazon", "imdb"):
        dataset = build_traffic_dataset(site, config)
        counts, demand = demand_vs_reviews(
            dataset.search_demand, dataset.reviews
        )
        va_search = value_add_curve(dataset.search_demand, dataset.reviews)
        va_browse = value_add_curve(dataset.browse_demand, dataset.reviews)
        print(
            ascii_plot(
                {
                    "search": (va_search.review_counts, va_search.relative_value_add),
                    "browse": (va_browse.review_counts, va_browse.relative_value_add),
                },
                log_x=True,
                title=f"VA(n)/VA(0) — {site}",
                x_label="# of reviews",
                y_label="relative value-add",
            )
        )
        trend = (
            "decreasing (tail reviews are worth more)"
            if va_search.is_decreasing_overall()
            else "mid-popularity peak"
        )
        print(f"  {site}: search VA trend is {trend}\n")

    print(
        "Conclusion: toward the tail, content availability decays faster\n"
        "than demand — one extra review for a tail entity adds more value\n"
        "per user base than another review for a head entity."
    )


if __name__ == "__main__":
    main()
