#!/usr/bin/env python3
"""Unsupervised wrapper induction over aggregator pages.

The paper's spread analysis matches identifying attributes, but its
framing leans on unsupervised site extraction being feasible at all
(RoadRunner-style template learning over "structural redundancy within
websites").  This example demonstrates that feasibility on the
synthetic corpus:

1. render an aggregator listing page (unknown template to the inducer),
2. induce the record template from structural repetition alone,
3. read out names and phones from the induced fields, and
4. join them back against the entity database — full extraction with
   no identifying-attribute shortcut.

Run:
    python examples/wrapper_induction.py
"""

from repro.entities import BusinessGenerator, EntityDatabase
from repro.extract.wrappers import WrapperInducer
from repro.webgen.html import PageRenderer


def main() -> None:
    listings = BusinessGenerator("restaurants", seed=7).generate(40)
    database = EntityDatabase.from_listings(listings)
    renderer = PageRenderer(8)

    print("Rendering one aggregator page with 12 listings...\n")
    page = renderer.listing_page("cityguide.example.com", listings[:12])
    preview = "\n".join(page.splitlines()[:9])
    print(preview)
    print("   ...\n")

    print("Inducing the template (no labels, structure only)...")
    wrapper = WrapperInducer().induce(page)
    print(f"  records found: {wrapper.record_count}")
    print(f"  induced schema (tag paths): {wrapper.field_paths}\n")

    print("Extracted records, joined against the entity database:")
    matched = 0
    for record in wrapper.records[:6]:
        entity_id = (
            database.lookup("phone", record.phone) if record.phone else None
        )
        status = f"-> {entity_id}" if entity_id else "-> (no DB match)"
        print(f"  {record.name!r:<38} phone={record.phone} {status}")
        matched += entity_id is not None
    total_matched = sum(
        1
        for record in wrapper.records
        if record.phone and database.lookup("phone", record.phone)
    )
    print(f"  ... {total_matched}/{wrapper.record_count} records joined the database\n")

    print("A page the inducer must refuse (no repeated structure):")
    unstructured = (
        "<html><body><h1>About us</h1>"
        "<p>One long paragraph of prose about the neighborhood.</p>"
        "</body></html>"
    )
    print(f"  induce(unstructured) -> {WrapperInducer().induce(unstructured)}")


if __name__ == "__main__":
    main()
