"""Seed-sensitivity benchmark (Section 5's robustness claim).

Quantifies "any seed set of structured entities will contain, with high
probability, at least one entity from the largest component" — the
empirical success probability vs. seed size against the analytic
``1 - (1 - p)**s`` prediction, plus the head/tail/uniform seed-origin
comparison.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_text
from repro.discovery.seeds import seed_origin_comparison, seed_success_probability
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def incidence(config):
    return run_spread("home", "phone", config).incidence


def test_seed_success_probability(benchmark, incidence):
    study = benchmark.pedantic(
        seed_success_probability,
        args=(incidence,),
        kwargs={"seed_sizes": (1, 2, 3, 5, 8), "trials": 20, "rng": 0},
        rounds=1,
        iterations=1,
    )
    emit(
        "seed_sensitivity",
        {
            "measured success rate": (study.seed_sizes, study.success_rate),
            "analytic 1-(1-p)^s": (study.seed_sizes, study.predicted),
        },
        title="Discovery success probability vs seed-set size (home/phone)",
        x_label="seed size",
        y_label="P(reach largest component)",
    )
    assert study.success_rate[-1] > 0.9


def test_seed_origin_comparison(benchmark, incidence):
    comparison = benchmark.pedantic(
        seed_origin_comparison,
        args=(incidence,),
        kwargs={"seed_size": 3, "trials": 10, "rng": 1},
        rounds=1,
        iterations=1,
    )
    emit_text(
        "seed_origins",
        "\n".join(
            ["Mean discovered fraction by seed origin (home/phone):"]
            + [f"  {origin:<8} {value:.3f}" for origin, value in comparison.items()]
        ),
    )
    values = list(comparison.values())
    assert max(values) - min(values) < 0.1  # origin does not matter
