"""Figure 4: spread of restaurant reviews (k-coverage + aggregate)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.coverage import aggregate_coverage_curve, k_coverage_curves
from repro.pipeline.experiments import run_figure4, run_spread


@pytest.fixture(scope="module")
def review_incidence(config):
    return run_spread("restaurants", "reviews", config).incidence


def test_figure4a_kcoverage(benchmark, review_incidence, config):
    curves = benchmark(k_coverage_curves, review_incidence, config.ks)
    assert curves.final_coverage(1) > 0.9


def test_figure4b_aggregate(benchmark, review_incidence):
    checkpoints, fractions = benchmark(aggregate_coverage_curve, review_incidence)
    assert fractions[-1] == pytest.approx(1.0)


def test_figure4_emit(benchmark, config):
    result = benchmark.pedantic(run_figure4, args=(config,), rounds=1, iterations=1)
    emit(
        "figure4a",
        result.spread.series(),
        title="Figure 4(a): Existence of Reviews (k-coverage, k=1..10)",
        log_x=True,
        x_label="top-t sites",
        y_label="coverage",
    )
    emit(
        "figure4b",
        result.aggregate_series(),
        title="Figure 4(b): Aggregate Reviews",
        log_x=True,
        x_label="top-n sites",
        y_label="fraction of review pages",
    )
