"""Figure 8: average relative value-add VA(n)/VA(0) per review group."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.valueadd import value_add_curve
from repro.pipeline.experiments import build_traffic_dataset, run_figure8


@pytest.fixture(scope="module")
def yelp_dataset(config):
    return build_traffic_dataset("yelp", config)


def test_figure8_value_add(benchmark, yelp_dataset):
    curve = benchmark(
        value_add_curve, yelp_dataset.search_demand, yelp_dataset.reviews
    )
    assert curve.relative_value_add[0] == pytest.approx(1.0)
    assert curve.is_decreasing_overall()


def test_figure8_emit(benchmark, config):
    panels = benchmark.pedantic(run_figure8, args=(config,), rounds=1, iterations=1)
    for site, sources in panels.items():
        series = {
            source: (curve.review_counts, curve.relative_value_add)
            for source, curve in sources.items()
        }
        emit(
            f"figure8_{site}",
            series,
            title=f"Figure 8: relative value-add VA(n)/VA(0) ({site})",
            log_x=True,
            x_label="# of reviews",
            y_label="VA(n)/VA(0)",
        )
        for source, curve in sources.items():
            values = [round(v, 2) for v in curve.relative_value_add]
            print(f"{site}/{source}: VA(n)/VA(0) = {values}")
