"""Entity-resolution benchmark: linking throughput and quality.

Not a paper figure — the intro's "deduplication and linking" component.
Times the resolver over a noisy mention corpus and emits the
precision/recall operating points across thresholds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_text
from repro.entities.business import generate_listings
from repro.linking.mentions import MentionGenerator
from repro.linking.resolution import EntityResolver


@pytest.fixture(scope="module")
def corpus():
    listings = generate_listings("restaurants", 400, seed=41)
    mentions = MentionGenerator(seed=42).corpus(
        listings, mentions_per_listing=2
    )
    return listings, mentions


def test_resolution_throughput(benchmark, corpus):
    listings, mentions = corpus
    resolver = EntityResolver(listings, threshold=0.7)

    def resolve_all():
        return resolver.resolve_all(mentions)

    links = benchmark.pedantic(resolve_all, rounds=2, iterations=1)
    assert len(links) == len(mentions)


def test_resolution_quality_curve(benchmark, corpus):
    listings, mentions = corpus

    def sweep():
        points = []
        for threshold in (0.55, 0.75, 0.95):
            report = EntityResolver(listings, threshold=threshold).evaluate(
                mentions
            )
            points.append((threshold, report))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    thresholds = [t for t, _ in points]
    emit(
        "resolution_quality",
        {
            "precision": (thresholds, [r.precision for _, r in points]),
            "recall": (thresholds, [r.recall for _, r in points]),
            "F1": (thresholds, [r.f1 for _, r in points]),
        },
        title="Entity resolution: quality vs acceptance threshold",
        x_label="threshold",
        y_label="score",
    )
    lines = ["threshold  precision  recall  F1  linked"]
    for threshold, report in points:
        lines.append(
            f"  {threshold:.2f}      {report.precision:.3f}     "
            f"{report.recall:.3f}  {report.f1:.3f}  {report.n_linked}"
        )
    emit_text("resolution_table", "\n".join(lines))
    best_f1 = max(r.f1 for _, r in points)
    assert best_f1 > 0.9
