"""Ablation: diameter algorithms on the entity-site graph.

Compares the double-sweep lower bound (2 BFS), the BoundingDiameters
exact algorithm, and networkx's eccentricity-based exact diameter, on
the same graph.  The point of the ablation: double sweep alone already
finds the true diameter on these small-world graphs, and
BoundingDiameters certifies it in a handful of BFS traversals, while
the textbook all-pairs approach is orders of magnitude slower.
"""

from __future__ import annotations

import networkx as nx
import pytest

from benchmarks.conftest import emit_text
from repro.core.graph import EntitySiteGraph
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def small_graph():
    # a reduced corpus so the networkx exact diameter stays tractable
    config = ExperimentConfig(scale="tiny", seed=1)
    incidence = run_spread("banks", "phone", config).incidence
    return EntitySiteGraph(incidence), incidence


def to_networkx(incidence):
    graph = nx.Graph()
    for s in range(incidence.n_sites):
        for e in incidence.site_entities(s).tolist():
            graph.add_edge(int(e), incidence.n_entities + s)
    return graph


def test_ablation_double_sweep(benchmark, small_graph):
    graph, __ = small_graph
    start = int(graph.present_nodes()[0])
    lower, __, __ = benchmark(graph.double_sweep, start)
    assert lower >= 2


def test_ablation_bounding_diameters(benchmark, small_graph):
    graph, __ = small_graph
    diameter = benchmark(graph.diameter)
    assert diameter >= 2


def test_ablation_networkx_exact(benchmark, small_graph):
    graph, incidence = small_graph
    reference = to_networkx(incidence)
    largest = max(nx.connected_components(reference), key=len)
    subgraph = reference.subgraph(largest)
    expected = benchmark.pedantic(
        nx.diameter, args=(subgraph,), rounds=1, iterations=1
    )
    assert graph.diameter() == expected
    start = int(graph.present_nodes()[0])
    double_sweep_bound = graph.double_sweep(start)[0]
    emit_text(
        "ablation_diameter",
        "\n".join(
            [
                "Diameter algorithm ablation (banks/phone, tiny scale):",
                f"  networkx exact:        {expected}",
                f"  BoundingDiameters:     {graph.diameter()}",
                f"  double-sweep lower bd: {double_sweep_bound}",
            ]
        ),
    )
