"""Discovery extensions: bootstrapping and the focused-crawl cost model.

Not a figure in the paper — Section 5 derives the *bounds* these
simulations exercise.  The emitted artifacts show (a) how close perfect
and budgeted set expansion get to the connectivity-derived upper bound
and (b) the coverage-per-page cost of three crawl scheduling policies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_text
from repro.core.graph import EntitySiteGraph
from repro.discovery.bootstrap import BootstrapExpansion
from repro.discovery.crawler import FocusedCrawler
from repro.discovery.noisy import NoisyExpansion
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def incidence(config):
    return run_spread("restaurants", "phone", config).incidence


def test_discovery_perfect_expansion(benchmark, incidence):
    expansion = BootstrapExpansion(incidence)
    trace = benchmark(expansion.random_seed_trial, 5, 0)
    assert trace.entity_fraction(incidence.n_entities) > 0.95


def test_discovery_noisy_expansion(benchmark, incidence):
    def run():
        return NoisyExpansion(
            incidence, retrieval_budget=10, extraction_recall=0.9, seed=1
        ).run([0, 1, 2, 3, 4])

    trace = benchmark.pedantic(run, rounds=2, iterations=1)
    assert trace.entity_fraction(incidence.n_entities) > 0.8


def test_discovery_emit(benchmark, incidence, config):
    def summary():
        graph = EntitySiteGraph(incidence)
        diameter = graph.diameter(max_bfs=config.max_bfs)
        perfect = BootstrapExpansion(incidence).random_seed_trial(5, 0)
        budgeted = NoisyExpansion(
            incidence, retrieval_budget=10, extraction_recall=0.9, seed=1
        ).run(perfect.entities[:5].tolist())
        return diameter, perfect, budgeted

    diameter, perfect, budgeted = benchmark.pedantic(
        summary, rounds=1, iterations=1
    )
    emit_text(
        "discovery",
        "\n".join(
            [
                "Bootstrapping discovery (restaurants/phone, small scale):",
                f"  diameter d = {diameter} -> bound d/2 = {diameter // 2} iterations",
                f"  perfect:  {perfect.iterations} iterations, "
                f"{perfect.entity_fraction(incidence.n_entities):.1%} coverage, "
                f"trajectory {perfect.entity_counts}",
                f"  budgeted (top-10 retrieval, 90% extraction recall): "
                f"{budgeted.iterations} iterations, "
                f"{budgeted.entity_fraction(incidence.n_entities):.1%} coverage, "
                f"{budgeted.queries_issued} queries",
            ]
        ),
    )
    assert perfect.iterations <= diameter // 2 + 1


def test_crawler_policies(benchmark, incidence):
    crawler = FocusedCrawler(incidence)
    results = benchmark.pedantic(
        crawler.compare_policies, args=(3000,), kwargs={"rng": 0},
        rounds=1, iterations=1,
    )
    series = {
        policy: (result.pages_fetched, result.coverage)
        for policy, result in results.items()
        if len(result.pages_fetched)
    }
    emit(
        "crawler_policies",
        series,
        title="Focused crawl: coverage vs pages fetched, by policy",
        log_x=True,
        x_label="pages fetched",
        y_label="1-coverage",
    )
    assert results["greedy_oracle"].coverage_at_pages(3000) >= (
        results["random"].coverage_at_pages(3000)
    )
