"""Ablation: the paper's identifying-attribute shortcut vs. real extraction.

Section 3.1 justifies detecting entities by matching identifying
attributes instead of running full extraction.  This ablation runs both
paths over the same rendered corpus —

- **shortcut**: phone regex + database join (the paper's method), and
- **full**: template induction + mention lifting + entity linking,
  never touching the identifying-attribute index during induction —

and compares the resulting coverage curves.  The claim being verified:
the shortcut does not change the spread conclusions.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves
from repro.core.curves import max_gap
from repro.entities.business import BusinessGenerator
from repro.entities.catalog import EntityDatabase
from repro.extract.runner import ExtractionRunner
from repro.linking.pipeline import WrapperLinkingExtractor
from repro.webgen.corpus import CorpusBuilder
from repro.webgen.profiles import ScalePreset, get_profile


@pytest.fixture(scope="module")
def rendered_corpus():
    database = EntityDatabase.from_listings(
        BusinessGenerator("restaurants", seed=95).generate(400)
    )
    scale = ScalePreset("abl", n_entities=400, site_factor=1.0)
    incidence = get_profile("restaurants", "phone").generate(scale, seed=96)
    corpus = CorpusBuilder(database, "phone", seed=97).build(incidence)
    return database, corpus


def test_shortcut_path(benchmark, rendered_corpus):
    database, corpus = rendered_corpus
    runner = ExtractionRunner(database, "phone")
    extracted = benchmark.pedantic(
        runner.run, args=(corpus.cache,), rounds=1, iterations=1
    )
    assert extracted.n_edges > 0


def test_full_path_and_emit(benchmark, rendered_corpus):
    database, corpus = rendered_corpus

    def run_full():
        return WrapperLinkingExtractor(database).run(corpus.cache)

    full = benchmark.pedantic(run_full, rounds=1, iterations=1)
    shortcut = ExtractionRunner(database, "phone").run(corpus.cache)

    checkpoints = k_coverage_curves(corpus.truth, ks=(1,)).checkpoints
    truth_curve = k_coverage_curves(corpus.truth, ks=(1,), checkpoints=checkpoints)
    shortcut_curve = k_coverage_curves(shortcut, ks=(1,), checkpoints=checkpoints)
    full_curve = k_coverage_curves(full, ks=(1,), checkpoints=checkpoints)
    emit(
        "ablation_shortcut",
        {
            "ground truth": (checkpoints, truth_curve.curve(1)),
            "attribute shortcut": (checkpoints, shortcut_curve.curve(1)),
            "wrapper + linking": (checkpoints, full_curve.curve(1)),
        },
        title="Ablation: attribute-matching shortcut vs full extraction",
        log_x=True,
        x_label="top-t sites",
        y_label="1-coverage",
    )
    gap = max_gap(
        checkpoints, shortcut_curve.curve(1), checkpoints, full_curve.curve(1)
    )
    print(f"max coverage gap shortcut vs full extraction: {gap:.4f}")
    assert gap < 0.05
