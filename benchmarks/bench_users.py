"""User-level tail exposure (the Goel et al. argument of Section 4.2).

Measures, per site and traffic source, the asymmetry the paper leans
on: the tail is a small share of *demand* but a large share of *users*
touch it, so user-centric coverage targets require tail extraction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_text
from repro.traffic.demandmodel import get_site_profile
from repro.traffic.logs import TrafficLogGenerator
from repro.traffic.users import user_tail_analysis


@pytest.fixture(scope="module")
def logs(config):
    result = {}
    for site in ("imdb", "amazon", "yelp"):
        generator = TrafficLogGenerator(
            get_site_profile(site),
            n_entities=config.traffic_entities,
            n_cookies=config.traffic_cookies,
            seed=7,
        )
        result[site] = generator.browse_log(config.traffic_events)
    return result


def test_user_tail_analysis_speed(benchmark, logs):
    report = benchmark(user_tail_analysis, logs["yelp"])
    assert report.n_users > 0


def test_user_tail_emit(benchmark, logs):
    def summarize():
        return {
            site: user_tail_analysis(log, tail_fraction=0.8, regular_threshold=0.2)
            for site, log in logs.items()
        }

    reports = benchmark.pedantic(summarize, rounds=1, iterations=1)
    lines = [
        "User-level tail exposure (browse traffic, tail = bottom 80% of inventory):",
        "  site    tail demand share   users touching tail   users regular (>=20%)",
    ]
    for site, report in reports.items():
        lines.append(
            f"  {site:<7} {report.tail_demand_share:14.1%}"
            f"  {report.users_touching_tail:18.1%}"
            f"  {report.users_regular_tail:18.1%}"
        )
    lines.append(
        "  (paper, citing Goel et al.: tail = 13-34% of consumption but"
        " 90-95% of users touch it)"
    )
    emit_text("user_tail", "\n".join(lines))
    for report in reports.values():
        assert report.users_touching_tail >= report.tail_demand_share
