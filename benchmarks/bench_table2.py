"""Table 2: entity-site graph metrics for all 17 (domain, attribute) rows."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_text
from repro.core.graph import GraphMetrics
from repro.pipeline.experiments import TABLE2_ROWS, format_table2, run_table2
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def restaurant_incidence(config):
    return run_spread("restaurants", "phone", config).incidence


def test_table2_single_row_metrics(benchmark, restaurant_incidence, config):
    metrics = benchmark.pedantic(
        GraphMetrics.measure,
        args=(restaurant_incidence, "restaurants", "phone"),
        kwargs={"max_bfs": config.max_bfs},
        rounds=2,
        iterations=1,
    )
    assert metrics.pct_entities_in_largest > 98.0


def test_table2_all_rows(benchmark, config):
    metrics = benchmark.pedantic(run_table2, args=(config,), rounds=1, iterations=1)
    assert len(metrics) == len(TABLE2_ROWS)
    for row in metrics:
        assert row.pct_entities_in_largest > 95.0
        assert 3 <= row.diameter <= 12
    emit_text("table2", format_table2(metrics))
