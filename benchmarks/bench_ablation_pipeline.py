"""Ablation: graph-level incidence vs. full HTML extraction pipeline.

The spread experiments run on the directly-generated incidence; this
ablation renders the same incidence to HTML, re-extracts it with the
Section 3.2 matchers, and compares the coverage curves.  The claim
being checked: extraction noise (classifier errors, rejected false
matches) does not change the curve shapes the paper's conclusions rest
on.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves
from repro.core.curves import max_gap
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import run_spread_via_extraction


@pytest.fixture(scope="module")
def pipeline_config():
    # the HTML path renders every page, so it runs at tiny scale
    return ExperimentConfig(scale="tiny", seed=2)


def test_ablation_full_pipeline_phone(benchmark, pipeline_config):
    result, truth = benchmark.pedantic(
        run_spread_via_extraction,
        args=("restaurants", "phone", pipeline_config),
        rounds=1,
        iterations=1,
    )
    truth_curves = k_coverage_curves(
        truth, ks=(1,), checkpoints=result.curves.checkpoints
    )
    extracted_k1 = result.curves.curve(1)
    truth_k1 = truth_curves.curve(1)
    gap = max_gap(
        result.curves.checkpoints, extracted_k1,
        truth_curves.checkpoints, truth_k1,
    )
    assert gap < 0.02  # phones extract essentially losslessly
    emit(
        "ablation_pipeline_phone",
        {
            "extracted": (result.curves.checkpoints, extracted_k1),
            "ground truth": (truth_curves.checkpoints, truth_k1),
        },
        title="Ablation: extraction pipeline vs ground truth (phones)",
        log_x=True,
        x_label="top-t sites",
        y_label="1-coverage",
    )


def test_ablation_full_pipeline_reviews(benchmark, pipeline_config):
    result, truth = benchmark.pedantic(
        run_spread_via_extraction,
        args=("restaurants", "reviews", pipeline_config),
        rounds=1,
        iterations=1,
    )
    truth_curves = k_coverage_curves(
        truth, ks=(1,), checkpoints=result.curves.checkpoints
    )
    extracted_k1 = result.curves.curve(1)
    truth_k1 = truth_curves.curve(1)
    # the classifier is lossy, but the shape must survive
    assert float(np.max(extracted_k1)) > 0.8 * float(np.max(truth_k1))
    emit(
        "ablation_pipeline_reviews",
        {
            "extracted (NB-filtered)": (result.curves.checkpoints, extracted_k1),
            "ground truth": (truth_curves.checkpoints, truth_k1),
        },
        title="Ablation: extraction pipeline vs ground truth (reviews)",
        log_x=True,
        x_label="top-t sites",
        y_label="1-coverage",
    )
