"""Corpus evolution benchmark: staleness decay and re-crawl policies.

The maintenance side of "discovery and maintenance of large-scale web
data": how fast an un-refreshed extraction database rots, and what a
fixed re-crawl budget buys under different scheduling policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit, emit_text
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.experiments import run_spread
from repro.webgen.evolution import (
    CorpusEvolver,
    recrawl_comparison,
    staleness_curve,
)


@pytest.fixture(scope="module")
def incidence():
    # tiny scale: evolution re-materializes every edge per epoch
    config = ExperimentConfig(scale="tiny", seed=5)
    return run_spread("banks", "phone", config).incidence


def test_evolution_step(benchmark, incidence):
    evolver = CorpusEvolver(edge_drop_rate=0.05, edge_add_rate=0.05)
    evolved = benchmark(evolver.step, incidence, 1)
    assert evolved.n_entities == incidence.n_entities


def test_evolution_emit(benchmark, incidence):
    evolver = CorpusEvolver(edge_drop_rate=0.08, edge_add_rate=0.08)

    def run():
        snapshots = evolver.evolve(incidence, epochs=8, rng=2)
        decay = staleness_curve(snapshots, incidence)
        policies = recrawl_comparison(
            incidence, evolver, epochs=5, budget_per_epoch=30, rng=3
        )
        return decay, policies

    decay, policies = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "evolution_staleness",
        {"fraction of facts still true": (np.arange(1, len(decay) + 1), decay)},
        title="Staleness of a frozen snapshot (8% churn per epoch)",
        x_label="epochs since crawl",
        y_label="still-true fraction",
    )
    emit_text(
        "evolution_recrawl",
        "\n".join(
            ["Final database accuracy after 5 epochs (budget 30 sites/epoch):"]
            + [f"  {policy:<14} {value:.3f}" for policy, value in policies.items()]
        ),
    )
    assert decay[-1] < decay[0]
    assert policies["largest_first"] >= policies["none"]
