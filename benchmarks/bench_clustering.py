"""Site-clustering benchmark: the source-triage step.

Builds a mixed crawl (restaurant directories + book catalogues + noise
archives), clusters hosts by page content, and scores purity against
the known host types — the "clustering" component of the paper's
end-to-end challenge.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_text
from repro.clustering.sites import SiteClusterer, cluster_purity
from repro.crawl.cache import WebCache
from repro.crawl.store import MemoryPageStore, Page
from repro.entities.books import generate_books
from repro.entities.business import generate_listings
from repro.webgen.html import PageRenderer


@pytest.fixture(scope="module")
def mixed_cache():
    renderer = PageRenderer(51)
    listings = generate_listings("restaurants", 300, seed=52)
    books = generate_books(300, seed=53)
    store = MemoryPageStore()
    truth: dict[str, str] = {}
    for i in range(25):
        host = f"dining{i:02d}.example.com"
        chunk = listings[i * 12:(i + 1) * 12]
        store.add(
            Page.from_url(f"http://{host}/p0", renderer.listing_page(host, chunk))
        )
        truth[host] = "restaurants"
    for i in range(25):
        host = f"shelf{i:02d}.example.com"
        chunk = books[i * 12:(i + 1) * 12]
        store.add(
            Page.from_url(f"http://{host}/p0", renderer.book_page(host, chunk))
        )
        truth[host] = "books"
    for i in range(10):
        host = f"junkdrawer{i:02d}.example.com"
        store.add(
            Page.from_url(f"http://{host}/p0", renderer.noise_page(host, i))
        )
        truth[host] = "noise"
    return WebCache(store), truth


def test_clustering_purity(benchmark, mixed_cache):
    cache, truth = mixed_cache
    clusterer = SiteClusterer(n_clusters=3, seed=54)
    clusters = benchmark.pedantic(
        clusterer.cluster, args=(cache,), rounds=2, iterations=1
    )
    purity = cluster_purity(clusters, truth)
    sizes = [len(clusters.members(c)) for c in range(clusters.n_clusters)]
    emit_text(
        "clustering",
        "\n".join(
            [
                "Site clustering over a mixed crawl (60 hosts, 3 content types):",
                f"  cluster sizes: {sizes}",
                f"  purity vs host type: {purity:.3f}",
            ]
        ),
    )
    assert purity > 0.9
