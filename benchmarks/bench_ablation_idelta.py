"""Ablation: the I∆ information-gain function (Section 4.3.1).

The paper argues that replacing ``I∆(n) = 1/(1+n)`` with a step
function (a user reads at most c reviews) only *strengthens* the
tail-value conclusion.  This benchmark verifies that claim: under the
step gain, the head groups' value-add collapses to zero, so the curve
decays at least as fast everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.core.valueadd import step_information_gain, value_add_curve
from repro.pipeline.experiments import build_traffic_dataset


@pytest.fixture(scope="module")
def dataset(config):
    return build_traffic_dataset("amazon", config)


def test_ablation_idelta_step(benchmark, dataset):
    curve = benchmark(
        value_add_curve,
        dataset.search_demand,
        dataset.reviews,
        lambda n: step_information_gain(n, cutoff=10),
    )
    assert curve.relative_value_add[-1] == 0.0


def test_ablation_idelta_emit(benchmark, dataset):
    inverse = benchmark.pedantic(
        value_add_curve,
        args=(dataset.search_demand, dataset.reviews),
        rounds=1,
        iterations=1,
    )
    step = value_add_curve(
        dataset.search_demand,
        dataset.reviews,
        information_gain=lambda n: step_information_gain(n, cutoff=10),
    )
    emit(
        "ablation_idelta",
        {
            "inverse 1/(1+n)": (inverse.review_counts, inverse.relative_value_add),
            "step (c=10)": (step.review_counts, step.relative_value_add),
        },
        title="Ablation: I-delta choice (amazon, search demand)",
        log_x=True,
        x_label="# of reviews",
        y_label="VA(n)/VA(0)",
    )
    # The paper's claim (§4.3.1): the step gain "would estimate even
    # higher value-add ... for tail entities" and zero for the head.
    shared = min(len(inverse.relative_value_add), len(step.relative_value_add))
    # Bin centers: the 7-14 group straddles the cutoff, so compare only
    # the bins lying entirely below (centers < 7) or above (>= 15) it.
    fully_below = step.review_counts[:shared] < 7
    fully_above = step.review_counts[:shared] >= 15
    assert np.all(
        step.relative_value_add[:shared][fully_below]
        >= inverse.relative_value_add[:shared][fully_below] - 1e-9
    )
    assert np.all(step.relative_value_add[:shared][fully_above] == 0.0)
