"""Concentration statistics over the generated distributions.

Fits the scalar summaries behind the paper's visual arguments: Gini
coefficients and power-law exponents of demand (Figure 6's pdfs) and of
site sizes (the corpus model).  Validates that the generated traffic's
fitted Zipf ordering matches the paper's IMDb > Amazon > Yelp.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_text
from repro.core.concentration import fit_power_law, gini_coefficient, top_share
from repro.pipeline.experiments import TRAFFIC_SITES, build_traffic_dataset
from repro.pipeline.experiments import run_spread


@pytest.fixture(scope="module")
def datasets(config):
    return {site: build_traffic_dataset(site, config) for site in TRAFFIC_SITES}


def test_concentration_gini(benchmark, datasets):
    gini = benchmark(gini_coefficient, datasets["yelp"].search_demand)
    assert 0.3 < gini < 0.95


def test_concentration_emit(benchmark, datasets, config):
    def summarize():
        lines = [
            "Concentration of search demand (per site):",
            "  site    gini   top-20% share  fitted power-law alpha (x_min=5)",
        ]
        ginis = {}
        for site in TRAFFIC_SITES:
            demand = datasets[site].search_demand
            counts = demand.astype(int)
            fit = fit_power_law(counts[counts >= 5], x_min=5)
            gini = gini_coefficient(demand)
            ginis[site] = gini
            lines.append(
                f"  {site:<7} {gini:.3f}  {top_share(demand, 0.2):.3f}"
                f"          {fit.alpha:.2f} (n={fit.n_tail})"
            )
        incidence = run_spread("restaurants", "phone", config).incidence
        site_fit = fit_power_law(incidence.site_sizes(), x_min=1)
        lines.append(
            f"  restaurants/phone site sizes: alpha={site_fit.alpha:.2f} "
            f"(n={site_fit.n_tail})"
        )
        return lines, ginis

    lines, ginis = benchmark.pedantic(summarize, rounds=1, iterations=1)
    emit_text("concentration", "\n".join(lines))
    # Figure 6's ordering expressed as Gini: IMDb > Amazon > Yelp
    assert ginis["imdb"] > ginis["amazon"] > ginis["yelp"]
