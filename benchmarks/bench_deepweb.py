"""Deep-web harvesting benchmark.

The paper cites deep-web crawling as a studied component of the
end-to-end challenge; this bench measures the query-tree prober's
coverage-per-query efficiency against a form-only source, with and
without database seeds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_text
from repro.crawl.deepweb import DeepWebProber, DeepWebSite
from repro.entities.business import generate_listings


@pytest.fixture(scope="module")
def hidden():
    return generate_listings("restaurants", 1000, seed=81)


def test_deepweb_probe(benchmark, hidden):
    def run():
        site = DeepWebSite("forms.example.com", hidden, page_size=20)
        return DeepWebProber(hidden[:20], max_queries=6000).probe(site)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.coverage > 0.9


def test_deepweb_emit(benchmark, hidden):
    def seeded_vs_blind():
        seeded_site = DeepWebSite("a.example", hidden, page_size=20)
        seeded = DeepWebProber(hidden[:20], max_queries=6000).probe(seeded_site)
        blind_site = DeepWebSite("b.example", hidden, page_size=20)
        blind = DeepWebProber(hidden[:1], max_queries=6000).probe(blind_site)
        return seeded, blind

    seeded, blind = benchmark.pedantic(seeded_vs_blind, rounds=1, iterations=1)
    emit_text(
        "deepweb",
        "\n".join(
            [
                "Deep-web harvesting (1000 hidden records, page size 20):",
                f"  seeded (20 known entities): coverage={seeded.coverage:.1%} "
                f"queries={seeded.queries_issued} "
                f"({seeded.queries_per_record:.2f} q/record)",
                f"  blind  (1 known entity):   coverage={blind.coverage:.1%} "
                f"queries={blind.queries_issued} "
                f"({blind.queries_per_record:.2f} q/record)",
            ]
        ),
    )
    assert seeded.coverage >= blind.coverage - 0.05
