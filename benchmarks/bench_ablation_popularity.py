"""Ablation: popularity bias in the entity→site assignment.

DESIGN.md calls out the popularity-bias exponent as the knob that
drives both the coverage spread and the connectivity.  This ablation
generates the restaurants/phone corpus with the bias switched off
(uniform sampling) and with the calibrated bias, and compares the
redundancy (k=5) coverage: under uniform sampling tail entities get
corroborated quickly; under popularity bias the k=5 curve shifts right
by an order of magnitude — the phenomenon Figure 1 reports.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.coverage import k_coverage_curves, sites_needed_for_coverage
from repro.webgen.profiles import SCALES, get_profile

import dataclasses


@pytest.fixture(scope="module")
def corpora():
    scale = SCALES["small"]
    profile = get_profile("restaurants", "phone")
    biased = profile.generate(scale, seed=4)
    uniform_profile = dataclasses.replace(profile, popularity_exponent=0.0)
    uniform = uniform_profile.generate(scale, seed=4)
    return biased, uniform


def test_ablation_popularity_coverage(benchmark, corpora):
    biased, uniform = corpora
    curves = benchmark(k_coverage_curves, biased, (1, 5))
    assert curves.final_coverage(1) > 0.95


def test_ablation_popularity_emit(benchmark, corpora):
    biased, uniform = corpora
    biased_curves = benchmark.pedantic(
        k_coverage_curves, args=(biased,), kwargs={"ks": (5,)}, rounds=1, iterations=1
    )
    uniform_curves = k_coverage_curves(
        uniform, ks=(5,), checkpoints=biased_curves.checkpoints
    )
    emit(
        "ablation_popularity",
        {
            "popularity-biased (k=5)": (
                biased_curves.checkpoints,
                biased_curves.curve(5),
            ),
            "uniform (k=5)": (
                uniform_curves.checkpoints,
                uniform_curves.curve(5),
            ),
        },
        title="Ablation: popularity bias vs uniform assignment (k=5 coverage)",
        log_x=True,
        x_label="top-t sites",
        y_label="coverage",
    )
    biased_needed = sites_needed_for_coverage(biased, 0.9, k=5)
    uniform_needed = sites_needed_for_coverage(uniform, 0.9, k=5)
    print(f"sites for 90% k=5 coverage: biased={biased_needed} uniform={uniform_needed}")
    assert biased_needed is not None and uniform_needed is not None
    assert biased_needed > uniform_needed
